"""§6.4: maintaining multiple similar materialized views after an insert.

Three materialized views over customer ⋈ orders ⋈ lineitem; an insert into
``customer`` produces a delta table, and the three maintenance queries —
each joining the delta against orders and lineitem — share one covering
subexpression.

Run:  python examples/view_maintenance.py
"""

import numpy as np

from repro import OptimizerOptions, Session
from repro.views.maintenance import MaintenancePlanner
from repro.views.materialized import ViewManager
from repro.workloads.example1 import Q1_SQL, Q2_SQL, Q3_SQL


def new_customers(count=100, start=70_000_000):
    rng = np.random.default_rng(2007)
    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
    return [
        (
            start + i,
            f"Customer#{start + i}",
            int(rng.integers(0, 25)),
            segments[int(rng.integers(0, 5))],
            float(np.round(rng.uniform(0, 1000), 2)),
        )
        for i in range(count)
    ]


def main() -> None:
    database = Session.tpch(scale_factor=0.005).database

    views = ViewManager(database)
    views.create_view("mv_nation_segment", Q1_SQL)
    views.create_view("mv_nation", Q2_SQL)
    views.create_view("mv_region", Q3_SQL)
    views.refresh_all()
    for view in views.views():
        print(f"materialized {view.name}: {view.contents.row_count} rows")

    planner = MaintenancePlanner(database, views, OptimizerOptions())
    outcome = planner.apply_insert("customer", new_customers())

    stats = outcome.optimization.stats
    print(f"\ninsert of {outcome.delta_rows} customer rows affects "
          f"{outcome.affected_views}")
    print(f"maintenance candidates : {stats.candidate_ids}")
    print(f"shared CSEs used       : {stats.used_cses}")
    print("the shared expression reads the *delta* table — its signature "
          "is delta(customer), so it never mixes with base-table plans")
    print(f"maintenance cost       : {outcome.measured_cost:.1f} units")
    print(f"rows merged per view   : {outcome.applied_rows}")

    print("\nmaintenance plan:")
    print(outcome.optimization.bundle.describe())


if __name__ == "__main__":
    main()
