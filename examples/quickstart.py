"""Quickstart: build a TPC-H database, run a batch, watch a covering
subexpression get detected, constructed, and shared.

Run:  python examples/quickstart.py
"""

from repro import Session

SQL = """
select c_nationkey, sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by c_nationkey;

select c_mktsegment, sum(l_quantity) as quantity
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by c_mktsegment
"""


def main() -> None:
    # A deterministic synthetic TPC-H database (scale factor 0.01 ≈ 60k
    # lineitem rows), statistics collected, orders.o_orderdate indexed.
    session = Session.tpch(scale_factor=0.01)

    # Both queries join customer ⋈ orders ⋈ lineitem with the same date
    # filter but group differently. The optimizer detects the similarity via
    # table signatures, constructs a covering subexpression, and — if the
    # cost model agrees — computes it once.
    outcome = session.execute(SQL)

    stats = outcome.optimization.stats
    print("--- optimizer ---")
    print(f"signature registrations : {stats.signature_registrations}")
    print(f"sharable buckets        : {stats.sharable_buckets}")
    print(f"candidates              : {stats.candidate_ids}")
    print(f"CSEs used in final plan : {stats.used_cses}")
    print(f"estimated cost          : {stats.est_cost_no_cse:.1f} -> "
          f"{stats.est_cost_final:.1f}")

    print("\n--- plan ---")
    print(outcome.optimization.bundle.describe())

    print("\n--- results ---")
    for result in outcome.execution.results:
        print(f"{result.name}: {result.row_count} rows, first 3:")
        for row in result.rows[:3]:
            print("   ", row)

    metrics = outcome.execution.metrics
    print("\n--- execution metrics ---")
    print(f"cost units      : {metrics.cost_units:.1f}")
    print(f"rows scanned    : {metrics.rows_scanned}")
    print(f"spool rows write: {metrics.spool_rows_written}, "
          f"read: {metrics.spool_rows_read}")


if __name__ == "__main__":
    main()
