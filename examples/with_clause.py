"""The paper's §1 motivation for *not* trusting user-written WITH clauses.

A user can factor a shared subexpression with WITH, but the textually
factored expression is rarely the best one to materialize. This library
inlines SPJ common table expressions and lets the optimizer re-detect the
sharing — choosing the covering subexpression cost-based.

Run:  python examples/with_clause.py
"""

from repro import Session

WITH_SQL = """
with co as (
    select c_custkey, c_nationkey, o_orderkey
    from customer, orders
    where c_custkey = o_custkey and o_orderdate < '1996-07-01'
)
select co.c_nationkey, sum(l_extendedprice) as revenue
from co, lineitem
where co.o_orderkey = l_orderkey
group by co.c_nationkey;

with co as (
    select c_custkey, c_mktsegment, o_orderkey
    from customer, orders
    where c_custkey = o_custkey and o_orderdate < '1996-07-01'
)
select co.c_mktsegment, sum(l_quantity) as quantity
from co, lineitem
where co.o_orderkey = l_orderkey
group by co.c_mktsegment
"""


def main() -> None:
    session = Session.tpch(scale_factor=0.01)
    result = session.optimize(WITH_SQL)
    stats = result.stats

    print("The user factored customer⋈orders into a WITH clause — but the "
          "optimizer is free to pick a better sharing unit.")
    print(f"\ncandidates considered : {stats.candidate_ids}")
    for candidate in result.candidates:
        definition = candidate.definition
        print(f"  {definition.cse_id}: {definition.signature!r} "
              f"({len(definition.consumer_groups)} consumers)")
    print(f"CSEs used in the plan : {stats.used_cses}")
    chosen = next(
        c.definition for c in result.candidates
        if c.cse_id in stats.used_cses
    )
    print(
        f"\nThe chosen covering subexpression spans {chosen.signature!r} — "
        "wider than the user's two-table WITH clause, and aggregated: "
        "exactly the paper's point that the optimizer, not the user, should "
        "pick the shared expression."
    )
    print(f"\nestimated cost: {stats.est_cost_no_cse:.1f} -> "
          f"{stats.est_cost_final:.1f}")


if __name__ == "__main__":
    main()
