"""The paper's Example 1: a three-query batch (plus the §6.2 variant with
Q4), optimized with and without CSE exploitation, side by side.

Run:  python examples/query_batch.py
"""

from repro import OptimizerOptions, Session
from repro.workloads import example1_batch, example1_with_q4


def compare(session_factory, sql: str, title: str) -> None:
    print(f"\n=== {title} ===")
    rows = []
    for label, options in (
        ("no CSE", OptimizerOptions(enable_cse=False)),
        ("CSEs + heuristics", OptimizerOptions()),
        ("CSEs, no heuristics", OptimizerOptions(
            enable_heuristics=False, max_cse_optimizations=16
        )),
    ):
        session = session_factory(options)
        outcome = session.execute(sql)
        stats = outcome.optimization.stats
        rows.append(
            (
                label,
                f"{stats.candidates_generated} [{stats.cse_optimizations}]"
                if options.enable_cse else "n/a",
                f"{stats.optimization_time:.3f}s",
                f"{outcome.est_cost:9.1f}",
                f"{outcome.execution.metrics.cost_units:9.1f}",
                f"{outcome.execution.wall_time:.3f}s",
            )
        )
    header = ("mode", "CSEs [opts]", "opt time", "est cost", "exec cost", "exec time")
    widths = [max(len(str(r[i])) for r in rows + [header]) for i in range(6)]
    for line in [header] + rows:
        print("  " + " | ".join(str(v).ljust(w) for v, w in zip(line, widths)))


def main() -> None:
    database = Session.tpch(scale_factor=0.01).database

    def factory(options):
        return Session(database, options)

    compare(factory, example1_batch(), "Example 1 batch (Q1, Q2, Q3)")
    compare(factory, example1_with_q4(), "With Q4 (§6.2): the candidate set changes")

    # Show what the chosen covering subexpression looks like.
    result = factory(OptimizerOptions()).optimize(example1_batch())
    chosen = result.candidates[0].definition
    print("\nchosen covering subexpression "
          f"({chosen.cse_id}, signature {chosen.signature!r}):")
    print(f"  group keys : {[k.column for k in chosen.group_keys]}")
    print(f"  aggregates : {[repr(a) for a in chosen.aggregates]}")
    print(f"  covering   : {[repr(c) for c in chosen.covering_conjuncts]}")
    print("\nIt is the paper's E5 — computed once, consumed by all three "
          "queries with per-query residual filters and re-aggregation.")


if __name__ == "__main__":
    main()
