"""Figure 8 style scale-up study: how the CSE benefit and the optimization
overhead behave as the batch grows from 2 to 10 queries.

Run:  python examples/scaleup.py
"""

from repro import OptimizerOptions, Session
from repro.workloads import scaleup_batch


def main() -> None:
    database = Session.tpch(scale_factor=0.01).database
    print(f"{'queries':>8} | {'est cost, no CSE':>17} | {'est cost, CSE':>14} "
          f"| {'benefit':>9} | {'opt time':>9} | {'CSEs used':>10}")
    print("-" * 84)
    for n in range(2, 11):
        sql = scaleup_batch(n)
        without = Session(
            database, OptimizerOptions(enable_cse=False)
        ).optimize(sql)
        with_cse = Session(database, OptimizerOptions()).optimize(sql)
        benefit = without.est_cost - with_cse.est_cost
        print(
            f"{n:>8} | {without.est_cost:>17.1f} | {with_cse.est_cost:>14.1f} "
            f"| {benefit:>9.1f} | {with_cse.stats.optimization_time:>8.3f}s "
            f"| {','.join(with_cse.stats.used_cses):>10}"
        )
    print(
        "\nAs in the paper's Figure 8: the benefit grows with the batch "
        "size while pruned optimization time stays near-linear."
    )


if __name__ == "__main__":
    main()
