"""The paper's §6.3 nested query: the main block and its scalar subquery
share a covering subexpression across query-block boundaries.

Run:  python examples/nested_query.py
"""

from repro import OptimizerOptions, Session
from repro.workloads import nested_query


def main() -> None:
    session = Session.tpch(scale_factor=0.01)
    sql = nested_query()
    print("query (TPC-H Q11-like):")
    print(sql)

    result = session.optimize(sql)
    stats = result.stats
    chosen = result.candidates[0].definition

    print("\nThe main block and the HAVING subquery both join "
          "customer ⋈ orders ⋈ lineitem.")
    print(f"candidates generated : {stats.candidate_ids}")
    print(f"chosen CSE           : {chosen.cse_id} {chosen.signature!r}")
    print(f"  group keys         : {[k.column for k in chosen.group_keys]}")
    print(f"  aggregates         : {[repr(a) for a in chosen.aggregates]}")
    print("This is the paper's E4 (Figure 7): "
          "sum(l_discount) per c_nationkey.")

    print("\nfinal plan — E4 is spooled once, read by the subquery to "
          "compute the threshold and by the main block joined with nation:")
    print(result.bundle.describe())

    outcome = session.execute_bundle(result)
    rows = outcome.results[0].rows
    print(f"\ntop nations by total discount ({len(rows)} rows):")
    for row in rows[:5]:
        print("   ", row)

    baseline = Session(
        session.database, OptimizerOptions(enable_cse=False)
    ).execute(sql)
    print(f"\nexecution cost: {baseline.execution.metrics.cost_units:.1f} "
          f"without CSEs vs {outcome.metrics.cost_units:.1f} with "
          f"({baseline.execution.metrics.cost_units / outcome.metrics.cost_units:.2f}x)")


if __name__ == "__main__":
    main()
