"""Beyond the paper: the adapted TPC-H query suite.

Not one of the paper's experiments — a general quality gate for the engine
the reproduction is built on: all eight adapted TPC-H queries optimize and
execute, and the sharing pairs behave sensibly when batched.
"""

import pytest

from repro.api import Session
from repro.optimizer.options import OptimizerOptions
from repro.workloads.tpch_queries import (
    ADAPTED_QUERIES,
    SHARING_PAIRS,
    adapted_batch,
)


def test_tpch_suite(benchmark, bench_db):
    session = Session(bench_db, OptimizerOptions())
    print("\n== Adapted TPC-H suite ==")
    print(f"{'query':>6} | {'est cost':>10} | {'exec cost':>10} | "
          f"{'rows':>6} | {'opt ms':>7}")
    for name, sql in sorted(ADAPTED_QUERIES.items()):
        outcome = session.execute(sql)
        stats = outcome.optimization.stats
        print(
            f"{name:>6} | {outcome.est_cost:>10.1f} | "
            f"{outcome.execution.metrics.cost_units:>10.1f} | "
            f"{outcome.execution.results[0].row_count:>6} | "
            f"{stats.optimization_time * 1000:>7.1f}"
        )
    benchmark(lambda: session.execute(ADAPTED_QUERIES["Q5"]))


def test_tpch_sharing_pairs(benchmark, bench_db):
    print("\n== Adapted TPC-H sharing pairs ==")
    for pair in SHARING_PAIRS:
        sql = adapted_batch(*pair)
        shared = Session(bench_db, OptimizerOptions()).optimize(sql)
        base = Session(
            bench_db, OptimizerOptions(enable_cse=False)
        ).optimize(sql)
        print(
            f"  {'+'.join(pair):>8}: est {base.est_cost:9.1f} -> "
            f"{shared.est_cost:9.1f}  "
            f"(candidates {shared.stats.candidates_generated}, "
            f"used {shared.stats.used_cses or 'none'})"
        )
        assert shared.est_cost <= base.est_cost + 1e-6
    session = Session(bench_db, OptimizerOptions())
    benchmark(lambda: session.optimize(adapted_batch("Q3", "Q10")))
