"""Serving-layer benchmarks: warm-cache latency and parallel batch speedup.

Two experiments over the §6.5-style six-query shared-spool batch:

* plan cache — cold ``execute`` (optimize + run) vs. warm ``execute``
  (fingerprint lookup + run). The warm path must skip the optimizer
  entirely, which the benchmark verifies through the registry counters
  before reporting the latency ratio.
* parallel executor — wall clock at ``workers=1`` vs. ``workers=4`` with
  interleaved rounds, on the ``independent_pairs_batch`` workload (three
  mutually independent shared-spool pairs, so the heavy materializations
  themselves overlap rather than serializing behind one big spool).
  Thread speedup comes from numpy kernels releasing the GIL, so the
  achievable ratio is bounded by the cores the host makes available; the
  speedup floor is only asserted when 4+ cores are usable, otherwise the
  measured ratio is recorded for the report and the result equivalence
  checks still run.
"""

from __future__ import annotations

import os
import time

from repro.api import Session
from repro.obs import MetricsRegistry
from repro.optimizer.options import OptimizerOptions
from repro.workloads import independent_pairs_batch, scaleup_batch

ROUNDS = 7
SPEEDUP_FLOOR = 1.5
BATCH_QUERIES = 6


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _trimmed_mean(samples):
    samples = sorted(samples)
    trimmed = samples[1:-1] if len(samples) > 4 else samples
    return sum(trimmed) / len(trimmed)


def _sorted_rows(execution):
    return [sorted(result.rows) for result in execution.results]


def test_plan_cache_warm_latency(benchmark, bench_db):
    registry = MetricsRegistry()
    session = Session(bench_db, OptimizerOptions(), registry=registry)
    sql = scaleup_batch(BATCH_QUERIES)

    start = time.perf_counter()
    cold = session.execute(sql)
    cold_time = time.perf_counter() - start
    assert not cold.plan_cache_hit

    warm_times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        warm = session.execute(sql)
        warm_times.append(time.perf_counter() - start)
        assert warm.plan_cache_hit
    warm_time = _trimmed_mean(warm_times)

    # The warm path really skipped optimization: one optimizer batch ever,
    # and every lookup after the first was a hit.
    counters = registry.snapshot()["counters"]
    assert counters["optimizer.batches"] == 1
    assert counters["plan_cache.miss"] == 1
    assert counters["plan_cache.hit"] == ROUNDS
    assert _sorted_rows(warm.execution) == _sorted_rows(cold.execution)

    ratio = cold_time / warm_time
    print(
        f"\n== Plan cache ({BATCH_QUERIES}-query batch, {ROUNDS} rounds) ==\n"
        f"  cold {cold_time * 1000:7.2f}ms  warm {warm_time * 1000:7.2f}ms  "
        f"({ratio:.2f}x)"
    )
    benchmark.extra_info["cold_ms"] = round(cold_time * 1000, 2)
    benchmark.extra_info["warm_ms"] = round(warm_time * 1000, 2)
    benchmark.extra_info["warm_speedup"] = round(ratio, 2)
    assert ratio > 1.0, "warm execute should beat cold optimize+execute"
    benchmark(lambda: session.execute(sql))


def test_parallel_batch_speedup(benchmark, bench_db):
    session = Session(bench_db, OptimizerOptions())
    result = session.optimize(independent_pairs_batch())
    assert len(result.bundle.queries) == BATCH_QUERIES
    assert result.stats.used_cses, "batch must share at least one spool"

    serial = session.execute_bundle(result, workers=1)
    parallel = session.execute_bundle(result, workers=4)
    assert _sorted_rows(parallel) == _sorted_rows(serial)

    serial_times, parallel_times = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both arms equally
        start = time.perf_counter()
        session.execute_bundle(result, workers=1)
        serial_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        session.execute_bundle(result, workers=4)
        parallel_times.append(time.perf_counter() - start)

    serial_time = _trimmed_mean(serial_times)
    parallel_time = _trimmed_mean(parallel_times)
    speedup = serial_time / parallel_time
    cores = _usable_cores()
    print(
        f"\n== Parallel serving ({BATCH_QUERIES}-query shared-spool batch, "
        f"{cores} core(s)) ==\n"
        f"  serial {serial_time * 1000:7.2f}ms  "
        f"parallel(4) {parallel_time * 1000:7.2f}ms  ({speedup:.2f}x)"
    )
    benchmark.extra_info["serial_ms"] = round(serial_time * 1000, 2)
    benchmark.extra_info["parallel_ms"] = round(parallel_time * 1000, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["usable_cores"] = cores
    if cores >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host"
        )
    benchmark(lambda: session.execute_bundle(result, workers=4))
