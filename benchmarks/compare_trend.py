#!/usr/bin/env python
"""Compare current ``BENCH_*.json`` artifacts against a previous run.

CI downloads the previous successful run's ``bench-artifacts`` into a
baseline directory, runs the smoke benchmarks, then invokes::

    python benchmarks/compare_trend.py --baseline previous-bench

The script pairs artifacts by file name and compares, per test, every
comparable timing field (``wall_seconds`` plus any ``*_ms`` /
``overhead`` entry in ``extra_info``). A test **regresses** when a
timing grows by more than the allowed fraction (default 20%, override
with ``--threshold``) *and* by more than an absolute noise floor
(default 5ms — shared-runner jitter on sub-millisecond timings is not a
regression). Exit status: 0 when clean or when no baseline exists
(first run, expired artifacts), 1 when any regression is found.

Stdlib only, no repo imports — CI can run it from a bare checkout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

#: regression threshold as a fraction of the baseline value.
DEFAULT_THRESHOLD = 0.20
#: absolute floor in seconds under which growth is considered noise.
DEFAULT_NOISE_FLOOR_S = 0.005


def _load(path: Path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _timings(test: Dict[str, Any]) -> Iterator[Tuple[str, float]]:
    """(metric name, seconds) pairs comparable across runs."""
    wall = test.get("wall_seconds")
    if isinstance(wall, (int, float)):
        yield "wall_seconds", float(wall)
    extra = test.get("extra_info") or {}
    for key, value in sorted(extra.items()):
        if not isinstance(value, (int, float)):
            continue
        if key.endswith("_ms"):
            yield key, float(value) / 1000.0


def compare_artifact(
    name: str,
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float,
    noise_floor: float,
) -> List[str]:
    """Human-readable regression lines for one artifact pair."""
    regressions: List[str] = []
    base_tests = baseline.get("tests", {})
    for test_name, test in sorted(current.get("tests", {}).items()):
        base = base_tests.get(test_name)
        if base is None:
            continue
        base_timings = dict(_timings(base))
        for metric, now in _timings(test):
            before = base_timings.get(metric)
            if before is None or before <= 0.0:
                continue
            growth = (now - before) / before
            if growth > threshold and (now - before) > noise_floor:
                regressions.append(
                    f"{name}::{test_name} {metric}: "
                    f"{before * 1000:.2f}ms -> {now * 1000:.2f}ms "
                    f"({growth * 100:+.1f}% > {threshold * 100:.0f}%)"
                )
    return regressions


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", default=".",
        help="directory holding this run's BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--baseline", required=True,
        help="directory holding the previous run's BENCH_*.json",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional growth per timing (default 0.20)",
    )
    parser.add_argument(
        "--noise-floor-ms", type=float,
        default=DEFAULT_NOISE_FLOOR_S * 1000.0,
        help="absolute growth below this is never a regression "
             "(default 5ms)",
    )
    args = parser.parse_args(argv)

    current_dir = Path(args.current)
    baseline_dir = Path(args.baseline)
    artifacts = sorted(current_dir.glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts in", current_dir)
        return 0
    if not baseline_dir.is_dir():
        print(f"no baseline directory {baseline_dir}; first run — passing")
        return 0

    regressions: List[str] = []
    compared = 0
    for path in artifacts:
        base_path = baseline_dir / path.name
        if not base_path.exists():
            print(f"{path.name}: no baseline artifact (new benchmark)")
            continue
        compared += 1
        regressions.extend(
            compare_artifact(
                path.name,
                _load(path),
                _load(base_path),
                args.threshold,
                args.noise_floor_ms / 1000.0,
            )
        )

    if not compared:
        print("no artifact pairs to compare; passing")
        return 0
    if regressions:
        print(f"{len(regressions)} timing regression(s):")
        for line in regressions:
            print(" ", line)
        return 1
    print(
        f"{compared} artifact(s) compared against {baseline_dir}: "
        f"no regression beyond {args.threshold * 100:.0f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
