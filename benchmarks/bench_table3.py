"""Table 3 + Figure 7 — the nested query (paper §6.3).

The TPC-H Q11-like query whose main block and scalar subquery both join
customer⋈orders⋈lineitem. Reproduces: with pruning a single aggregated
candidate (Figure 7's E4) is generated and used by both the main block and
the subquery; execution cost is roughly halved.
"""

import pytest

from conftest import record
from repro.api import Session
from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    format_table,
    run_scenario,
    speedup,
)
from repro.optimizer.options import OptimizerOptions
from repro.optimizer.physical import PhysSpoolRead
from repro.workloads import nested_query

PAPER_REFERENCE = {
    "# of CSEs": "1 [1] with pruning, 4 without",
    "execution": "135.26s -> 67.67s (~2x)",
}


def test_table3(benchmark, bench_db):
    sql = nested_query()
    results = run_scenario(bench_db, sql)
    print()
    print(format_table("Table 3: nested query", results, PAPER_REFERENCE))

    by_mode = {r.mode: r for r in results}
    assert by_mode[MODE_CSE].candidates == 1
    assert by_mode[MODE_CSE].cse_optimizations == 1
    assert by_mode[MODE_NO_HEURISTICS].candidates >= 2  # Figure 7 palette
    assert speedup(results) > 1.5

    record(benchmark, results)
    session = Session(bench_db, OptimizerOptions())
    benchmark(lambda: session.execute(sql))


def test_figure7_rewrite_shape(benchmark, bench_db):
    """The final plan mirrors the paper's Q8' rewrite: the spool is read by
    the main block (joined with nation) and by the scalar subquery."""
    session = Session(bench_db, OptimizerOptions())
    result = session.optimize(nested_query())
    chosen = result.candidates[0].definition
    assert chosen.signature.has_groupby
    assert chosen.signature.tables == ("customer", "lineitem", "orders")
    # Key is c_nationkey, aggregates sum(l_discount) — the paper's E4.
    assert [k.column for k in chosen.group_keys] == ["c_nationkey"]
    query = result.bundle.queries[0]
    main_reads = [
        n for n in query.plan.walk() if isinstance(n, PhysSpoolRead)
    ]
    sub_plan = next(iter(query.subquery_plans.values()))
    sub_reads = [n for n in sub_plan.walk() if isinstance(n, PhysSpoolRead)]
    assert main_reads and sub_reads
    print("\nfinal plan (E4 computed once, read twice):")
    print(result.bundle.describe())
    benchmark(lambda: session.optimize(nested_query()))
