"""§5.4 optimization-history reuse: Step-3 wall time, on vs off.

Measures exactly the quantity the history cache targets — time spent in
the Step-3 enumeration loop (``stats.step3_time``) — with
``reuse_history`` on and off, over the Fig-8 scale-up workload and the
adapted TPC-H suite. Both modes must choose byte-identical plan bundles
at equal cost; only the work to find them may differ.

The budget assertion: on the multi-candidate scale-up workload (≥3
candidates, multiple Step-3 passes), total Step-3 time with reuse must
stay within ``REPRO_HISTORY_REUSE_BUDGET`` (default 0.7, i.e. a ≥30%
reduction) of the no-reuse baseline. CI's smoke run loosens the budget
to 1.0 — "never slower" — to tolerate shared-runner noise.

Emits ``BENCH_history_reuse.json`` via benchmarks/conftest.py.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.api import Session
from repro.optimizer.options import OptimizerOptions
from repro.workloads import scaleup_batch
from repro.workloads.tpch_queries import adapted_batch

#: Step3(on) must be ≤ budget × Step3(off) on the scale-up workload.
BUDGET = float(os.environ.get("REPRO_HISTORY_REUSE_BUDGET", "0.7"))
#: best-of-R timing per (workload, mode) to suppress scheduler noise.
REPEATS = int(os.environ.get("REPRO_HISTORY_REUSE_REPEATS", "3"))

SCALEUP_SIZES = (4, 6, 8, 10)
TPCH_BATCHES = {
    "Q3+Q10": adapted_batch("Q3", "Q10"),
    "Q1+Q5+Q10": adapted_batch("Q1", "Q5", "Q10"),
    "suite": adapted_batch(),
}


def _measure(database, sql: str, reuse: bool) -> Tuple[Dict, object]:
    """Best-of-REPEATS optimization; returns (record, last result)."""
    best = None
    result = None
    for _ in range(REPEATS):
        session = Session(
            database, OptimizerOptions(reuse_history=reuse)
        )
        result = session.optimize(sql)
        stats = result.stats
        if best is None or stats.step3_time < best["step3_seconds"]:
            best = {
                "step3_seconds": stats.step3_time,
                "optimization_seconds": stats.optimization_time,
                "passes": stats.cse_optimizations,
                "candidates": stats.candidates_generated,
                "groups_reused": stats.history_groups_reused,
                "planset_hits": stats.history_hits,
                "planset_misses": stats.history_misses,
                "tops_folded": stats.history_tops_folded,
                "est_cost": round(stats.est_cost_final, 2),
                "used_cses": stats.used_cses,
            }
    return best, result


def _compare(database, sql: str):
    on_rec, on = _measure(database, sql, reuse=True)
    off_rec, off = _measure(database, sql, reuse=False)
    assert on.bundle.fingerprint() == off.bundle.fingerprint(), (
        "history reuse changed the chosen plans"
    )
    assert on.bundle.describe() == off.bundle.describe()
    assert on.stats.est_cost_final == off.stats.est_cost_final
    assert on.stats.used_cses == off.stats.used_cses
    assert off.stats.history_groups_reused == 0
    reduction = (
        1.0 - on_rec["step3_seconds"] / off_rec["step3_seconds"]
        if off_rec["step3_seconds"] > 0
        else 0.0
    )
    return {"on": on_rec, "off": off_rec, "reduction": round(reduction, 4)}


def test_scaleup_step3(benchmark, bench_db):
    """Fig-8 scale-up: Step-3 time on vs off, plus the budget gate."""
    print("\n== §5.4 history reuse: Fig-8 scale-up ==")
    print(f"{'n':>3} | {'cands':>5} | {'passes':>6} | {'step3 off':>10} | "
          f"{'step3 on':>9} | {'reduction':>9}")
    total_on = total_off = 0.0
    gated = False
    for n in SCALEUP_SIZES:
        row = _compare(bench_db, scaleup_batch(n))
        benchmark.extra_info[f"scaleup_{n}"] = row
        on, off = row["on"], row["off"]
        print(
            f"{n:>3} | {on['candidates']:>5} | {on['passes']:>6} | "
            f"{off['step3_seconds']:>10.4f} | {on['step3_seconds']:>9.4f} | "
            f"{row['reduction']:>8.1%}"
        )
        # The budget applies where §5.4 has something to reuse: several
        # candidates and several passes.
        if on["candidates"] >= 3 and on["passes"] >= 2:
            gated = True
            total_on += on["step3_seconds"]
            total_off += off["step3_seconds"]
    assert gated, "scale-up never produced a multi-candidate workload"
    print(
        f"  multi-candidate total: off {total_off:.4f}s -> on "
        f"{total_on:.4f}s (budget {BUDGET:.2f})"
    )
    benchmark.extra_info["budget"] = BUDGET
    benchmark.extra_info["multi_candidate_total"] = {
        "on": round(total_on, 4),
        "off": round(total_off, 4),
        "reduction": round(1.0 - total_on / total_off, 4),
    }
    assert total_on <= BUDGET * total_off, (
        f"history reuse missed its budget: {total_on:.4f}s vs "
        f"{BUDGET:.2f} x {total_off:.4f}s"
    )
    benchmark(lambda: Session(
        bench_db, OptimizerOptions()
    ).optimize(scaleup_batch(8)))


def test_tpch_step3(benchmark, bench_db):
    """Adapted TPC-H batches: same comparison, plan identity enforced."""
    print("\n== §5.4 history reuse: adapted TPC-H ==")
    print(f"{'batch':>10} | {'cands':>5} | {'passes':>6} | "
          f"{'step3 off':>10} | {'step3 on':>9} | {'reduction':>9}")
    for name, sql in TPCH_BATCHES.items():
        row = _compare(bench_db, sql)
        benchmark.extra_info[name] = row
        on, off = row["on"], row["off"]
        print(
            f"{name:>10} | {on['candidates']:>5} | {on['passes']:>6} | "
            f"{off['step3_seconds']:>10.4f} | {on['step3_seconds']:>9.4f} | "
            f"{row['reduction']:>8.1%}"
        )
        # Reuse must never make a TPC-H batch slower than the naive loop
        # by more than measurement noise allows (single-pass batches have
        # nothing to reuse; both modes collapse to the same work).
        if on["passes"] >= 2:
            assert on["step3_seconds"] <= max(
                1.0, BUDGET + 0.3
            ) * off["step3_seconds"] + 1e-3
    benchmark(lambda: Session(
        bench_db, OptimizerOptions()
    ).optimize(TPCH_BATCHES["Q3+Q10"]))
