"""Figure 8 — scale-up with the number of queries (paper §6.5).

Batches of 2..10 similar queries over customer⋈orders⋈lineitem (some also
joining nation/region). Reproduces both panels:

* estimated cost: the CSE benefit grows roughly in proportion to the batch
  size, with one or two candidates surviving pruning;
* optimization time: near-linear growth with pruning enabled; the
  no-pruning mode pays visibly more.
"""

import pytest

from repro.api import Session
from repro.bench.harness import MODE_CSE, MODE_NO_CSE, options_for
from repro.optimizer.options import OptimizerOptions
from repro.workloads import scaleup_batch

BATCH_SIZES = (2, 4, 6, 8, 10)


def _row(db, n):
    sql = scaleup_batch(n)
    no_cse = Session(db, options_for(MODE_NO_CSE)).optimize(sql)
    with_cse = Session(db, options_for(MODE_CSE)).optimize(sql)
    no_pruning = Session(
        db, OptimizerOptions(enable_heuristics=False, max_cse_optimizations=8)
    ).optimize(sql)
    return {
        "queries": n,
        "est_no_cse": no_cse.est_cost,
        "est_cse": with_cse.est_cost,
        "opt_time_pruned": with_cse.stats.optimization_time,
        "opt_time_unpruned": no_pruning.stats.optimization_time,
        "candidates_pruned": with_cse.stats.candidates_generated,
        "candidates_unpruned": no_pruning.stats.candidates_generated,
        "used": with_cse.stats.used_cses,
    }


def test_figure8_scaleup(benchmark, bench_db):
    rows = [_row(bench_db, n) for n in BATCH_SIZES]
    print("\n== Figure 8: scale-up with the number of queries ==")
    header = (
        f"{'n':>3} | {'est cost (no CSE)':>18} | {'est cost (CSE)':>15} | "
        f"{'opt time pruned':>16} | {'opt time unpruned':>18} | "
        f"{'cands (p/u)':>12}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['queries']:>3} | {row['est_no_cse']:>18.1f} | "
            f"{row['est_cse']:>15.1f} | {row['opt_time_pruned']:>16.3f} | "
            f"{row['opt_time_unpruned']:>18.3f} | "
            f"{row['candidates_pruned']}/{row['candidates_unpruned']:>10}"
        )

    # Panel 1: the absolute benefit grows with the batch size.
    benefits = [r["est_no_cse"] - r["est_cse"] for r in rows]
    assert benefits[0] > 0
    assert benefits[-1] > 2 * benefits[0]
    # A small number of candidates survives pruning at every size.
    assert all(1 <= r["candidates_pruned"] <= 6 for r in rows)
    # Panel 2: pruned optimization stays near-linear — compare the growth of
    # per-query optimization time between the smallest and largest batch.
    per_query_small = rows[0]["opt_time_pruned"] / rows[0]["queries"]
    per_query_large = rows[-1]["opt_time_pruned"] / rows[-1]["queries"]
    assert per_query_large < per_query_small * 25

    benchmark.extra_info["series"] = rows
    session = Session(bench_db, options_for(MODE_CSE))
    benchmark(lambda: session.optimize(scaleup_batch(6)))


def test_scaleup_execution_benefit(benchmark, bench_db):
    """Execution cost drops by a growing factor as the batch grows."""
    ratios = []
    for n in (2, 6, 10):
        sql = scaleup_batch(n)
        with_cse = Session(bench_db, options_for(MODE_CSE)).execute(sql)
        without = Session(bench_db, options_for(MODE_NO_CSE)).execute(sql)
        ratios.append(
            without.execution.metrics.cost_units
            / with_cse.execution.metrics.cost_units
        )
    print(f"\nexecution speedups at n=2,6,10: {[round(r, 2) for r in ratios]}")
    assert ratios[-1] > ratios[0]
    session = Session(bench_db, options_for(MODE_CSE))
    benchmark(lambda: session.execute(scaleup_batch(6)))
