"""Figure 8 — scale-up with the number of queries (paper §6.5).

Batches of 2..10 similar queries over customer⋈orders⋈lineitem (some also
joining nation/region). Reproduces both panels:

* estimated cost: the CSE benefit grows roughly in proportion to the batch
  size, with one or two candidates surviving pruning;
* optimization time: near-linear growth with pruning enabled; the
  no-pruning mode pays visibly more.
"""

import dataclasses
import math
import time

import pytest

from repro.api import Session
from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    bench_scale_factor,
    options_for,
)
from repro.executor.reference import evaluate_batch
from repro.optimizer.options import OptimizerOptions
from repro.workloads import scaleup_batch

BATCH_SIZES = (2, 4, 6, 8, 10)


def _row(db, n):
    sql = scaleup_batch(n)
    no_cse = Session(db, options_for(MODE_NO_CSE)).optimize(sql)
    with_cse = Session(db, options_for(MODE_CSE)).optimize(sql)
    no_pruning = Session(
        db, OptimizerOptions(enable_heuristics=False, max_cse_optimizations=8)
    ).optimize(sql)
    return {
        "queries": n,
        "est_no_cse": no_cse.est_cost,
        "est_cse": with_cse.est_cost,
        "opt_time_pruned": with_cse.stats.optimization_time,
        "opt_time_unpruned": no_pruning.stats.optimization_time,
        "candidates_pruned": with_cse.stats.candidates_generated,
        "candidates_unpruned": no_pruning.stats.candidates_generated,
        "used": with_cse.stats.used_cses,
    }


def test_figure8_scaleup(benchmark, bench_db):
    rows = [_row(bench_db, n) for n in BATCH_SIZES]
    print("\n== Figure 8: scale-up with the number of queries ==")
    header = (
        f"{'n':>3} | {'est cost (no CSE)':>18} | {'est cost (CSE)':>15} | "
        f"{'opt time pruned':>16} | {'opt time unpruned':>18} | "
        f"{'cands (p/u)':>12}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['queries']:>3} | {row['est_no_cse']:>18.1f} | "
            f"{row['est_cse']:>15.1f} | {row['opt_time_pruned']:>16.3f} | "
            f"{row['opt_time_unpruned']:>18.3f} | "
            f"{row['candidates_pruned']}/{row['candidates_unpruned']:>10}"
        )

    # Panel 1: the absolute benefit grows with the batch size.
    benefits = [r["est_no_cse"] - r["est_cse"] for r in rows]
    assert benefits[0] > 0
    assert benefits[-1] > 2 * benefits[0]
    # A small number of candidates survives pruning at every size.
    assert all(1 <= r["candidates_pruned"] <= 6 for r in rows)
    # Panel 2: pruned optimization stays near-linear — compare the growth of
    # per-query optimization time between the smallest and largest batch.
    per_query_small = rows[0]["opt_time_pruned"] / rows[0]["queries"]
    per_query_large = rows[-1]["opt_time_pruned"] / rows[-1]["queries"]
    assert per_query_large < per_query_small * 25

    benchmark.extra_info["series"] = rows
    session = Session(bench_db, options_for(MODE_CSE))
    benchmark(lambda: session.optimize(scaleup_batch(6)))


def _rows_match(got, want):
    """Same rows modulo float accumulation order (CSE pre-aggregation
    reorders sums, so large aggregates agree only to relative precision)."""
    got = sorted(got, key=repr)
    want = sorted(want, key=repr)
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        for a, b in zip(g, w):
            if isinstance(a, float) or isinstance(b, float):
                if not math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-6):
                    return False
            elif a != b:
                return False
    return True


def _best_of(session, batch, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session.execute(batch)
        best = min(best, time.perf_counter() - start)
    return best


def test_scaleup_shared_scan_fused_wallclock(benchmark, bench_db):
    """Full v2 (CSE spools + shared table scans + fused morsel pipelines)
    vs the no-sharing baseline on a 12-query Figure-8 batch: identical
    results, one physical scan per (table, column-set) group, and a
    wall-clock speedup that must clear 3x at bench scale (CI runs this
    at REPRO_BENCH_SF=0.1)."""
    sql = scaleup_batch(12)
    v2 = Session(bench_db, options_for(MODE_CSE))
    baseline = Session(
        bench_db,
        dataclasses.replace(options_for(MODE_NO_CSE), enable_fusion=False),
        shared_scans=False,
    )
    batch = v2.bind(sql)
    fast = v2.execute(batch)
    slow = baseline.execute(batch)

    for query in batch.queries:
        assert _rows_match(
            fast.execution.query(query.name).rows,
            slow.execution.query(query.name).rows,
        ), f"shared/fused results diverged for {query.name}"
    sf = bench_scale_factor()
    if sf <= 0.01:  # the row-at-a-time oracle is too slow at CI scale
        oracle = evaluate_batch(bench_db, batch)
        for query in batch.queries:
            assert _rows_match(
                fast.execution.query(query.name).rows, oracle[query.name]
            ), f"engine diverged from oracle for {query.name}"

    # Def 5.1 at the leaf: one physical fetch per (table, column-set)
    # group for the whole batch, with at least one group actually shared.
    scan_stats = fast.execution.metrics.scan_stats
    assert scan_stats, "shared-scan stats missing"
    for key, stats in scan_stats.items():
        assert stats.physical_scans == 1, f"{key}: {stats.physical_scans}"
    assert any(s.shared > 0 for s in scan_stats.values())

    fast_s = _best_of(v2, batch)
    slow_s = _best_of(baseline, batch)
    speedup = slow_s / fast_s
    # At toy scale factors fixed per-query overheads dominate the wall
    # clock, so the 3x bar only binds from SF>=0.05 (measured ~3.5-3.8x
    # at SF=0.1, ~2.5x at SF<=0.01).
    floor = 3.0 if sf >= 0.05 else 1.5
    print(
        f"\nshared+fused wall clock: {slow_s * 1000:.1f}ms -> "
        f"{fast_s * 1000:.1f}ms ({speedup:.2f}x, floor {floor}x, SF={sf})"
    )
    assert speedup >= floor, f"speedup {speedup:.2f}x below {floor}x"

    benchmark.extra_info["shared_fused_panel"] = {
        "scale_factor": sf,
        "queries": 12,
        "fast_seconds": round(fast_s, 4),
        "slow_seconds": round(slow_s, 4),
        "speedup": round(speedup, 2),
        "scan_groups": {
            key: {
                "reads": stats.reads,
                "physical_scans": stats.physical_scans,
                "shared": stats.shared,
                "rows_saved": stats.rows_saved,
            }
            for key, stats in sorted(scan_stats.items())
        },
    }
    benchmark(lambda: v2.execute(batch))


def test_scaleup_execution_benefit(benchmark, bench_db):
    """Execution cost drops by a growing factor as the batch grows."""
    ratios = []
    for n in (2, 6, 10):
        sql = scaleup_batch(n)
        with_cse = Session(bench_db, options_for(MODE_CSE)).execute(sql)
        without = Session(bench_db, options_for(MODE_NO_CSE)).execute(sql)
        ratios.append(
            without.execution.metrics.cost_units
            / with_cse.execution.metrics.cost_units
        )
    print(f"\nexecution speedups at n=2,6,10: {[round(r, 2) for r in ratios]}")
    assert ratios[-1] > ratios[0]
    session = Session(bench_db, options_for(MODE_CSE))
    benchmark(lambda: session.execute(scaleup_batch(6)))
