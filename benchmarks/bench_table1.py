"""Table 1 + Figure 6 — the Example 1 query batch (paper §6.1).

Reproduces: one candidate CSE survives heuristic pruning (the aggregated
customer⋈orders⋈lineitem, the paper's E5), one CSE optimization pass, the
Figure 6 candidate set without pruning, and a ~3× execution reduction.
"""

import pytest

from conftest import record
from repro.api import Session
from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    format_table,
    run_scenario,
    speedup,
)
from repro.optimizer.options import OptimizerOptions
from repro.workloads import example1_batch

PAPER_REFERENCE = {
    "# of CSEs": "1 [1] with pruning, 5 [15] without",
    "execution": "165.54s -> 55.64s (~3x)",
}


def test_table1(benchmark, bench_db):
    sql = example1_batch()
    results = run_scenario(bench_db, sql)
    print()
    print(format_table("Table 1: query batch (Q1, Q2, Q3)", results, PAPER_REFERENCE))

    by_mode = {r.mode: r for r in results}
    # Paper shape assertions.
    assert by_mode[MODE_CSE].candidates == 1
    assert by_mode[MODE_CSE].cse_optimizations == 1
    assert by_mode[MODE_NO_HEURISTICS].candidates == 5  # Figure 6
    assert speedup(results) > 2.0
    assert by_mode[MODE_CSE].est_cost <= by_mode[MODE_NO_CSE].est_cost

    record(benchmark, results)
    session = Session(bench_db, OptimizerOptions())
    benchmark(lambda: session.execute(sql))


def test_figure6_pruning_narrative(benchmark, bench_db):
    """Without pruning the five Figure-6 candidates appear; pruning keeps
    only the aggregated three-table candidate and the final plan is the
    same either way."""
    session_pruned = Session(bench_db, OptimizerOptions())
    session_full = Session(
        bench_db,
        OptimizerOptions(enable_heuristics=False, max_cse_optimizations=16),
    )
    sql = example1_batch()
    pruned = session_pruned.optimize(sql)
    full = session_full.optimize(sql)

    shapes = sorted(
        (c.definition.signature.has_groupby, c.definition.signature.tables)
        for c in full.candidates
    )
    print("\nFigure 6 candidates (no pruning):")
    for has_groupby, tables in shapes:
        flag = "T" if has_groupby else "F"
        print(f"  [{flag}; {{{', '.join(tables)}}}]")
    assert shapes == [
        (False, ("customer", "lineitem", "orders")),
        (False, ("customer", "orders")),
        (False, ("lineitem", "orders")),
        (True, ("customer", "lineitem", "orders")),
        (True, ("lineitem", "orders")),
    ]
    assert pruned.est_cost == pytest.approx(full.est_cost, rel=1e-9)
    benchmark(lambda: session_pruned.optimize(sql))
