"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables one mechanism and reports its effect on the Example 1
batch (plus the stacked workload where relevant):

* ``cost_mode="naive_split"`` — the §5.2 pathology: splitting the initial
  cost among *potential* consumers at substitution time;
* ``enable_stacked=False`` — no CSEs inside CSE bodies (§5.5);
* ``enable_preagg=False`` — no eager group-by exploration: the aggregated
  candidates (Figure 6's E4/E5) disappear;
* ``dynamic_lca=False`` — static least-common-ancestor placement;
* α/β sweeps for Heuristics 1 and 4.
"""

import pytest

from repro.api import Session
from repro.optimizer.options import OptimizerOptions
from repro.workloads import example1_batch

STACKED_SQL = (
    "select c_nationkey, sum(l_extendedprice) as v "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_nationkey;"
    "select c_mktsegment, sum(l_extendedprice) as v "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_mktsegment;"
    "select o_orderpriority, sum(l_extendedprice) as v "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderpriority;"
    "select o_orderstatus, sum(l_extendedprice) as v "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderstatus"
)


def _run(db, sql, options):
    return Session(db, options).optimize(sql)


def test_ablation_preaggregation(benchmark, bench_db):
    """Without the eager group-by rule the aggregated candidates (the ones
    the paper's final plans actually use) never exist."""
    baseline = _run(bench_db, example1_batch(), OptimizerOptions())
    ablated = _run(
        bench_db, example1_batch(), OptimizerOptions(enable_preagg=False)
    )
    print("\n== Ablation: pre-aggregation exploration ==")
    print(f"  with preagg:    est {baseline.est_cost:9.1f}  "
          f"used {baseline.stats.used_cses}")
    print(f"  without preagg: est {ablated.est_cost:9.1f}  "
          f"used {ablated.stats.used_cses}")
    # Without the eager group-by rule Q3's pre-aggregated consumer never
    # exists, so the aggregated candidate covers only Q1 and Q2.
    baseline_consumers = max(
        len(c.definition.consumer_groups) for c in baseline.candidates
    )
    ablated_agg = [
        c for c in ablated.candidates if c.definition.has_groupby
    ]
    assert all(
        len(c.definition.consumer_groups) < baseline_consumers
        for c in ablated_agg
    )
    assert baseline.est_cost < ablated.est_cost
    benchmark(
        lambda: _run(bench_db, example1_batch(), OptimizerOptions(enable_preagg=False))
    )


def test_ablation_naive_cost_split(benchmark, bench_db):
    """The naive scheme still executes correctly but mis-accounts shared
    costs (Example 10's pathology)."""
    correct_session = Session(bench_db, OptimizerOptions())
    naive_session = Session(bench_db, OptimizerOptions(cost_mode="naive_split"))
    correct = correct_session.execute(example1_batch())
    naive = naive_session.execute(example1_batch())
    print("\n== Ablation: naive initial-cost splitting (§5.2) ==")
    print(f"  profile accounting: est {correct.est_cost:9.1f} "
          f"measured {correct.execution.metrics.cost_units:9.1f}")
    print(f"  naive splitting:    est {naive.est_cost:9.1f} "
          f"measured {naive.execution.metrics.cost_units:9.1f}")
    # The profile-correct accounting never executes a worse plan than the
    # naive scheme (on Example 1 all consumers share, so the two coincide;
    # the pathological divergence is exercised in the unit tests).
    assert (
        correct.execution.metrics.cost_units
        <= naive.execution.metrics.cost_units * 1.0001
    )
    benchmark(
        lambda: _run(
            bench_db, example1_batch(), OptimizerOptions(cost_mode="naive_split")
        )
    )


def test_ablation_stacked(benchmark, bench_db):
    stacked = _run(bench_db, STACKED_SQL, OptimizerOptions())
    flat = _run(
        bench_db, STACKED_SQL, OptimizerOptions(enable_stacked=False)
    )
    print("\n== Ablation: stacked CSEs (§5.5) ==")
    print(f"  stacking on:  est {stacked.est_cost:9.1f} used {stacked.stats.used_cses}")
    print(f"  stacking off: est {flat.est_cost:9.1f} used {flat.stats.used_cses}")
    assert stacked.est_cost <= flat.est_cost
    benchmark(lambda: _run(bench_db, STACKED_SQL, OptimizerOptions()))


def test_ablation_alpha(benchmark, bench_db):
    """Heuristic 1 sweep: with α=0 nothing is 'too cheap'; very large α
    prunes every candidate."""
    loose = _run(bench_db, example1_batch(), OptimizerOptions(alpha=0.0))
    default = _run(bench_db, example1_batch(), OptimizerOptions())
    strict = _run(bench_db, example1_batch(), OptimizerOptions(alpha=1.0))
    print("\n== Ablation: Heuristic 1 threshold α ==")
    for label, result in (("α=0", loose), ("α=0.1", default), ("α=1.0", strict)):
        print(
            f"  {label:>6}: candidates={result.stats.candidates_generated} "
            f"est={result.est_cost:9.1f}"
        )
    assert loose.stats.candidates_generated >= default.stats.candidates_generated
    assert strict.stats.candidates_generated <= default.stats.candidates_generated
    benchmark(lambda: _run(bench_db, example1_batch(), OptimizerOptions(alpha=0.0)))


def test_ablation_beta(benchmark, bench_db):
    """Heuristic 4 sweep: β=∞ keeps every contained candidate."""
    default = _run(bench_db, example1_batch(), OptimizerOptions())
    keep_all = _run(bench_db, example1_batch(), OptimizerOptions(beta=1e12))
    print("\n== Ablation: Heuristic 4 threshold β ==")
    print(f"  β=0.9:  candidates={default.stats.candidates_generated}")
    print(f"  β=inf:  candidates={keep_all.stats.candidates_generated}")
    assert keep_all.stats.candidates_generated > default.stats.candidates_generated
    # Same final plan cost: pruning only removed dominated candidates.
    assert default.est_cost == pytest.approx(keep_all.est_cost, rel=1e-9)
    benchmark(lambda: _run(bench_db, example1_batch(), OptimizerOptions(beta=1e12)))


def test_ablation_dynamic_lca(benchmark, bench_db):
    static = _run(
        bench_db, example1_batch(), OptimizerOptions(dynamic_lca=False)
    )
    dynamic = _run(bench_db, example1_batch(), OptimizerOptions())
    print("\n== Ablation: dynamic vs static LCA (§5.2) ==")
    print(f"  dynamic: est {dynamic.est_cost:9.1f}")
    print(f"  static:  est {static.est_cost:9.1f}")
    # Both are correct; dynamic may settle lower in the DAG but never
    # produces a worse plan on this workload.
    assert dynamic.est_cost <= static.est_cost * 1.001
    benchmark(
        lambda: _run(bench_db, example1_batch(), OptimizerOptions(dynamic_lca=False))
    )
