"""Shared fixtures for the experiment benchmarks.

The TPC-H database is generated once per session at the benchmark scale
factor (default 0.01; override with REPRO_BENCH_SF). Tables are printed to
stdout so `pytest benchmarks/ --benchmark-only -s` reproduces the paper's
tables verbatim; the same rows land in each benchmark's `extra_info`.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_scale_factor
from repro.catalog.tpch import build_tpch_database


@pytest.fixture(scope="session")
def bench_db():
    return build_tpch_database(scale_factor=bench_scale_factor())


@pytest.fixture(scope="session")
def small_bench_db():
    """A smaller database for the 8-table workload (Table 4)."""
    return build_tpch_database(scale_factor=min(bench_scale_factor(), 0.002))


def record(benchmark, results):
    """Store scenario rows on the benchmark for the JSON report."""
    for result in results:
        benchmark.extra_info[result.mode] = {
            "candidates": result.candidates,
            "cse_optimizations": result.cse_optimizations,
            "optimization_time": round(result.optimization_time, 4),
            "est_cost": round(result.est_cost, 2),
            "exec_cost": round(result.exec_cost, 2),
            "exec_time": round(result.exec_time, 4),
            "used_cses": result.used_cses,
            "q_error_mean": round(result.q_error_mean, 3),
            "q_error_max": round(result.q_error_max, 3),
            "counters": {
                name: value
                for name, value in sorted(
                    result.snapshot.get("counters", {}).items()
                )
                if name.startswith(("optimizer.", "executor."))
            },
            "phase_seconds": {
                name: round(seconds, 4)
                for name, seconds in result.phase_seconds.items()
            },
        }
