"""Shared fixtures for the experiment benchmarks.

The TPC-H database is generated once per session at the benchmark scale
factor (default 0.01; override with REPRO_BENCH_SF). Tables are printed to
stdout so `pytest benchmarks/ --benchmark-only -s` reproduces the paper's
tables verbatim; the same rows land in each benchmark's `extra_info`.

Every benchmark module additionally emits a machine-readable artifact at
the repo root — ``BENCH_<name>.json`` for ``bench_<name>.py`` — holding
per-test wall time, outcome, and whatever the test recorded in
``benchmark.extra_info``. CI uploads these artifacts for trend tracking.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.bench.harness import bench_scale_factor
from repro.catalog.tpch import build_tpch_database

_REPO_ROOT = Path(__file__).resolve().parent.parent
#: module stem -> {test name -> artifact entry}, flushed at session end.
_ARTIFACTS: Dict[str, Dict[str, Dict[str, Any]]] = defaultdict(dict)


@pytest.fixture(autouse=True)
def _bench_artifact(request):
    """Collect one artifact entry per benchmark test (autouse)."""
    start = time.perf_counter()
    yield
    module = Path(str(request.node.fspath)).stem
    if not module.startswith("bench_"):
        return
    entry = _ARTIFACTS[module].setdefault(request.node.name, {})
    entry["wall_seconds"] = round(time.perf_counter() - start, 4)
    entry["scale_factor"] = bench_scale_factor()
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    extra = getattr(bench, "extra_info", None)
    if extra:
        entry["extra_info"] = json.loads(json.dumps(dict(extra), default=str))


def pytest_runtest_logreport(report):
    """Stamp pass/fail onto the artifact entry for the call phase."""
    if report.when != "call":
        return
    module = Path(str(report.fspath)).stem
    if not module.startswith("bench_"):
        return
    name = report.nodeid.rsplit("::", 1)[-1]
    entry = _ARTIFACTS[module].setdefault(name, {})
    entry["outcome"] = report.outcome


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per executed benchmark module."""
    for module, tests in _ARTIFACTS.items():
        payload = {
            "benchmark": module,
            "generated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "exit_status": int(exitstatus),
            "tests": tests,
        }
        name = module[len("bench_"):]
        path = _REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )


@pytest.fixture(scope="session")
def bench_db():
    return build_tpch_database(scale_factor=bench_scale_factor())


@pytest.fixture(scope="session")
def small_bench_db():
    """A smaller database for the 8-table workload (Table 4)."""
    return build_tpch_database(scale_factor=min(bench_scale_factor(), 0.002))


def record(benchmark, results):
    """Store scenario rows on the benchmark for the JSON report."""
    for result in results:
        benchmark.extra_info[result.mode] = {
            "candidates": result.candidates,
            "cse_optimizations": result.cse_optimizations,
            "optimization_time": round(result.optimization_time, 4),
            "est_cost": round(result.est_cost, 2),
            "exec_cost": round(result.exec_cost, 2),
            "exec_time": round(result.exec_time, 4),
            "used_cses": result.used_cses,
            "q_error_mean": round(result.q_error_mean, 3),
            "q_error_max": round(result.q_error_max, 3),
            "counters": {
                name: value
                for name, value in sorted(
                    result.snapshot.get("counters", {}).items()
                )
                if name.startswith(("optimizer.", "executor."))
            },
            "phase_seconds": {
                name: round(seconds, 4)
                for name, seconds in result.phase_seconds.items()
            },
        }
