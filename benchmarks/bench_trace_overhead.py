"""Tracing + ledger overhead: fully instrumented vs. bare execution.

The observability tentpole (span tracing across worker threads, the
``spool_flow`` events the critical-path analyzer consumes, and the
sharing-economics ledger assembled after every batch) must stay cheap
enough to leave on in production. This benchmark runs the Figure-8
scale-up batch — the spool-heavy workload where per-operator spans are
densest — both bare and with a live tracer + registry (the ledger is
built either way; publishing it is the registry's cost), interleaved
rounds with trimmed means, and asserts the instrumented arm stays under
an overhead budget (default 5%; override with
``REPRO_TRACE_OVERHEAD_BUDGET``, a fraction, e.g. ``0.10`` for noisy CI
runners).
"""

import os
import time

from repro.api import Session
from repro.obs import MetricsRegistry, Tracer, analyze
from repro.optimizer.options import OptimizerOptions
from repro.workloads import scaleup_batch

ROUNDS = 9
#: allowed (traced - bare) / bare wall-time fraction.
OVERHEAD_BUDGET = float(
    os.environ.get("REPRO_TRACE_OVERHEAD_BUDGET", "0.05")
)
#: Figure 8's mid-size batch: 6 similar C⋈O⋈L queries sharing spools.
BATCH_QUERIES = 6


def _trimmed_mean(samples):
    samples = sorted(samples)
    trimmed = samples[1:-1] if len(samples) > 4 else samples
    return sum(trimmed) / len(trimmed)


def test_trace_and_ledger_overhead_under_budget(benchmark, bench_db):
    sql = scaleup_batch(BATCH_QUERIES)
    # Plan caching stays ON in both arms: the production posture is a
    # warm cache, so the measured delta is span recording + flow events
    # + ledger assembly/publication on the execute path.
    bare = Session(bench_db, OptimizerOptions())
    traced = Session(
        bench_db,
        OptimizerOptions(),
        tracer=Tracer(),
        registry=MetricsRegistry(),
    )

    # Warm-up settles both plan caches and the allocator.
    bare.execute(sql)
    traced.execute(sql)

    traced_times, bare_times = [], []
    # Interleave rounds so drift (thermal, GC) hits both arms equally.
    for _ in range(ROUNDS):
        start = time.perf_counter()
        bare.execute(sql)
        bare_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        traced.execute(sql)
        traced_times.append(time.perf_counter() - start)

    on = _trimmed_mean(traced_times)
    off = _trimmed_mean(bare_times)
    overhead = (on - off) / off
    print(
        f"\n== Trace+ledger overhead (Fig-8 n={BATCH_QUERIES}, "
        f"{ROUNDS} rounds) ==\n"
        f"  bare {off * 1000:7.2f}ms  traced {on * 1000:7.2f}ms  "
        f"({overhead * 100:+.2f}%)"
    )

    # The instrumentation actually ran: spans recorded, flow edges
    # observed, ledger published with positive realized savings.
    events = [e.to_dict() for e in traced.tracer.events]
    report = analyze(events)
    assert any(e["name"] == "batch" for e in events)
    assert report.flow_edges, "spool reads must emit flow events"
    assert traced.registry.get("ledger.batches") >= ROUNDS
    assert traced.registry.get("ledger.measured_savings_total") > 0

    assert overhead < OVERHEAD_BUDGET, (
        f"trace+ledger overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["budget"] = OVERHEAD_BUDGET
    benchmark.extra_info["traced_ms"] = round(on * 1000, 2)
    benchmark.extra_info["bare_ms"] = round(off * 1000, 2)
    benchmark.extra_info["trace_events"] = len(events)
    benchmark(lambda: traced.execute(sql))
