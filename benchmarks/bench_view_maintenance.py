"""§6.4 — maintenance of multiple materialized views.

Three materialized views defined as the Example 1 queries; the customer
table receives an insert batch. The maintenance expressions (over the
delta table) share a covering subexpression, reproducing the paper's
"maintenance time was reduced by a factor of three".
"""

import numpy as np
import pytest

from repro.bench.harness import bench_scale_factor
from repro.catalog.tpch import build_tpch_database
from repro.optimizer.options import OptimizerOptions
from repro.views.maintenance import MaintenancePlanner
from repro.views.materialized import ViewManager
from repro.workloads.example1 import Q1_SQL, Q2_SQL, Q3_SQL

PAPER_REFERENCE = "maintenance time reduced by a factor of three (§6.4)"


def _fresh_setup():
    db = build_tpch_database(scale_factor=min(bench_scale_factor(), 0.005))
    manager = ViewManager(db)
    manager.create_view("mv1", Q1_SQL)
    manager.create_view("mv2", Q2_SQL)
    manager.create_view("mv3", Q3_SQL)
    manager.refresh_all()
    return db, manager


def _delta_rows(count=100, start=50_000_000):
    rng = np.random.default_rng(99)
    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
    return [
        (
            start + i,
            f"Customer#{start + i}",
            int(rng.integers(0, 25)),
            segments[int(rng.integers(0, 5))],
            float(np.round(rng.uniform(0, 1000), 2)),
        )
        for i in range(count)
    ]


def test_view_maintenance_sharing(benchmark):
    db, manager = _fresh_setup()
    rows = _delta_rows()

    with_cse = MaintenancePlanner(db, manager, OptimizerOptions()).apply_insert(
        "customer", rows
    )

    db2, manager2 = _fresh_setup()
    without = MaintenancePlanner(
        db2, manager2, OptimizerOptions(enable_cse=False)
    ).apply_insert("customer", rows)

    ratio = without.measured_cost / with_cse.measured_cost
    print("\n== View maintenance (3 materialized views, insert into customer) ==")
    print(f"maintenance cost without CSEs: {without.measured_cost:10.2f}")
    print(f"maintenance cost with CSEs:    {with_cse.measured_cost:10.2f}")
    print(f"reduction factor:              {ratio:10.2f}x")
    print(f"shared CSEs used:              {with_cse.optimization.stats.used_cses}")
    print(f"paper reference: {PAPER_REFERENCE}")

    assert with_cse.optimization.stats.used_cses
    assert ratio > 2.0
    assert sorted(with_cse.affected_views) == ["mv1", "mv2", "mv3"]

    benchmark.extra_info["cost_with_cse"] = round(with_cse.measured_cost, 2)
    benchmark.extra_info["cost_without_cse"] = round(without.measured_cost, 2)
    benchmark.extra_info["reduction"] = round(ratio, 2)

    def run():
        db3, manager3 = _fresh_setup()
        return MaintenancePlanner(db3, manager3).apply_insert(
            "customer", _delta_rows(50, start=90_000_000)
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_delta_signatures_never_mix_with_base(benchmark):
    """Delta expressions get the signature name delta(customer): they share
    among themselves, never with base-table expressions."""
    db, manager = _fresh_setup()
    planner = MaintenancePlanner(db, manager)
    batch, _ = planner.build_maintenance_batch("customer", "customer")
    signatures = set()
    for query in batch.queries:
        for table in query.block.tables:
            signatures.add(table.signature_name)
    assert "delta(customer)" in signatures
    assert "customer" not in signatures
    benchmark(lambda: planner.build_maintenance_batch("customer", "customer"))
