"""Table 4 — two eight-table join queries (paper §6.5, "Complex Joins").

Reproduces the candidate explosion without heuristics (the paper reports
51 candidates; our exploration generates the same count at the default
settings) tamed to a handful with pruning, and a ~2x plan-cost reduction.
"""

import pytest

from conftest import record
from repro.api import Session
from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    format_table,
    run_scenario,
    speedup,
)
from repro.optimizer.options import OptimizerOptions
from repro.workloads import complex_join_batch

PAPER_REFERENCE = {
    "# of CSEs": "2 [2] with pruning, 51 candidates without",
    "execution": "81.49s -> 48.73s (~1.7x)",
}


def test_table4(benchmark, small_bench_db):
    sql = complex_join_batch()
    results = run_scenario(small_bench_db, sql)
    print()
    print(format_table("Table 4: complex joins (8 tables)", results, PAPER_REFERENCE))

    by_mode = {r.mode: r for r in results}
    assert by_mode[MODE_CSE].candidates <= 8
    assert by_mode[MODE_CSE].used_cses
    assert speedup(results) > 1.2

    record(benchmark, results)
    session = Session(small_bench_db, OptimizerOptions())
    benchmark(lambda: session.execute(sql))


def test_candidate_explosion(benchmark, small_bench_db):
    """Without heuristics the exploration generates dozens of candidates —
    the paper reports 51 — which the heuristics cut to a handful."""
    unpruned = Session(
        small_bench_db,
        OptimizerOptions(enable_heuristics=False, max_cse_optimizations=2),
    ).optimize(complex_join_batch())
    pruned_session = Session(small_bench_db, OptimizerOptions())
    pruned = pruned_session.optimize(complex_join_batch())
    print(
        f"\ncandidates: {unpruned.stats.candidates_generated} without "
        f"heuristics vs {pruned.stats.candidates_generated} with "
        f"(from {pruned.stats.candidates_before_pruning} pre-pruning)"
    )
    assert unpruned.stats.candidates_generated >= 40
    assert pruned.stats.candidates_generated <= 8
    benchmark(lambda: pruned_session.optimize(complex_join_batch()))
