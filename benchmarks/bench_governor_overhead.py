"""Governor overhead: budgeted execution vs. ungoverned.

Cooperative cancellation checks run once per operator invocation and the
budget charge once per produced frame, so a generous budget (one that
never trips) must cost low single digits of wall time. This benchmark
runs the adapted TPC-H suite with and without a ResourceGovernor +
QueryBudget — interleaved rounds, trimmed means — and asserts the
governed arm stays under an overhead budget (default 2%; override with
the ``REPRO_GOVERNOR_OVERHEAD_BUDGET`` env var, a fraction, e.g. ``0.05``
for noisy CI runners).
"""

import os
import time

from repro.api import Session
from repro.optimizer.options import OptimizerOptions
from repro.serve import QueryBudget, ResourceGovernor
from repro.workloads.tpch_queries import ADAPTED_QUERIES

ROUNDS = 9
#: allowed (governed - plain) / plain wall-time fraction.
OVERHEAD_BUDGET = float(
    os.environ.get("REPRO_GOVERNOR_OVERHEAD_BUDGET", "0.02")
)
SUITE = ["Q1", "Q3", "Q5", "Q10"]
#: generous limits: every check runs, nothing ever trips.
BUDGET = QueryBudget(
    deadline_ms=600_000.0,
    max_rows=10**12,
    max_spool_rows=10**12,
    max_spool_bytes=10**15,
)


def _trimmed_mean(samples):
    samples = sorted(samples)
    trimmed = samples[1:-1] if len(samples) > 4 else samples
    return sum(trimmed) / len(trimmed)


def _run_suite(session, budget=None):
    for name in SUITE:
        outcome = session.execute(ADAPTED_QUERIES[name], budget=budget)
        assert outcome.degraded is False


def test_governor_overhead_under_budget(benchmark, bench_db):
    # Plan caching disabled so every round pays the full optimize+execute
    # path the token checks are threaded through.
    governed = Session(
        bench_db,
        OptimizerOptions(),
        plan_cache_size=0,
        governor=ResourceGovernor(max_concurrent=4),
    )
    plain = Session(bench_db, OptimizerOptions(), plan_cache_size=0)

    _run_suite(governed, BUDGET)
    _run_suite(plain)

    on_times, off_times = [], []
    # Interleave rounds so drift (thermal, GC) hits both arms equally.
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_suite(plain)
        off_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _run_suite(governed, BUDGET)
        on_times.append(time.perf_counter() - start)

    on = _trimmed_mean(on_times)
    off = _trimmed_mean(off_times)
    overhead = (on - off) / off
    print(
        f"\n== Governor overhead ({'+'.join(SUITE)}, {ROUNDS} rounds) ==\n"
        f"  plain {off * 1000:7.2f}ms  governed {on * 1000:7.2f}ms  "
        f"({overhead * 100:+.2f}%)"
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"governor overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["budget"] = OVERHEAD_BUDGET
    benchmark.extra_info["governed_ms"] = round(on * 1000, 2)
    benchmark.extra_info["plain_ms"] = round(off * 1000, 2)
    benchmark(lambda: _run_suite(governed, BUDGET))
