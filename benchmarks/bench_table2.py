"""Table 2 — the Example 1 batch plus Q4 (paper §6.2, stacked CSEs).

Adding the part⋈orders⋈lineitem query changes the candidate set: the
aggregated orders⋈lineitem expression becomes a candidate with consumers in
all four queries *and* inside the wide candidate's body (stacked CSEs). The
shape reproduced here: a different candidate set than Table 1 and a large
execution reduction.
"""

import pytest

from conftest import record
from repro.api import Session
from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    format_table,
    run_scenario,
    speedup,
)
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch
from repro.workloads import example1_batch, example1_with_q4

PAPER_REFERENCE = {
    "# of CSEs": "2 [1] with pruning, 5 [15] without",
    "execution": "216.40s -> 85.94s (~2.5x)",
}


def test_table2(benchmark, bench_db):
    sql = example1_with_q4()
    results = run_scenario(bench_db, sql)
    print()
    print(format_table("Table 2: query batch (Q1, Q2, Q3, Q4)", results, PAPER_REFERENCE))

    by_mode = {r.mode: r for r in results}
    assert by_mode[MODE_CSE].candidates == 2
    assert speedup(results) > 1.5

    record(benchmark, results)
    session = Session(bench_db, OptimizerOptions())
    benchmark(lambda: session.execute(sql))


def test_candidate_set_differs_from_table1(benchmark, bench_db):
    """'The additional query results in a different overall choice of
    covering subexpressions' (§6.2)."""
    session = Session(bench_db, OptimizerOptions())
    three = session.optimize(example1_batch())
    four = session.optimize(example1_with_q4())
    sigs3 = {c.definition.signature.tables for c in three.candidates}
    sigs4 = {c.definition.signature.tables for c in four.candidates}
    print(f"\ncandidates Q1-Q3: {sorted(sigs3)}")
    print(f"candidates Q1-Q4: {sorted(sigs4)}")
    assert sigs3 != sigs4
    assert ("lineitem", "orders") in sigs4
    benchmark(lambda: session.optimize(example1_with_q4()))


def test_stacked_consumers_detected(benchmark, bench_db):
    """The §5.5 machinery: the narrow candidate is consumable inside the
    wide candidate's body and settles at the batch root."""
    from repro.optimizer.engine import Optimizer

    def run():
        optimizer = Optimizer(bench_db, OptimizerOptions())
        batch = bind_batch(bench_db.catalog, example1_with_q4())
        result = optimizer.optimize(batch)
        narrow = next(
            c for c in result.candidates
            if c.definition.signature.tables == ("lineitem", "orders")
        )
        return optimizer, narrow

    optimizer, narrow = run()
    assert optimizer._body_specs[narrow.cse_id]
    assert narrow.lifted_to_root
    print(
        f"\nstacked: {narrow.cse_id} has "
        f"{len(optimizer._body_specs[narrow.cse_id])} body consumer(s) and "
        f"{len(optimizer._specs[narrow.cse_id])} query consumer(s)"
    )
    benchmark(lambda: run()[0])
