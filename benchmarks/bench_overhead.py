"""§6 preamble — optimizer overhead when no sharing exists.

"We ran the optimizer on several TPC-H queries that have no sharing
opportunities and tried to measure the overhead of our algorithm. The
overhead was so small that we could not reliably measure it."

Here we *can* measure it: signature registration plus the empty detection
check, as a fraction of normal optimization time.
"""

import time

import pytest

from repro.api import Session
from repro.optimizer.options import OptimizerOptions

#: Single queries with no sharable subexpressions.
LONELY_QUERIES = [
    "select c_nationkey, sum(c_acctbal) as t from customer group by c_nationkey",
    (
        "select n_name, sum(o_totalprice) as t "
        "from nation, customer, orders "
        "where n_nationkey = c_nationkey and c_custkey = o_custkey "
        "group by n_name"
    ),
    (
        "select p_type, sum(l_extendedprice) as t from part, lineitem "
        "where p_partkey = l_partkey group by p_type"
    ),
]


def _mean_opt_time(session, sql, rounds=7):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        session.optimize(sql)
        times.append(time.perf_counter() - start)
    times.sort()
    return sum(times[1:-1]) / (len(times) - 2)  # trimmed mean


def test_overhead_without_sharing(benchmark, bench_db):
    with_cse = Session(bench_db, OptimizerOptions())
    without = Session(bench_db, OptimizerOptions(enable_cse=False))
    print("\n== Optimizer overhead on queries with no sharing (§6) ==")
    overheads = []
    for sql in LONELY_QUERIES:
        on = _mean_opt_time(with_cse, sql)
        off = _mean_opt_time(without, sql)
        overhead = (on - off) / off
        overheads.append(overhead)
        result = with_cse.optimize(sql)
        print(
            f"  {sql.split('from')[1].split('where')[0].strip():<40} "
            f"opt {off * 1000:6.2f}ms -> {on * 1000:6.2f}ms "
            f"({overhead * +100:+.1f}%)  "
            f"signatures={result.stats.signature_registrations}"
        )
        # No candidates, no extra optimization passes.
        assert result.stats.candidates_generated == 0
        assert result.stats.cse_optimizations == 0
    mean_overhead = sum(overheads) / len(overheads)
    print(f"  mean overhead: {mean_overhead * 100:+.1f}%")
    # "So small we could not reliably measure it": generously, under 30%
    # of optimization time even in interpreted Python.
    assert mean_overhead < 0.30
    benchmark.extra_info["mean_overhead"] = round(mean_overhead, 4)
    benchmark(lambda: with_cse.optimize(LONELY_QUERIES[1]))
