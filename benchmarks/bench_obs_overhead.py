"""Observability overhead: metrics enabled vs. disabled.

The registry's design goal is near-zero cost when disabled and small
single-digit-percent cost when enabled (increments are per operator or per
phase, never per row). This benchmark runs the adapted TPC-H suite both
ways — interleaved rounds, trimmed means — and asserts the enabled
registry stays under an overhead budget (default 5%; override with the
``REPRO_OBS_OVERHEAD_BUDGET`` env var, a fraction, e.g. ``0.08`` for
noisy CI runners).
"""

import os
import time

from repro.api import Session
from repro.obs import MetricsRegistry
from repro.optimizer.options import OptimizerOptions
from repro.workloads.tpch_queries import ADAPTED_QUERIES

ROUNDS = 9
#: allowed (enabled - disabled) / disabled wall-time fraction.
OVERHEAD_BUDGET = float(os.environ.get("REPRO_OBS_OVERHEAD_BUDGET", "0.05"))
#: a representative slice of the suite: joins, aggregation, a spool-heavy
#: batch would hide optimizer overhead behind execution, so use singles.
SUITE = ["Q1", "Q3", "Q5", "Q10"]


def _trimmed_mean(samples):
    samples = sorted(samples)
    trimmed = samples[1:-1] if len(samples) > 4 else samples
    return sum(trimmed) / len(trimmed)


def _run_suite(session):
    for name in SUITE:
        session.execute(ADAPTED_QUERIES[name])


def test_metrics_overhead_under_budget(benchmark, bench_db):
    # Plan caching disabled: the point is the instrumentation overhead of
    # a full optimize+execute, so every round must really optimize.
    enabled = Session(
        bench_db,
        OptimizerOptions(),
        registry=MetricsRegistry(),
        plan_cache_size=0,
    )
    disabled = Session(bench_db, OptimizerOptions(), plan_cache_size=0)

    # Warm-up (JIT-free Python, but caches/allocators still settle).
    _run_suite(enabled)
    _run_suite(disabled)

    on_times, off_times = [], []
    # Interleave rounds so drift (thermal, GC) hits both arms equally.
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_suite(disabled)
        off_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _run_suite(enabled)
        on_times.append(time.perf_counter() - start)

    on = _trimmed_mean(on_times)
    off = _trimmed_mean(off_times)
    overhead = (on - off) / off
    print(
        f"\n== Metrics overhead ({'+'.join(SUITE)}, {ROUNDS} rounds) ==\n"
        f"  disabled {off * 1000:7.2f}ms  enabled {on * 1000:7.2f}ms  "
        f"({overhead * 100:+.2f}%)"
    )
    # The registry actually recorded the runs.
    counters = enabled.registry.snapshot()["counters"]
    assert counters.get("optimizer.batches", 0) >= ROUNDS * len(SUITE)
    assert counters.get("executor.operator_invocations", 0) > 0
    # Budget: enabled metrics must cost < OVERHEAD_BUDGET wall time.
    assert overhead < OVERHEAD_BUDGET, (
        f"metrics overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100:.0f}% budget"
    )
    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["budget"] = OVERHEAD_BUDGET
    benchmark.extra_info["enabled_ms"] = round(on * 1000, 2)
    benchmark.extra_info["disabled_ms"] = round(off * 1000, 2)
    benchmark(lambda: _run_suite(enabled))
