"""Cross-session sharing benchmark: micro-batched vs isolated serving.

Eight sessions concurrently serve overlapping three-table aggregations
(same ``customer ⋈ orders ⋈ lineitem`` core, different group keys and
aggregates — the workload shape the coordinator exists for). Two arms,
interleaved-free (each measured over its own rounds):

* **isolated** — no coordinator: every session optimizes and executes its
  own query (plan caches warm after the first round, so the steady state
  measures execution, not repeated optimization);
* **shared** — one coordinator with an 8-way window: the eight arrivals
  merge into one batch per round, the join core materializes once, and
  every consumer reads the shared spool.

The aggregate-throughput ratio must clear ``SPEEDUP_FLOOR`` (default 2.0,
override with ``REPRO_CROSS_SESSION_SPEEDUP``), and every shared-arm row
set must equal the isolated rows (the repo's standard rounded
comparison). A second panel optimizes the merged 8-query batch under the
paper's Step-3 subset enumeration vs the greedy AND-OR DAG heuristic
(cs/9910021) and reports both optimization times and costs.
"""

from __future__ import annotations

import os
import threading
import time

from repro.api import Session
from repro.obs import MetricsRegistry
from repro.optimizer.options import OptimizerOptions
from repro.serve import SharedBatchCoordinator

SESSIONS = 8
ROUNDS = 5
WINDOW_MS = 250.0

_CORE = (
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
)

#: eight overlapping queries: one per session, all sharing the join core.
QUERIES = [
    f"select c_nationkey, sum(l_extendedprice) as v {_CORE}group by c_nationkey",
    f"select c_mktsegment, sum(l_quantity) as v {_CORE}group by c_mktsegment",
    f"select o_orderstatus, sum(l_extendedprice) as v {_CORE}group by o_orderstatus",
    f"select o_orderpriority, sum(l_quantity) as v {_CORE}group by o_orderpriority",
    f"select c_nationkey, count(*) as v {_CORE}group by c_nationkey",
    f"select c_mktsegment, count(*) as v {_CORE}group by c_mktsegment",
    f"select o_orderstatus, sum(o_totalprice) as v {_CORE}group by o_orderstatus",
    f"select o_orderpriority, count(*) as v {_CORE}group by o_orderpriority",
]


def _speedup_floor() -> float:
    return float(os.environ.get("REPRO_CROSS_SESSION_SPEEDUP", "2.0"))


def _norm(rows):
    return sorted(
        [
            tuple(round(v, 4) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


def _serve_rounds(sessions, rounds):
    """Each session serves its query ``rounds`` times, all concurrently.

    Arrivals are re-synchronized per round (a barrier): the workload
    models bursts of concurrent requests — the regime micro-batching
    targets — rather than a staggered trickle, and both arms serve the
    identical arrival pattern. Returns (aggregate wall seconds,
    {query index: last row set})."""
    rows = {}
    errors = []
    barrier = threading.Barrier(len(sessions))

    def worker(index, session):
        try:
            for _ in range(rounds):
                barrier.wait()
                outcome = session.execute(QUERIES[index])
                rows[index] = _norm(outcome.execution.results[0].rows)
        except BaseException as error:  # noqa: BLE001 — re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i, s), daemon=True)
        for i, s in enumerate(sessions)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(300.0)
    wall = time.perf_counter() - start
    assert not any(t.is_alive() for t in threads), "serving arm hung"
    if errors:
        raise errors[0]
    return wall, rows


def test_eight_session_shared_throughput(benchmark, bench_db):
    floor = _speedup_floor()

    isolated_sessions = [Session(bench_db) for _ in range(SESSIONS)]
    # One untimed warmup round per arm: both arms measure the steady
    # state (plan caches warm — per-session caches here, the merged-batch
    # cache in the shared arm), not one-off optimization cost.
    _serve_rounds(isolated_sessions, 1)
    isolated_wall, isolated_rows = _serve_rounds(isolated_sessions, ROUNDS)

    registry = MetricsRegistry()
    coordinator = SharedBatchCoordinator(
        window_ms=WINDOW_MS, max_group=SESSIONS, registry=registry
    )
    shared_sessions = [
        Session(bench_db, coordinator=coordinator, registry=registry)
        for _ in range(SESSIONS)
    ]
    _serve_rounds(shared_sessions, 1)
    shared_wall, shared_rows = _serve_rounds(shared_sessions, ROUNDS)

    # Rows are identical to isolated execution, query by query.
    for index in range(SESSIONS):
        assert shared_rows[index] == isolated_rows[index], (
            f"query {index} diverged under sharing"
        )

    counters = registry.snapshot()["counters"]
    merged = counters.get("coordinator.merged_consumers", 0)
    assert merged >= SESSIONS, "coordinator never merged a window"
    assert counters.get("coordinator.spools_freed", 0) == counters.get(
        "coordinator.spools_published", 0
    )

    total = SESSIONS * ROUNDS
    isolated_qps = total / isolated_wall
    shared_qps = total / shared_wall
    ratio = shared_qps / isolated_qps
    print(
        f"\n== Cross-session serving ({SESSIONS} sessions x {ROUNDS} "
        f"rounds) ==\n"
        f"  isolated {isolated_wall * 1000:8.1f}ms  "
        f"({isolated_qps:6.1f} q/s)\n"
        f"  shared   {shared_wall * 1000:8.1f}ms  "
        f"({shared_qps:6.1f} q/s)   {ratio:.2f}x  "
        f"[{merged} merged consumers]"
    )
    benchmark.extra_info["isolated_ms"] = round(isolated_wall * 1000, 2)
    benchmark.extra_info["shared_ms"] = round(shared_wall * 1000, 2)
    benchmark.extra_info["throughput_ratio"] = round(ratio, 2)
    benchmark.extra_info["merged_consumers"] = int(merged)
    assert ratio >= floor, (
        f"shared throughput {ratio:.2f}x below the {floor:.1f}x floor"
    )
    benchmark(lambda: shared_sessions[0].execute(QUERIES[0]))


def test_step3_strategy_panel(benchmark, bench_db):
    """Merged 8-query batch: paper subset enumeration vs greedy DAG."""
    sql = ";\n".join(QUERIES)
    panel = {}
    for strategy in ("paper", "greedy"):
        session = Session(
            bench_db,
            OptimizerOptions(cse_strategy=strategy),
            plan_cache_size=0,
        )
        start = time.perf_counter()
        result = session.optimize(sql)
        wall = time.perf_counter() - start
        assert result.stats.strategy == strategy
        panel[strategy] = {
            "optimize_ms": round(wall * 1000, 2),
            "est_cost": round(result.est_cost, 1),
            "candidates": result.stats.candidates_generated,
            "used_cses": list(result.stats.used_cses),
        }
    print(
        f"\n== Step-3 strategy panel (merged {SESSIONS}-query batch) ==\n"
        + "\n".join(
            f"  {name:<6} {info['optimize_ms']:8.2f}ms  "
            f"est_cost {info['est_cost']:10.1f}  "
            f"cses {info['used_cses'] or 'none'}"
            for name, info in panel.items()
        )
    )
    benchmark.extra_info.update(panel)
    # Both strategies must share: the merged batch is exactly the high
    # candidate-count regime the greedy path exists for.
    assert panel["paper"]["used_cses"]
    assert panel["greedy"]["used_cses"]
    benchmark(
        lambda: Session(
            bench_db,
            OptimizerOptions(cse_strategy="greedy"),
            plan_cache_size=0,
        ).optimize(sql)
    )
