"""Concurrency tests for the parallel executor and shared-session serving.

The contract under test: parallel execution is an *optimization only* —
results, deterministic metrics, and per-operator row counts are identical
to the serial executor at every worker count, each kept CSE materializes
exactly once, failures propagate to the caller, and one Session can be
hammered from many threads without corrupting results or the plan cache.
"""

from __future__ import annotations

import threading

import pytest

from repro import OptimizerOptions, Session
from repro.errors import ExecutionError
from repro.obs import MetricsRegistry
from repro.serve import ParallelExecutor
from repro.workloads import (
    example1_batch,
    independent_pairs_batch,
    scaleup_batch,
)

BATCHES = {
    "example1": example1_batch(),
    "pairs": independent_pairs_batch(),
    "scaleup6": scaleup_batch(6),
}


def _rows(execution):
    """(name, columns, rows) per query — full byte-level result identity."""
    return [
        (result.name, result.columns, result.rows)
        for result in execution.results
    ]


@pytest.fixture(scope="module")
def shared_spool_runs(small_db):
    """Serial and optimized bundles for both batches, computed once."""
    session = Session(small_db, OptimizerOptions())
    runs = {}
    for name, sql in BATCHES.items():
        result = session.optimize(sql)
        serial = session.execute_bundle(result, workers=1)
        runs[name] = (session, result, serial)
    return runs


@pytest.mark.parametrize("workers", [1, 2, 8])
@pytest.mark.parametrize("batch", sorted(BATCHES))
def test_parallel_results_identical_to_serial(
    shared_spool_runs, batch, workers
):
    session, result, serial = shared_spool_runs[batch]
    parallel = session.execute_bundle(result, workers=workers)
    assert _rows(parallel) == _rows(serial)


@pytest.mark.parametrize("batch", sorted(BATCHES))
def test_deterministic_metrics_match_serial(shared_spool_runs, batch):
    session, result, serial = shared_spool_runs[batch]
    parallel = session.execute_bundle(result, workers=4)
    assert parallel.metrics.rows_scanned == serial.metrics.rows_scanned
    assert parallel.metrics.rows_joined == serial.metrics.rows_joined
    assert (
        parallel.metrics.spools_materialized
        == serial.metrics.spools_materialized
    )
    assert (
        parallel.metrics.spool_rows_written
        == serial.metrics.spool_rows_written
    )
    assert parallel.metrics.spool_rows_read == serial.metrics.spool_rows_read
    assert parallel.metrics.cost_units == pytest.approx(
        serial.metrics.cost_units
    )


def test_each_kept_cse_materializes_exactly_once(shared_spool_runs):
    session, result, _ = shared_spool_runs["scaleup6"]
    assert result.stats.used_cses
    parallel = session.execute_bundle(result, workers=8)
    for cse_id in result.stats.used_cses:
        stats = parallel.metrics.spool_stats[cse_id]
        assert stats.writes == 1, f"{cse_id} materialized {stats.writes}x"
        assert stats.reads >= 2, f"{cse_id} is shared; expected 2+ reads"


def test_operator_stats_totals_match_serial(shared_spool_runs):
    session, result, _ = shared_spool_runs["example1"]
    serial = session.execute_bundle(result, collect_op_stats=True, workers=1)
    parallel = session.execute_bundle(
        result, collect_op_stats=True, workers=4
    )
    assert serial.op_stats is not None and parallel.op_stats is not None
    assert set(parallel.op_stats) == set(serial.op_stats)
    for node_id, stats in serial.op_stats.items():
        mirrored = parallel.op_stats[node_id]
        assert mirrored.rows_out == stats.rows_out
        assert mirrored.invocations == stats.invocations


def test_registry_counts_parallel_batches(small_db):
    registry = MetricsRegistry()
    session = Session(
        small_db, OptimizerOptions(), registry=registry, workers=4
    )
    session.execute(BATCHES["example1"])
    counters = registry.snapshot()["counters"]
    assert counters["executor.parallel_batches"] == 1
    assert registry.snapshot()["gauges"]["executor.parallel_workers"] == 4


def test_worker_failure_propagates(shared_spool_runs):
    session, result, _ = shared_spool_runs["example1"]

    class FailingExecutor(ParallelExecutor):
        def _execute_query(self, query_plan, ctx):
            if query_plan.name == "Q2":
                raise ExecutionError("injected Q2 failure")
            return super()._execute_query(query_plan, ctx)

    executor = FailingExecutor(
        session.database, session.cost_model, workers=4
    )
    with pytest.raises(ExecutionError, match="injected Q2 failure"):
        executor.execute(result.bundle)


class _CountingSpools(tuple):
    """A root_spools stand-in that counts full iterations."""

    iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


def test_spool_body_lookup_is_hoisted(shared_spool_runs):
    """The spool-body map is built once per execute, not once per spool
    task: rebuilding dict(bundle.root_spools) inside every task rescans
    the bundle O(spools^2) across a wide DAG. Expected passes: one for
    build_schedule, one for the hoisted body map."""
    session, result, _ = shared_spool_runs["scaleup6"]
    bundle = result.bundle
    original = bundle.root_spools
    assert len(original) >= 1
    counting = _CountingSpools(original)
    bundle.root_spools = counting
    try:
        executor = ParallelExecutor(
            session.database, session.cost_model, workers=4
        )
        executor.execute(bundle)
        iterations = counting.iterations
    finally:
        bundle.root_spools = original
    assert iterations == 2, (
        f"root_spools iterated {iterations}x; per-task dict rebuilds?"
    )


def test_task_seconds_observed_for_every_outcome(shared_spool_runs):
    """Task latency lands in the histogram on failure too (tagged by
    outcome), so failing tasks don't vanish from the p99."""
    session, result, _ = shared_spool_runs["example1"]
    registry = MetricsRegistry()

    class FailingExecutor(ParallelExecutor):
        def _execute_query(self, query_plan, ctx):
            if query_plan.name == "Q2":
                raise ExecutionError("injected Q2 failure")
            return super()._execute_query(query_plan, ctx)

    executor = FailingExecutor(
        session.database, session.cost_model, registry=registry, workers=4
    )
    with pytest.raises(ExecutionError):
        executor.execute(result.bundle)
    errored = registry.histogram(
        "executor.task_seconds", labels={"outcome": "error"}
    )
    assert errored is not None and errored.count == 1
    succeeded = registry.histogram(
        "executor.task_seconds", labels={"outcome": "ok"}
    )
    # The shared spool materialized before Q2 could fail.
    assert succeeded is not None and succeeded.count >= 1


def test_task_seconds_tags_cancelled_tasks(shared_spool_runs):
    from repro.serve import QueryBudget

    session, result, _ = shared_spool_runs["example1"]
    assert result.bundle.root_spools
    registry = MetricsRegistry()
    executor = ParallelExecutor(
        session.database, session.cost_model, registry=registry, workers=4
    )
    from repro.errors import BudgetExceededError

    with pytest.raises(BudgetExceededError):
        executor.execute(
            result.bundle, token=QueryBudget(max_spool_rows=0).start()
        )
    cancelled = registry.histogram(
        "executor.task_seconds", labels={"outcome": "cancelled"}
    )
    assert cancelled is not None and cancelled.count >= 1


def test_threads_hammering_one_shared_session(small_db):
    """8 threads share one Session: mixed serial/parallel executes of two
    batches must all produce the reference rows, with no leaked errors and
    a consistent plan cache."""
    registry = MetricsRegistry()
    session = Session(small_db, OptimizerOptions(), registry=registry)
    expected = {
        name: _rows(session.execute(sql).execution)
        for name, sql in BATCHES.items()
    }
    rounds = 4
    errors = []
    mismatches = []
    ready = threading.Barrier(8)

    def hammer(thread_index: int) -> None:
        try:
            ready.wait(timeout=30)
            for i in range(rounds):
                name = sorted(BATCHES)[(thread_index + i) % len(BATCHES)]
                outcome = session.execute(
                    BATCHES[name], parallel=(i % 2 == 0)
                )
                if _rows(outcome.execution) != expected[name]:
                    mismatches.append((thread_index, name))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads)
    assert not errors
    assert not mismatches
    # Every post-warmup lookup hit the cache; nothing invalidated it.
    counters = registry.snapshot()["counters"]
    assert counters["plan_cache.miss"] == len(BATCHES)
    assert counters["plan_cache.hit"] == 8 * rounds
    assert "plan_cache.invalidation" not in counters
