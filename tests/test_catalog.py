"""Unit tests for schema metadata and statistics (repro.catalog)."""

import numpy as np
import pytest

from repro.catalog.schema import Catalog, ColumnSchema, IndexSchema, TableSchema
from repro.catalog.statistics import ColumnStats, Histogram, TableStats
from repro.errors import CatalogError
from repro.types import DataType


def _simple_schema(name="t"):
    return TableSchema(
        name,
        [
            ColumnSchema("a", DataType.INT),
            ColumnSchema("b", DataType.STRING),
        ],
        primary_key=("a",),
    )


class TestTableSchema:
    def test_column_lookup(self):
        schema = _simple_schema()
        assert schema.column("a").data_type is DataType.INT
        assert schema.column_type("b") is DataType.STRING
        assert schema.has_column("a") and not schema.has_column("zz")

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            _simple_schema().column("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t",
                [ColumnSchema("a", DataType.INT), ColumnSchema("a", DataType.INT)],
            )

    def test_bad_identifiers_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t t", [ColumnSchema("a", DataType.INT)])
        with pytest.raises(CatalogError):
            ColumnSchema("a b", DataType.INT)

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t", [ColumnSchema("a", DataType.INT)], primary_key=("b",)
            )

    def test_row_width(self):
        schema = _simple_schema()
        assert schema.row_width() == 8 + 25
        assert schema.row_width(["a"]) == 8

    def test_indexes(self):
        schema = _simple_schema()
        schema.add_index(IndexSchema("ix", "t", "a"))
        assert schema.index_on("a").name == "ix"
        assert schema.index_on("b") is None
        with pytest.raises(CatalogError):
            schema.add_index(IndexSchema("ix", "t", "a"))
        with pytest.raises(CatalogError):
            schema.add_index(IndexSchema("iy", "t", "zz"))
        with pytest.raises(CatalogError):
            schema.add_index(IndexSchema("iz", "other", "a"))


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(_simple_schema())
        assert catalog.has_table("T")  # case-insensitive
        assert catalog.table("t").name == "t"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(_simple_schema())
        with pytest.raises(CatalogError):
            catalog.add_table(_simple_schema())

    def test_drop(self):
        catalog = Catalog()
        catalog.add_table(_simple_schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_missing_lookup(self):
        with pytest.raises(CatalogError):
            Catalog().table("ghost")


class TestHistogram:
    def test_uniform_fractions(self):
        values = np.arange(1000, dtype=np.int64)
        hist = Histogram.build(values, buckets=16)
        assert hist.total == 1000
        assert hist.fraction_below(-5, True) == 0.0
        assert hist.fraction_below(2000, True) == 1.0
        mid = hist.fraction_below(500, False)
        assert 0.45 <= mid <= 0.55

    def test_fraction_between(self):
        values = np.arange(100, dtype=np.int64)
        hist = Histogram.build(values, buckets=10)
        frac = hist.fraction_between(25, 75)
        assert 0.4 <= frac <= 0.6

    def test_empty(self):
        hist = Histogram.build(np.empty(0, dtype=np.int64))
        assert hist.total == 0
        assert hist.fraction_below(5, True) == 0.0

    def test_skew(self):
        # 90% zeros, 10% spread: equi-depth should capture the skew.
        values = np.concatenate(
            [np.zeros(900, dtype=np.int64), np.arange(1, 101, dtype=np.int64)]
        )
        hist = Histogram.build(values, buckets=16)
        assert hist.fraction_below(1, False) >= 0.85


class TestColumnStats:
    def test_numeric_collection(self):
        values = np.array([1, 2, 2, 3, 3, 3], dtype=np.int64)
        stats = ColumnStats.collect(values, DataType.INT)
        assert stats.ndv == 3
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0
        assert stats.histogram is not None

    def test_string_collection(self):
        values = np.array(["a", "b", "a"], dtype=object)
        stats = ColumnStats.collect(values, DataType.STRING)
        assert stats.ndv == 2
        assert stats.min_value is None

    def test_empty(self):
        stats = ColumnStats.collect(np.empty(0, dtype=np.int64), DataType.INT)
        assert stats.ndv == 0

    def test_table_stats_access(self):
        table = TableStats(row_count=10, columns={"a": ColumnStats(ndv=4)})
        assert table.ndv("a") == 4
        assert table.ndv("missing", default=7) == 7
        assert table.column("missing") is None
