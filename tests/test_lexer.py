"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import TokenType, tokenize


def types(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_lowercased(self):
        assert values("Customer c_NationKey") == ["customer", "c_nationkey"]

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.14 and isinstance(tokens[1].value, float)

    def test_string_literal(self):
        assert values("'1996-07-01'") == ["1996-07-01"]

    def test_string_escape(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_operators(self):
        assert values("= <> < <= > >= + - / !=") == [
            "=", "<>", "<", "<=", ">", ">=", "+", "-", "/", "<>",
        ]

    def test_punctuation(self):
        assert types("( ) , . ; *")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.SEMICOLON,
            TokenType.STAR,
        ]

    def test_qualified_name(self):
        tokens = tokenize("c.custkey")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]

    def test_comment_skipped(self):
        assert values("select -- a comment\n 1") == ["SELECT", 1]

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("select @x")

    def test_bare_bang_rejected(self):
        with pytest.raises(LexerError):
            tokenize("a ! b")

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_number_then_dot_identifier(self):
        # "1.x" is number 1, dot, ident x (not a float)
        tokens = tokenize("1.x")
        assert tokens[0].value == 1
        assert tokens[1].type is TokenType.DOT
        assert tokens[2].value == "x"
