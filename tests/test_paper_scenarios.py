"""Integration tests reproducing the paper's experimental narratives (§6).

Each test asserts the *shape* the paper reports (candidate sets, pruning
outcomes, plan choices, cost reductions) and that every optimized plan
returns exactly the oracle's rows.
"""

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.optimizer.physical import PhysSpoolRead
from repro.workloads import (
    complex_join_batch,
    example1_batch,
    example1_with_q4,
    nested_query,
    scaleup_batch,
)


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


def assert_matches_oracle(session, batch, outcome):
    oracle = evaluate_batch(session.database, batch)
    for query in batch.queries:
        got = normalize(outcome.execution.query(query.name).rows)
        want = normalize(oracle[query.name])
        assert got == want, f"{query.name} differs from oracle"


class TestTable1Figure6:
    """§6.1: the Example 1 batch."""

    def test_heuristics_keep_single_aggregated_candidate(self, small_db):
        session = Session(small_db)
        result = session.optimize(example1_batch())
        stats = result.stats
        assert len(stats.candidate_ids) == 1
        assert stats.cse_optimizations == 1
        chosen = result.candidates[0].definition
        assert chosen.signature.has_groupby
        assert chosen.signature.tables == ("customer", "lineitem", "orders")
        # The covering predicate is the paper's E5 predicate: the common
        # date conjunct plus the c_nationkey range hull (0, 25).
        texts = " ".join(repr(c) for c in chosen.covering_conjuncts)
        assert "o_orderdate" in texts
        assert "c_nationkey > 0" in texts and "c_nationkey < 25" in texts

    def test_figure6_candidates_without_pruning(self, small_db):
        session = Session(small_db, OptimizerOptions(enable_heuristics=False))
        result = session.optimize(example1_batch())
        shapes = {
            (c.definition.signature.has_groupby, c.definition.signature.tables)
            for c in result.candidates
        }
        assert shapes == {
            (False, ("customer", "orders")),               # E1
            (False, ("lineitem", "orders")),               # E2
            (False, ("customer", "lineitem", "orders")),   # E3
            (True, ("lineitem", "orders")),                # E4
            (True, ("customer", "lineitem", "orders")),    # E5
        }

    def test_pruning_preserves_the_optimal_plan(self, small_db):
        pruned = Session(small_db).optimize(example1_batch())
        unpruned = Session(
            small_db, OptimizerOptions(enable_heuristics=False)
        ).optimize(example1_batch())
        assert pruned.est_cost == pytest.approx(unpruned.est_cost, rel=1e-9)
        # Both pick the aggregated three-table CSE.
        assert len(pruned.stats.used_cses) == 1
        assert len(unpruned.stats.used_cses) == 1

    def test_execution_speedup_shape(self, small_db):
        """Table 1: close to a 3X reduction in execution cost."""
        with_cse = Session(small_db).execute(example1_batch())
        # The paper's baseline shares nothing: batch-level scan sharing
        # would otherwise narrow the no-CSE side of the comparison.
        without = Session(
            small_db, OptimizerOptions(enable_cse=False),
            shared_scans=False,
        ).execute(example1_batch())
        ratio = (
            without.execution.metrics.cost_units
            / with_cse.execution.metrics.cost_units
        )
        assert ratio > 2.0

    def test_rows_correct_all_modes(self, small_db):
        for options in (
            OptimizerOptions(),
            OptimizerOptions(enable_cse=False),
            OptimizerOptions(enable_heuristics=False),
            OptimizerOptions(cost_mode="naive_split"),
            OptimizerOptions(dynamic_lca=False),
            OptimizerOptions(enable_stacked=False),
        ):
            session = Session(small_db, options)
            batch = session.bind(example1_batch())
            outcome = session.execute(batch)
            assert_matches_oracle(session, batch, outcome)


class TestTable2Stacked:
    """§6.2: adding Q4 changes the candidate set."""

    def test_candidate_set_changes_with_q4(self, small_db):
        session = Session(small_db)
        with_q4 = session.optimize(example1_with_q4())
        without_q4 = session.optimize(example1_batch())
        assert len(with_q4.stats.candidate_ids) > len(
            without_q4.stats.candidate_ids
        )
        # The orders⋈lineitem aggregation becomes a candidate only with Q4.
        signatures = {
            c.definition.signature.tables for c in with_q4.candidates
        }
        assert ("lineitem", "orders") in signatures

    def test_stacked_machinery_detects_body_consumers(self, small_db):
        from repro.optimizer.engine import Optimizer
        from repro.sql.binder import bind_batch

        optimizer = Optimizer(small_db, OptimizerOptions())
        batch = bind_batch(small_db.catalog, example1_with_q4())
        result = optimizer.optimize(batch)
        narrow = next(
            c for c in result.candidates
            if c.definition.signature.tables == ("lineitem", "orders")
        )
        assert optimizer._body_specs[narrow.cse_id], (
            "the narrow candidate should be consumable inside the wide "
            "candidate's body (stacked CSEs)"
        )
        assert narrow.lifted_to_root

    def test_execution_speedup_and_correctness(self, small_db):
        session = Session(small_db)
        batch = session.bind(example1_with_q4())
        outcome = session.execute(batch)
        without = Session(
            small_db, OptimizerOptions(enable_cse=False),
            shared_scans=False,
        ).execute(example1_with_q4())
        assert (
            without.execution.metrics.cost_units
            / outcome.execution.metrics.cost_units
            > 1.5
        )
        assert_matches_oracle(session, batch, outcome)


class TestTable3Figure7Nested:
    """§6.3: the nested query shares between main block and subquery."""

    def test_single_candidate_used(self, small_db):
        session = Session(small_db)
        result = session.optimize(nested_query())
        assert len(result.stats.candidate_ids) == 1
        assert result.stats.used_cses == result.stats.candidate_ids
        chosen = result.candidates[0].definition
        # Figure 7's E4: the aggregated customer⋈orders⋈lineitem.
        assert chosen.signature.has_groupby
        assert chosen.signature.tables == ("customer", "lineitem", "orders")

    def test_subquery_reads_spool(self, small_db):
        result = Session(small_db).optimize(nested_query())
        query = result.bundle.queries[0]
        sub_plan = next(iter(query.subquery_plans.values()))
        assert any(isinstance(n, PhysSpoolRead) for n in sub_plan.walk())
        assert any(isinstance(n, PhysSpoolRead) for n in query.plan.walk())

    def test_halved_execution_shape(self, small_db):
        """Table 3: execution time cut by about half."""
        with_cse = Session(small_db).execute(nested_query())
        without = Session(
            small_db, OptimizerOptions(enable_cse=False)
        ).execute(nested_query())
        ratio = (
            without.execution.metrics.cost_units
            / with_cse.execution.metrics.cost_units
        )
        assert ratio > 1.5

    def test_rows_correct(self, small_db):
        session = Session(small_db)
        batch = session.bind(nested_query())
        outcome = session.execute(batch)
        assert_matches_oracle(session, batch, outcome)
        # ORDER BY totaldisc desc respected.
        rows = outcome.execution.results[0].rows
        discs = [row[2] for row in rows]
        assert discs == sorted(discs, reverse=True)


class TestTable4ComplexJoins:
    """§6.5: two eight-table queries."""

    def test_candidate_explosion_tamed(self, tiny_db):
        pruned = Session(tiny_db).optimize(complex_join_batch())
        unpruned = Session(
            tiny_db,
            OptimizerOptions(
                enable_heuristics=False, max_cse_optimizations=4
            ),
        ).optimize(complex_join_batch())
        # The paper: 51 candidates without heuristics, 2 with. Shapes:
        assert unpruned.stats.candidates_generated >= 30
        assert pruned.stats.candidates_generated <= 8
        assert pruned.stats.candidates_before_pruning >= 20

    def test_cost_reduction_shape(self, tiny_db):
        result = Session(tiny_db).optimize(complex_join_batch())
        assert result.stats.used_cses
        assert result.est_cost < 0.8 * result.stats.est_cost_no_cse

    def test_rows_correct(self, tiny_db):
        session = Session(tiny_db)
        batch = session.bind(complex_join_batch())
        outcome = session.execute(batch)
        assert_matches_oracle(session, batch, outcome)


class TestFigure8Scaleup:
    """§6.5: cost benefit grows with batch size, optimization stays sane."""

    def test_benefit_grows_with_batch_size(self, tiny_db):
        reductions = []
        for n in (2, 4, 6):
            session = Session(tiny_db)
            result = session.optimize(scaleup_batch(n))
            reductions.append(result.stats.est_cost_no_cse - result.est_cost)
        assert reductions[0] > 0
        assert reductions[-1] > reductions[0]

    def test_single_cse_serves_whole_batch(self, tiny_db):
        result = Session(tiny_db).optimize(scaleup_batch(5))
        assert 1 <= len(result.stats.used_cses) <= 2

    def test_rows_correct(self, tiny_db):
        session = Session(tiny_db)
        batch = session.bind(scaleup_batch(4))
        outcome = session.execute(batch)
        assert_matches_oracle(session, batch, outcome)


class TestOverheadWithoutSharing:
    """§6 preamble: no sharable expressions → negligible overhead."""

    def test_no_candidates_for_disjoint_queries(self, small_db):
        sql = (
            "select r_name from region;"
            "select p_type, sum(p_availqty) as q from part group by p_type"
        )
        result = Session(small_db).optimize(sql)
        assert result.stats.sharable_buckets == 0
        assert result.stats.cse_optimizations == 0

    def test_single_query_no_self_sharing(self, small_db):
        result = Session(small_db).optimize(
            "select c_nationkey, sum(l_extendedprice) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_nationkey"
        )
        assert result.stats.candidates_generated == 0


class TestStackedActivation:
    """A workload engineered so the stacked plan clearly wins: two queries
    need γ(A⋈B⋈C)-style results and two more need the inner γ(B⋈C)."""

    SQL = (
        # Two queries over customer ⋈ orders ⋈ lineitem (fine aggregates).
        "select c_nationkey, sum(l_extendedprice) as v "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "group by c_nationkey;"
        "select c_mktsegment, sum(l_extendedprice) as v "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "group by c_mktsegment;"
        # Two queries over orders ⋈ lineitem alone.
        "select o_orderpriority, sum(l_extendedprice) as v "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "group by o_orderpriority;"
        "select o_orderstatus, sum(l_extendedprice) as v "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "group by o_orderstatus"
    )

    def test_stacked_spools_activate(self, small_db):
        session = Session(small_db)
        result = session.optimize(self.SQL)
        used = result.stats.used_cses
        assert len(used) >= 2, f"expected stacked spools, used={used}"
        # One used CSE's body must read another's spool.
        spool_ids = [cid for cid, _ in result.bundle.root_spools]
        stacked = False
        for cid, body in result.bundle.root_spools:
            reads = {
                n.cse_id for n in body.walk() if isinstance(n, PhysSpoolRead)
            }
            if reads & set(spool_ids):
                stacked = True
        assert stacked, "no spool body reads another spool"

    def test_stacked_rows_correct(self, small_db):
        session = Session(small_db)
        batch = session.bind(self.SQL)
        outcome = session.execute(batch)
        assert_matches_oracle(session, batch, outcome)

    def test_disabling_stacking_costs_more(self, small_db):
        stacked = Session(small_db).optimize(self.SQL)
        flat = Session(
            small_db, OptimizerOptions(enable_stacked=False)
        ).optimize(self.SQL)
        assert stacked.est_cost <= flat.est_cost
