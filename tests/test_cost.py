"""Tests for the cost model: positivity, monotonicity, spool economics."""

import pytest

from repro.optimizer.cost import PAGE_BYTES, CostModel


@pytest.fixture()
def model():
    return CostModel()


class TestScans:
    def test_scan_grows_with_rows(self, model):
        assert model.scan(1000, 100, 0) < model.scan(10_000, 100, 0)

    def test_scan_grows_with_width(self, model):
        assert model.scan(1000, 8, 0) < model.scan(1000, 200, 0)

    def test_predicates_cost_cpu(self, model):
        assert model.scan(1000, 100, 0) < model.scan(1000, 100, 3)

    def test_index_beats_scan_when_selective(self, model):
        table_rows, width = 100_000, 100
        full = model.scan(table_rows, width, 1)
        selective = model.index_scan(100, width, 0)
        assert selective < full

    def test_index_loses_when_unselective(self, model):
        table_rows, width = 100_000, 100
        full = model.scan(table_rows, width, 1)
        unselective = model.index_scan(90_000, width, 0)
        assert unselective > full


class TestJoinsAndAggregates:
    def test_hash_join_build_side_matters(self, model):
        small_build = model.hash_join(100, 10_000, 5000)
        large_build = model.hash_join(10_000, 100, 5000)
        assert small_build < large_build

    def test_cross_join_quadratic(self, model):
        assert model.cross_join(100, 100, 100) < model.cross_join(
            1000, 1000, 100
        )

    def test_aggregate_io_free(self, model):
        assert model.aggregate(1000, 10, 2) > 0
        assert model.aggregate(1000, 10, 2) < model.aggregate(100_000, 10, 2)

    def test_sort_superlinear(self, model):
        per_row_small = model.sort(1_000) / 1_000
        per_row_large = model.sort(1_000_000) / 1_000_000
        assert per_row_large > per_row_small

    def test_filter_project(self, model):
        assert model.filter(1000, 2) == pytest.approx(
            1000 * 2 * model.cpu_predicate
        )
        assert model.project(1000, 3) > 0


class TestSpoolEconomics:
    """The quantities §4.3.2/§5.2 reason about."""

    def test_write_more_expensive_than_read(self, model):
        rows, width = 10_000, 50
        assert model.spool_write(rows, width) > model.spool_read(rows, width)

    def test_pages(self, model):
        assert model.pages(8192, 1) == pytest.approx(1.0)
        assert model.pages(1000, int(PAGE_BYTES)) == pytest.approx(1000.0)

    def test_sharing_breakeven(self, model):
        """Sharing pays once the per-consumer read beats re-evaluation:
        C_E + C_W + N*C_R < N*C_E for the N-consumer case."""
        rows, width = 5_000, 40
        c_e = model.scan(50_000, 100, 1) + model.hash_join(5_000, 50_000, rows)
        c_w = model.spool_write(rows, width)
        c_r = model.spool_read(rows, width)
        assert c_r < c_e  # reading the narrow spool beats recomputing
        for consumers in (2, 3, 5):
            shared = c_e + c_w + consumers * c_r
            recompute = consumers * c_e
            assert shared < recompute

    def test_huge_results_kill_sharing(self, model):
        """Heuristic 2's situation: wide, cheap results are not worth
        spooling (Example 6's `select *`)."""
        rows, width = 200_000, 400
        c_e = model.scan(200_000, 400, 1)  # trivially cheap: one scan
        c_w = model.spool_write(rows, width)
        c_r = model.spool_read(rows, width)
        shared_per_consumer = c_r + (c_e + c_w) / 2
        assert shared_per_consumer > c_e


class TestDeterminism:
    def test_frozen_and_reproducible(self, model):
        assert model.scan(123, 45, 1) == CostModel().scan(123, 45, 1)
        with pytest.raises(Exception):
            model.io_page = 5.0  # frozen dataclass
