"""Tests for the public Session API."""

import pytest

from repro import (
    CostModel,
    ExecutionOutcome,
    OptimizerOptions,
    ReproError,
    Session,
)
from repro.logical.blocks import BoundBatch


class TestSessionBasics:
    def test_tpch_constructor(self):
        session = Session.tpch(scale_factor=0.0005)
        assert session.database.table("lineitem").row_count > 0

    def test_bind_names(self, small_session):
        batch = small_session.bind(
            "select r_name from region; select n_name from nation",
            names=["first", "second"],
        )
        assert [q.name for q in batch.queries] == ["first", "second"]

    def test_default_names(self, small_session):
        batch = small_session.bind("select r_name from region")
        assert batch.queries[0].name == "Q1"

    def test_execute_returns_outcome(self, small_session):
        outcome = small_session.execute("select r_name from region")
        assert isinstance(outcome, ExecutionOutcome)
        assert outcome.est_cost > 0
        assert outcome.measured_cost > 0
        rows = outcome.execution.results[0].rows
        assert len(rows) == 5

    def test_optimize_accepts_bound_batch(self, small_session):
        batch = small_session.bind("select r_name from region")
        result = small_session.optimize(batch)
        assert result.bundle.queries[0].name == "Q1"

    def test_optimize_accepts_bound_query(self, small_session):
        batch = small_session.bind("select r_name from region")
        result = small_session.optimize(batch.queries[0])
        assert result.est_cost > 0

    def test_optimize_rejects_nonsense(self, small_session):
        with pytest.raises(ReproError):
            small_session.optimize(42)  # type: ignore[arg-type]

    def test_execute_bundle_reuses_plans(self, small_session):
        result = small_session.optimize("select r_name from region")
        execution = small_session.execute_bundle(result)
        assert execution.results[0].row_count == 5

    def test_explain_mentions_costs_and_plan(self, small_session):
        text = small_session.explain(
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey"
        )
        assert "estimated cost" in text
        assert "HashAgg" in text
        assert "Scan customer" in text

    def test_explain_shows_spools(self, small_session):
        from repro.workloads import example1_batch

        text = small_session.explain(example1_batch())
        assert "Spool" in text
        assert "SpoolRead" in text

    def test_custom_cost_model(self, small_db):
        expensive_io = Session(
            small_db, cost_model=CostModel(io_page=100.0)
        ).optimize("select c_name from customer")
        cheap_io = Session(
            small_db, cost_model=CostModel(io_page=0.01)
        ).optimize("select c_name from customer")
        assert expensive_io.est_cost > cheap_io.est_cost

    def test_options_respected(self, small_db):
        from repro.workloads import example1_batch

        session = Session(small_db, OptimizerOptions(enable_cse=False))
        result = session.optimize(example1_batch())
        assert result.stats.candidates_generated == 0


class TestTpchKwargsForwarding:
    """Regression: Session.tpch used to swallow constructor kwargs
    (cost_model, registry, tracer, ...) instead of forwarding them."""

    def test_forwards_observability_and_config(self):
        from repro import MetricsRegistry, Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        model = CostModel(io_page=100.0)
        session = Session.tpch(
            scale_factor=0.0005,
            cost_model=model,
            registry=registry,
            tracer=tracer,
            workers=3,
            plan_cache_size=7,
        )
        assert session.cost_model is model
        assert session.registry is registry
        assert session.tracer is tracer
        assert session.workers == 3
        assert session.plan_cache is not None
        assert session.plan_cache.capacity == 7

    def test_forwarded_registry_records_activity(self):
        from repro import MetricsRegistry

        registry = MetricsRegistry()
        session = Session.tpch(scale_factor=0.0005, registry=registry)
        session.execute("select r_name from region")
        counters = registry.snapshot()["counters"]
        assert counters.get("optimizer.batches", 0) == 1
        assert "plan_cache.miss" in counters

    def test_plan_cache_can_be_disabled(self):
        session = Session.tpch(scale_factor=0.0005, plan_cache_size=0)
        assert session.plan_cache is None
        outcome = session.execute("select r_name from region")
        assert not outcome.plan_cache_hit


class TestParallelExecuteFlags:
    def test_parallel_true_on_serial_session(self, small_session):
        outcome = small_session.execute(
            "select r_name from region", parallel=True
        )
        assert outcome.execution.results[0].row_count == 5

    def test_parallel_false_overrides_session_workers(self, small_db):
        session = Session(small_db, OptimizerOptions(), workers=4)
        assert session._effective_workers(parallel=False, workers=None) == 1
        assert session._effective_workers(parallel=None, workers=None) == 4
        assert session._effective_workers(parallel=None, workers=2) == 2

    def test_explicit_workers_win_over_default(self, small_session):
        from repro.api import DEFAULT_PARALLEL_WORKERS

        assert (
            small_session._effective_workers(parallel=True, workers=None)
            == DEFAULT_PARALLEL_WORKERS
        )
        assert (
            small_session._effective_workers(parallel=True, workers=2) == 2
        )
