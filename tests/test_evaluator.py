"""Unit tests for vectorized expression evaluation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expr.evaluator import evaluate, evaluate_predicate, frame_length
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    Not,
    Or,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.types import DataType

T = TableRef("t", 1)
X = ColumnRef(T, "x", DataType.INT)
Y = ColumnRef(T, "y", DataType.FLOAT)


def frame():
    return {
        X: np.array([1, 2, 3, 4], dtype=np.int64),
        Y: np.array([0.5, 1.5, 2.5, 3.5]),
    }


class TestEvaluate:
    def test_column_lookup(self):
        assert evaluate(X, frame()).tolist() == [1, 2, 3, 4]

    def test_missing_column(self):
        with pytest.raises(ExecutionError):
            evaluate(ColumnRef(T, "zz", DataType.INT), frame())

    def test_literal_broadcast(self):
        values = evaluate(Literal(7), frame())
        assert values.tolist() == [7, 7, 7, 7]

    def test_comparisons(self):
        assert evaluate(gt(X, Literal(2)), frame()).tolist() == [False, False, True, True]
        assert evaluate(lt(X, Literal(2)), frame()).tolist() == [True, False, False, False]
        assert evaluate(eq(X, Literal(3)), frame()).tolist() == [False, False, True, False]
        ne = Comparison(ComparisonOp.NE, X, Literal(3))
        assert evaluate(ne, frame()).tolist() == [True, True, False, True]
        le = Comparison(ComparisonOp.LE, X, Literal(2))
        assert evaluate(le, frame()).tolist() == [True, True, False, False]
        ge = Comparison(ComparisonOp.GE, X, Literal(4))
        assert evaluate(ge, frame()).tolist() == [False, False, False, True]

    def test_boolean_connectives(self):
        pred = And((gt(X, Literal(1)), lt(X, Literal(4))))
        assert evaluate(pred, frame()).tolist() == [False, True, True, False]
        pred = Or((eq(X, Literal(1)), eq(X, Literal(4))))
        assert evaluate(pred, frame()).tolist() == [True, False, False, True]
        pred = Not(gt(X, Literal(2)))
        assert evaluate(pred, frame()).tolist() == [True, True, False, False]

    def test_arithmetic(self):
        add = Arithmetic(ArithmeticOp.ADD, X, Literal(10))
        assert evaluate(add, frame()).tolist() == [11, 12, 13, 14]
        mul = Arithmetic(ArithmeticOp.MUL, X, Y)
        assert evaluate(mul, frame()).tolist() == [0.5, 3.0, 7.5, 14.0]
        sub = Arithmetic(ArithmeticOp.SUB, X, Literal(1))
        assert evaluate(sub, frame()).tolist() == [0, 1, 2, 3]
        div = Arithmetic(ArithmeticOp.DIV, X, Literal(2))
        assert evaluate(div, frame()).tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(Arithmetic(ArithmeticOp.DIV, X, Literal(0)), frame())

    def test_computed_column_precedence(self):
        """Frame entries keyed by arbitrary expressions (e.g. spooled partial
        aggregates) take precedence over structural evaluation."""
        agg = AggExpr(AggFunc.SUM, X)
        f = frame()
        f[agg] = np.array([100, 200, 300, 400], dtype=np.int64)
        assert evaluate(agg, f).tolist() == [100, 200, 300, 400]
        combined = Arithmetic(ArithmeticOp.ADD, agg, Literal(1))
        assert evaluate(combined, f).tolist() == [101, 201, 301, 401]

    def test_aggregate_without_frame_entry_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(AggExpr(AggFunc.SUM, X), frame())


class TestEvaluatePredicate:
    def test_none_is_all_true(self):
        assert evaluate_predicate(None, frame()).all()

    def test_mask_type(self):
        mask = evaluate_predicate(gt(X, Literal(2)), frame())
        assert mask.dtype == np.bool_

    def test_frame_length(self):
        assert frame_length(frame()) == 4
        assert frame_length({}) == 0
