"""Golden-snapshot tests for ``repro trace --critical-path --summary``.

A deterministic trace is produced by executing a two-consumer-spool
batch (Example 1's Q1+Q2) serially with an injected counting clock, so
every span duration is an exact event count, not wall time. The only
volatile field — the header's wall-clock base timestamp — is normalized;
everything else (task keys, dependency edges, slack, span counts,
self-time attribution) must match the snapshot exactly.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py
"""

from __future__ import annotations

import io
import itertools
import os
import re
from pathlib import Path

import pytest

from repro import OptimizerOptions, Session, Tracer
from repro.cli import main
from repro.workloads import EXAMPLE1_QUERIES

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Q1 and Q2 share one customer⋈orders⋈lineitem spool → two consumers.
TWO_CONSUMER_BATCH = ";\n".join(q.strip() for q in EXAMPLE1_QUERIES[:2])


def _normalize(text: str) -> str:
    """Blank the wall-clock base timestamp; keep everything else."""
    return re.sub(
        r"base wall time \S+ ", "base wall time ? ", text
    )


def _check(name: str, rendered: str) -> None:
    got = _normalize(rendered).rstrip("\n")
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(got + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1"
    )
    want = path.read_text().rstrip("\n")
    assert got == want, (
        f"{name} drifted from its golden snapshot; if intentional, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.fixture(scope="module")
def trace_file(small_db, tmp_path_factory):
    """One deterministic trace of the two-consumer batch."""
    counter = itertools.count()
    tracer = Tracer(clock=lambda: float(next(counter)))
    session = Session(small_db, OptimizerOptions(), tracer=tracer)
    session.execute(TWO_CONSUMER_BATCH)
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    tracer.write(str(path))
    return str(path)


def _run_trace_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


def test_trace_critical_path_golden(trace_file):
    output = _run_trace_cli("trace", trace_file, "--critical-path")
    _check("trace_critical_path", output)


def test_trace_summary_golden(trace_file):
    output = _run_trace_cli("trace", trace_file, "--summary")
    _check("trace_summary", output)


def test_summary_is_the_default_view(trace_file):
    assert _run_trace_cli("trace", trace_file) == _run_trace_cli(
        "trace", trace_file, "--summary"
    )
