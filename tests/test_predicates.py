"""Unit tests for predicate utilities and equivalence classes.

Covers Example 2 from the paper (join compatibility via equivalence-class
intersection is tested in test_compatibility; here we verify the class
algebra itself).
"""

import pytest

from repro.expr.expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    Or,
    TableRef,
    eq,
    ge,
    gt,
    le,
    lt,
)
from repro.expr.predicates import (
    EquivalenceClasses,
    always_true,
    column_equalities,
    conjoin,
    conjuncts_imply,
    disjoin,
    implied_by_equalities,
    non_equality_conjuncts,
    range_implies,
    simplify_conjuncts,
    split_conjuncts,
)
from repro.types import DataType

R = TableRef("R", 1)
S = TableRef("S", 2)


def rcol(name):
    return ColumnRef(R, name, DataType.INT)


def scol(name):
    return ColumnRef(S, name, DataType.INT)


class TestConjuncts:
    def test_split_flat(self):
        a = eq(rcol("a"), scol("d"))
        b = gt(rcol("b"), Literal(5))
        assert split_conjuncts(And((a, b))) == [a, b]

    def test_split_nested(self):
        a, b, c = eq(rcol("a"), scol("d")), gt(rcol("b"), Literal(5)), lt(rcol("c"), Literal(9))
        assert split_conjuncts(And((a, And((b, c))))) == [a, b, c]

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_split_single(self):
        a = eq(rcol("a"), scol("d"))
        assert split_conjuncts(a) == [a]

    def test_conjoin_roundtrip(self):
        a, b = eq(rcol("a"), scol("d")), gt(rcol("b"), Literal(5))
        assert split_conjuncts(conjoin([a, b])) == [a, b]
        assert conjoin([]) is None
        assert conjoin([a]) is a

    def test_disjoin(self):
        a, b = gt(rcol("a"), Literal(1)), gt(rcol("a"), Literal(2))
        assert disjoin([a, b]) == Or((a, b))
        assert disjoin([a, a]) is a
        assert disjoin([a, None]) is None

    def test_partition_equalities(self):
        equality = eq(rcol("a"), scol("d"))
        filter_ = gt(rcol("b"), Literal(5))
        assert column_equalities([equality, filter_]) == [equality]
        assert non_equality_conjuncts([equality, filter_]) == [filter_]

    def test_always_true(self):
        assert always_true(None)
        assert not always_true(gt(rcol("a"), Literal(1)))


class TestEquivalenceClasses:
    def test_transitivity(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        classes.add_equality(scol("d"), scol("e"))
        assert classes.same_class(rcol("a"), scol("e"))
        assert len(classes.classes()) == 1
        assert classes.class_of(rcol("a")) == frozenset(
            [rcol("a"), scol("d"), scol("e")]
        )

    def test_from_conjuncts_ignores_filters(self):
        conjuncts = [eq(rcol("a"), scol("d")), gt(rcol("b"), Literal(5))]
        classes = EquivalenceClasses.from_conjuncts(conjuncts)
        assert len(classes.classes()) == 1

    def test_intersection_example2(self):
        """Paper Example 2: {{R.a,S.d},{R.b,S.e}} ∩ {{R.a,S.d},{R.c,S.f}}
        = {{R.a,S.d}}."""
        first = EquivalenceClasses.from_conjuncts(
            [eq(rcol("a"), scol("d")), eq(rcol("b"), scol("e"))]
        )
        second = EquivalenceClasses.from_conjuncts(
            [eq(rcol("a"), scol("d")), eq(rcol("c"), scol("f"))]
        )
        intersection = first.intersect(second)
        assert intersection.classes() == [frozenset([rcol("a"), scol("d")])]

    def test_intersection_splits_merged_class(self):
        # {a,b,c} ∩ ({a,b}, {c,d}) = {a,b}
        first = EquivalenceClasses()
        first.add_equality(rcol("a"), rcol("b"))
        first.add_equality(rcol("b"), rcol("c"))
        second = EquivalenceClasses()
        second.add_equality(rcol("a"), rcol("b"))
        second.add_equality(rcol("c"), rcol("d"))
        inter = second.intersect(first)
        assert inter.classes() == [frozenset([rcol("a"), rcol("b")])]

    def test_empty_intersection(self):
        first = EquivalenceClasses.from_conjuncts([eq(rcol("a"), scol("d"))])
        second = EquivalenceClasses.from_conjuncts([eq(rcol("b"), scol("e"))])
        assert len(first.intersect(second)) == 0

    def test_equality_conjuncts_regenerate(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        classes.add_equality(scol("d"), scol("e"))
        regenerated = EquivalenceClasses.from_conjuncts(
            classes.equality_conjuncts()
        )
        assert regenerated.same_class(rcol("a"), scol("e"))

    def test_mapped(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        mapped = classes.mapped(lambda c: (c.table_ref.table, c.column))
        assert mapped.same_class(("R", "a"), ("S", "d"))

    def test_representative_deterministic(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        assert classes.representative(scol("d")) == classes.representative(rcol("a"))


class TestImplication:
    def test_implied_equality(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        classes.add_equality(scol("d"), scol("e"))
        assert implied_by_equalities(eq(rcol("a"), scol("e")), classes)
        assert not implied_by_equalities(eq(rcol("a"), scol("f")), classes)
        assert not implied_by_equalities(gt(rcol("a"), Literal(1)), classes)

    def test_simplify(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        kept = simplify_conjuncts(
            [eq(rcol("a"), scol("d")), gt(rcol("b"), Literal(5))], classes
        )
        assert kept == [gt(rcol("b"), Literal(5))]

    @pytest.mark.parametrize(
        "specific, general, expected",
        [
            (lt(rcol("a"), Literal(5)), lt(rcol("a"), Literal(10)), True),
            (lt(rcol("a"), Literal(10)), lt(rcol("a"), Literal(5)), False),
            (lt(rcol("a"), Literal(5)), le(rcol("a"), Literal(5)), True),
            (le(rcol("a"), Literal(5)), lt(rcol("a"), Literal(5)), False),
            (gt(rcol("a"), Literal(5)), gt(rcol("a"), Literal(1)), True),
            (ge(rcol("a"), Literal(5)), gt(rcol("a"), Literal(5)), False),
            (gt(rcol("a"), Literal(5)), ge(rcol("a"), Literal(5)), True),
            (eq(rcol("a"), Literal(5)), lt(rcol("a"), Literal(10)), True),
            (eq(rcol("a"), Literal(5)), gt(rcol("a"), Literal(10)), False),
            (eq(rcol("a"), Literal(5)), eq(rcol("a"), Literal(5)), True),
            # different columns never imply
            (lt(rcol("a"), Literal(5)), lt(rcol("b"), Literal(10)), False),
            # mixed direction never implies
            (lt(rcol("a"), Literal(5)), gt(rcol("a"), Literal(1)), False),
        ],
    )
    def test_range_implies(self, specific, general, expected):
        assert range_implies(specific, general) is expected

    def test_conjuncts_imply(self):
        have = [lt(rcol("a"), Literal(5)), gt(rcol("b"), Literal(10))]
        assert conjuncts_imply(have, [lt(rcol("a"), Literal(7))])
        assert conjuncts_imply(have, [gt(rcol("b"), Literal(10))])
        assert not conjuncts_imply(have, [gt(rcol("b"), Literal(11))])

    def test_conjuncts_imply_with_classes(self):
        classes = EquivalenceClasses()
        classes.add_equality(rcol("a"), scol("d"))
        assert conjuncts_imply([], [eq(rcol("a"), scol("d"))], classes)
