"""Tests for cost-annotated EXPLAIN and MCV statistics."""

import pytest

from repro import OptimizerOptions, Session
from repro.optimizer.explain import PlanAnnotator, explain_with_costs
from repro.workloads import example1_batch


class TestAnnotatedExplain:
    def test_totals_accumulate(self, small_session):
        result = small_session.optimize("select r_name from region")
        annotator = PlanAnnotator(small_session.database)
        node = annotator.annotate(result.bundle.queries[0].plan)
        assert node.total_cost >= node.local_cost
        assert node.total_cost == pytest.approx(
            node.local_cost + sum(c.total_cost for c in node.children)
        )

    def test_bundle_header_and_spools(self, small_session):
        result = small_session.optimize(example1_batch())
        text = explain_with_costs(small_session.database, result.bundle)
        assert "estimated bundle cost" in text
        assert "[local" in text and "total" in text
        assert "Spool E" in text

    def test_session_explain_costs_flag(self, small_session):
        text = small_session.explain(example1_batch(), costs=True)
        assert "[local" in text
        plain = small_session.explain(example1_batch())
        assert "[local" not in plain

    def test_query_total_close_to_winner(self, small_session):
        """The annotated total of a single-query plan approximates the
        optimizer's estimate (same formulas, same cardinalities)."""
        sql = (
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey"
        )
        result = small_session.optimize(sql)
        node = PlanAnnotator(small_session.database).annotate(
            result.bundle.queries[0].plan
        )
        assert node.total_cost == pytest.approx(result.est_cost, rel=0.05)

    def test_cli_costs_flag(self):
        from tests.test_cli import run_cli

        code, output = run_cli(
            "--sf", "0.001", "explain", "--costs",
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey",
        )
        assert code == 0 and "[local" in output


class TestMcvStatistics:
    def test_mcv_collected_for_low_ndv(self, small_db):
        stats = small_db.statistics("customer").column("c_mktsegment")
        assert stats.mcv
        assert sum(stats.mcv.values()) == pytest.approx(1.0, abs=0.01)

    def test_no_mcv_for_high_ndv(self, small_db):
        stats = small_db.statistics("customer").column("c_custkey")
        assert not stats.mcv

    def test_equality_uses_true_frequency(self, small_db):
        from repro.expr.expressions import ColumnRef, Literal, TableRef, eq
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.types import DataType

        estimator = CardinalityEstimator(small_db)
        seg = ColumnRef(
            TableRef("customer", 1), "c_mktsegment", DataType.STRING
        )
        sel = estimator.selectivity(eq(seg, Literal("BUILDING")))
        table = small_db.table("customer")
        actual = (
            (table.column("c_mktsegment") == "BUILDING").sum()
            / table.row_count
        )
        assert sel == pytest.approx(actual, abs=0.001)

    def test_absent_value_estimated_tiny(self, small_db):
        from repro.expr.expressions import ColumnRef, Literal, TableRef, eq
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.types import DataType

        estimator = CardinalityEstimator(small_db)
        seg = ColumnRef(
            TableRef("customer", 1), "c_mktsegment", DataType.STRING
        )
        sel = estimator.selectivity(eq(seg, Literal("NO-SUCH-SEGMENT")))
        assert sel < 0.01
