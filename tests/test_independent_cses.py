"""Independent vs. competing candidates exercised end-to-end (Defs 5.2/5.3,
Props 5.4-5.6).

Cross-query candidates always settle at the batch root (their LCAs
coincide), so the *independent* relation only shows up when candidates
settle inside different queries. This workload gives each of two queries its
own internal self-overlap, producing two candidates with LCAs in different
query subtrees — genuinely independent per Definition 5.2.
"""

import pytest

from repro import OptimizerOptions, Session
from repro.cse.enumeration import SubsetEnumerator, competing
from repro.executor.reference import evaluate_batch
from repro.optimizer.engine import Optimizer
from repro.sql.binder import bind_batch

#: Query 1: the customer⋈orders join appears twice internally.
#: Query 2: the nation⋈customer join appears twice internally.
SQL = (
    "select o1.o_orderstatus, sum(c1.c_acctbal) as v "
    "from customer c1, orders o1, customer c2, orders o2 "
    "where c1.c_custkey = o1.o_custkey and c2.c_custkey = o2.o_custkey "
    "  and o1.o_orderkey = o2.o_orderkey "
    "group by o1.o_orderstatus;"
    "select n3.n_regionkey, sum(c3.c_acctbal) as v "
    "from nation n3, customer c3, nation n4, customer c4 "
    "where n3.n_nationkey = c3.c_nationkey and n4.n_nationkey = c4.c_nationkey "
    "  and c3.c_custkey = c4.c_custkey "
    "group by n3.n_regionkey"
)


@pytest.fixture()
def optimized(small_db):
    optimizer = Optimizer(
        small_db,
        OptimizerOptions(enable_heuristics=False, max_cse_optimizations=32),
    )
    batch = bind_batch(small_db.catalog, SQL)
    result = optimizer.optimize(batch)
    return optimizer, result


class TestIndependence:
    def test_candidates_from_both_queries(self, optimized):
        optimizer, result = optimized
        blocks = set()
        for candidate in result.candidates:
            for group in candidate.definition.consumer_groups:
                blocks.add(group.block.name)
        assert {"Q1", "Q2"} <= blocks

    def test_cross_query_independence_detected(self, optimized):
        optimizer, result = optimized
        memo = optimizer._memo
        q1_candidates = [
            c for c in result.candidates
            if not c.lifted_to_root
            and c.definition.consumer_groups[0].block.name == "Q1"
        ]
        q2_candidates = [
            c for c in result.candidates
            if not c.lifted_to_root
            and c.definition.consumer_groups[0].block.name == "Q2"
        ]
        if not (q1_candidates and q2_candidates):
            pytest.skip("stacking lifted every candidate on this workload")
        assert not competing(q1_candidates[0], q2_candidates[0], memo)

    def test_same_query_candidates_compete(self, optimized):
        optimizer, result = optimized
        memo = optimizer._memo
        q1 = [
            c for c in result.candidates
            if not c.lifted_to_root
            and c.definition.consumer_groups[0].block.name == "Q1"
        ]
        if len(q1) < 2:
            pytest.skip("only one settled candidate in Q1")
        assert competing(q1[0], q1[1], memo)

    def test_prop54_cuts_passes_for_independent_pair(self, optimized):
        """With two independent candidates, the enumerator stops after the
        first pass when both decisions resolve (Prop 5.4)."""
        optimizer, result = optimized
        memo = optimizer._memo
        independent = []
        for candidate in result.candidates:
            if candidate.lifted_to_root:
                continue
            if all(
                candidate is other
                or not competing(candidate, other, memo)
                for other in independent
            ):
                independent.append(candidate)
        if len(independent) < 2:
            pytest.skip("no independent pair on this workload")
        enum = SubsetEnumerator(independent[:2], memo)
        full = enum.next_subset()
        enum.report(full, full)
        assert enum.next_subset() is None

    def test_rows_correct(self, small_db):
        session = Session(small_db)
        batch = session.bind(SQL)
        outcome = session.execute(batch)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = sorted(
                [
                    tuple(
                        round(v, 3) if isinstance(v, float) else v
                        for v in row
                    )
                    for row in outcome.execution.query(query.name).rows
                ],
                key=repr,
            )
            want = sorted(
                [
                    tuple(
                        round(v, 3) if isinstance(v, float) else v
                        for v in row
                    )
                    for row in oracle[query.name]
                ],
                key=repr,
            )
            assert got == want
