"""Unit tests for CSE construction (paper §4.2, steps 1-6, Example 4)."""

import itertools

import pytest

from repro.cse.construct import (
    construct_cse,
    estimate_cse_rows,
    weakened_covering,
)
from repro.cse.manager import CseManager
from repro.cse.compatibility import compatibility_groups
from repro.cse.signature import TableSignature
from repro.errors import OptimizerError
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.memo import Memo
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch
from repro.types import DataType


def build_memo(db, sql):
    memo = Memo(CardinalityEstimator(db), OptimizerOptions())
    batch = bind_batch(db.catalog, sql)
    tops = [memo.build_block(q.block, q.name) for q in batch.queries]
    memo.build_root(tops)
    return memo, tops


def allocator():
    counter = itertools.count(1000)
    return lambda: next(counter)


EXAMPLE1_LIKE = (
    "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20 "
    "group by c_nationkey, c_mktsegment;"
    "select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25 "
    "group by c_nationkey"
)


class TestWeakenedCovering:
    T = TableRef("t", 1)

    def _col(self, name, dtype=DataType.INT):
        return ColumnRef(self.T, name, dtype)

    def test_common_conjuncts_factored(self):
        date = lt(self._col("d"), Literal(100))
        r1 = gt(self._col("n"), Literal(0))
        r2 = gt(self._col("n"), Literal(5))
        covering, residuals = weakened_covering([[date, r1], [date, r2]])
        assert date in covering
        assert residuals == [[r1], [r2]]

    def test_range_hull(self):
        """The paper's E5: nationkey ranges (0,20) and (5,25) hull to (0,25)."""
        n = self._col("n")
        first = [gt(n, Literal(0)), lt(n, Literal(20))]
        second = [gt(n, Literal(5)), lt(n, Literal(25))]
        covering, residuals = weakened_covering([first, second])
        assert Comparison(ComparisonOp.GT, n, Literal(0)) in covering
        assert Comparison(ComparisonOp.LT, n, Literal(25)) in covering
        assert residuals == [first, second]

    def test_empty_consumer_collapses_covering(self):
        r1 = gt(self._col("n"), Literal(0))
        covering, residuals = weakened_covering([[r1], []])
        assert covering == []
        assert residuals == [[r1], []]

    def test_one_sided_ranges(self):
        n = self._col("n")
        covering, _ = weakened_covering(
            [[gt(n, Literal(3))], [gt(n, Literal(7))]]
        )
        assert covering == [Comparison(ComparisonOp.GT, n, Literal(3))]

    def test_equality_contributes_point_range(self):
        n = self._col("n")
        covering, _ = weakened_covering(
            [[eq(n, Literal(4))], [eq(n, Literal(9))]]
        )
        assert Comparison(ComparisonOp.GE, n, Literal(4)) in covering
        assert Comparison(ComparisonOp.LE, n, Literal(9)) in covering

    def test_inclusive_bound_preferred_on_tie(self):
        n = self._col("n")
        covering, _ = weakened_covering(
            [[gt(n, Literal(5))], [Comparison(ComparisonOp.GE, n, Literal(5))]]
        )
        assert Comparison(ComparisonOp.GE, n, Literal(5)) in covering

    def test_non_range_conjuncts_dropped_from_covering(self):
        s = self._col("s", DataType.STRING)
        c1 = [eq(s, Literal("A"))]
        c2 = [eq(s, Literal("B"))]
        covering, residuals = weakened_covering([c1, c2])
        assert covering == []  # weakening: superset is sound
        assert residuals == [c1, c2]


class TestConstruction:
    @pytest.fixture()
    def consumers(self, tiny_db):
        memo, tops = build_memo(tiny_db, EXAMPLE1_LIKE)
        return memo, list(tops)

    def test_aggregated_cse(self, consumers, tiny_db):
        memo, tops = consumers
        definition = construct_cse(
            "E1", tops, memo.block_infos, allocator(),
            CardinalityEstimator(tiny_db),
        )
        block = definition.block
        # Step 1: the common equijoins survive.
        assert len(definition.joint_equalities) == 2
        # Step 3: weakened covering = common date conjunct + nationkey hull.
        texts = [repr(c) for c in definition.covering_conjuncts]
        assert any("o_orderdate" in t for t in texts)
        assert any("c_nationkey > 0" in t for t in texts)
        assert any("c_nationkey < 25" in t for t in texts)
        # Step 4: keys = union of consumer keys (+ residual columns).
        key_names = {k.column for k in block.group_keys}
        assert key_names == {"c_nationkey", "c_mktsegment"}
        # Aggregates unioned and de-duplicated.
        agg_args = {repr(a) for a in block.aggregates}
        assert len(block.aggregates) == 2  # sum(extendedprice), sum(quantity)
        # Step 5: outputs cover keys and aggregates.
        assert len(definition.outputs) == len(block.group_keys) + len(
            block.aggregates
        )
        # Fresh instances, one per slot.
        assert len({t.instance for t in block.tables}) == 3
        assert definition.signature == TableSignature(
            True, ("customer", "lineitem", "orders")
        )
        assert definition.est_rows > 0
        assert definition.row_width > 0

    def test_spj_cse(self, consumers, tiny_db):
        memo, tops = consumers
        joins = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 3 and g.signature is not None
        ]
        definition = construct_cse(
            "E2", joins, memo.block_infos, allocator(),
            CardinalityEstimator(tiny_db),
        )
        assert not definition.has_groupby
        assert definition.signature.has_groupby is False
        # Outputs are plain columns covering both consumers' requirements.
        names = {o.expr.column for o in definition.outputs}
        assert {"c_nationkey", "l_extendedprice"} <= names

    def test_trivial_cse_single_consumer(self, consumers, tiny_db):
        memo, tops = consumers
        definition = construct_cse(
            "T", [tops[0]], memo.block_infos, allocator(),
            CardinalityEstimator(tiny_db),
        )
        # A trivial CSE is "exactly the same as its only consumer" (§4.3):
        # all of the consumer's conjuncts become covering conjuncts.
        assert len(definition.consumer_groups) == 1
        assert definition.covering_conjuncts  # date + both nationkey bounds

    def test_mismatched_signatures_rejected(self, consumers, tiny_db):
        memo, tops = consumers
        join = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 2 and g.signature is not None
        ][0]
        with pytest.raises(OptimizerError):
            construct_cse(
                "X", [tops[0], join], memo.block_infos, allocator()
            )

    def test_empty_consumers_rejected(self, consumers):
        memo, _ = consumers
        with pytest.raises(OptimizerError):
            construct_cse("X", [], memo.block_infos, allocator())

    def test_estimate_rows_aggregated_smaller(self, consumers, tiny_db):
        memo, tops = consumers
        estimator = CardinalityEstimator(tiny_db)
        agg_def = construct_cse("A", tops, memo.block_infos, allocator(), estimator)
        joins = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 3 and g.signature is not None
        ]
        join_def = construct_cse("J", joins, memo.block_infos, allocator(), estimator)
        assert agg_def.est_rows < join_def.est_rows
