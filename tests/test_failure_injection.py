"""Failure injection: the engine must fail loudly and precisely, never
silently return wrong results."""

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.catalog.schema import ColumnSchema, TableSchema
from repro.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    LexerError,
    OptimizerError,
    ParseError,
    StorageError,
    UnsupportedFeatureError,
)
from repro.executor.executor import Executor
from repro.executor.iterators import materialize_spool
from repro.executor.runtime import ExecutionContext
from repro.expr.expressions import ColumnRef, TableRef
from repro.optimizer.physical import PhysScan, PhysSpoolRead
from repro.storage.database import Database
from repro.types import DataType


class TestFrontendFailures:
    @pytest.mark.parametrize(
        "sql, error",
        [
            ("select ~x from t", LexerError),
            ("select from t", ParseError),
            ("select a frm t", ParseError),
            ("select ghost from region", BindError),
            ("select r_name from ghost_table", BindError),
            ("select r_name from region where r_name > 3", BindError),
            ("select sum(r_regionkey) as s from region group by r_comment "
             "order by missing", BindError),
            ("select r_regionkey from region order by r_name",
             UnsupportedFeatureError),
        ],
    )
    def test_bad_sql(self, tiny_session, sql, error):
        with pytest.raises(error):
            tiny_session.bind(sql)

    def test_error_types_are_repro_errors(self):
        from repro.errors import ReproError

        for error in (
            LexerError("x", 0), ParseError("x"), BindError("x"),
            OptimizerError("x"), ExecutionError("x"), CatalogError("x"),
            StorageError("x"), UnsupportedFeatureError("x"),
        ):
            assert isinstance(error, ReproError)


class TestExecutorFailures:
    def test_dangling_spool_read(self, tiny_db):
        from repro.executor.iterators import execute_node

        read = PhysSpoolRead("nope", ())
        with pytest.raises(ExecutionError, match="nope"):
            execute_node(read, ExecutionContext(database=tiny_db))

    def test_spool_body_without_projection(self, tiny_db):
        scan = PhysScan(TableRef("region", 1), (), ())
        with pytest.raises(ExecutionError, match="projection"):
            materialize_spool("X", scan, ExecutionContext(database=tiny_db))

    def test_scan_of_dropped_table(self):
        db = Database()
        db.create_table(
            TableSchema("t", [ColumnSchema("a", DataType.INT)]),
            {"a": np.array([1, 2, 3])},
        )
        session = Session(db)
        result = session.optimize("select a from t")
        db.drop_table("t")
        with pytest.raises(CatalogError):
            session.execute_bundle(result)


class TestDataIntegrityFailures:
    def test_ragged_insert_rejected(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [ColumnSchema("a", DataType.INT), ColumnSchema("b", DataType.INT)],
            )
        )
        with pytest.raises(StorageError):
            db.insert("t", [(1,)])

    def test_type_mismatch_insert_rejected(self):
        db = Database()
        db.create_table(TableSchema("t", [ColumnSchema("a", DataType.INT)]))
        with pytest.raises(StorageError):
            db.insert("t", [("not an int",)])

    def test_maintenance_on_unrefreshed_view(self, tiny_db):
        from repro.views.maintenance import MaintenancePlanner
        from repro.views.materialized import ViewManager

        manager = ViewManager(tiny_db)
        manager.create_view(
            "v",
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey",
        )
        planner = MaintenancePlanner(tiny_db, manager)
        with pytest.raises(CatalogError, match="refreshed"):
            planner.apply_insert(
                "customer", [(99_999_999, "X", 1, "BUILDING", 1.0)]
            )


class TestOptimizerGuards:
    def test_bad_cost_mode(self):
        with pytest.raises(ValueError):
            OptimizerOptions(cost_mode="wrong")

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            OptimizerOptions(alpha=2.0)

    def test_empty_batch(self, tiny_session):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            tiny_session.bind(";;")

    def test_results_survive_weird_but_legal_predicates(self, tiny_session):
        # Contradictory range: empty result, not a crash.
        outcome = tiny_session.execute(
            "select c_custkey from customer "
            "where c_nationkey > 10 and c_nationkey < 5"
        )
        assert outcome.execution.results[0].rows == []

    def test_always_true_or(self, tiny_session):
        outcome = tiny_session.execute(
            "select count(*) as n from customer "
            "where c_nationkey >= 0 or c_nationkey < 0"
        )
        total = tiny_session.database.table("customer").row_count
        assert outcome.execution.results[0].rows == [(total,)]
