"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    MODE_CSE,
    MODE_NO_CSE,
    MODE_NO_HEURISTICS,
    ScenarioResult,
    format_table,
    options_for,
    run_mode,
    run_scenario,
    speedup,
)
from repro.workloads import example1_batch


class TestOptions:
    def test_modes(self):
        assert options_for(MODE_NO_CSE).enable_cse is False
        assert options_for(MODE_CSE).enable_cse is True
        assert options_for(MODE_NO_HEURISTICS).enable_heuristics is False

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            options_for("bogus")


class TestRunners:
    def test_run_mode(self, tiny_db):
        result = run_mode(tiny_db, example1_batch(), MODE_CSE)
        assert result.candidates >= 1
        assert result.est_cost > 0
        assert result.exec_cost > 0
        import re

        assert re.fullmatch(r"\d+ \[\d+\]", result.cses_cell)

    def test_no_cse_cell(self, tiny_db):
        result = run_mode(tiny_db, example1_batch(), MODE_NO_CSE)
        assert result.cses_cell == "N/A"

    def test_run_scenario_and_speedup(self, tiny_db):
        results = run_scenario(
            tiny_db, example1_batch(), modes=(MODE_NO_CSE, MODE_CSE)
        )
        assert [r.mode for r in results] == [MODE_NO_CSE, MODE_CSE]
        assert speedup(results) > 1.0

    def test_format_table(self, tiny_db):
        results = run_scenario(
            tiny_db, example1_batch(), modes=(MODE_NO_CSE, MODE_CSE)
        )
        text = format_table("Table X", results, {"note": "ref"})
        assert "Table X" in text
        assert "# of CSEs [CSE Opts]" in text
        assert "N/A" in text
        assert "paper reference: note: ref" in text
        # Columns align: every row has the same number of separators.
        lines = [l for l in text.splitlines() if "|" in l]
        assert len({l.count("|") for l in lines}) == 1


class TestPhaseTimers:
    def test_phases_sum_to_total(self, tiny_db):
        """bench.optimize + bench.execute account for bench.total up to a
        small tolerance (timer entry/exit and snapshot overhead)."""
        result = run_mode(tiny_db, example1_batch(), MODE_CSE)
        phases = result.phase_seconds
        assert set(phases) == {
            "bench.total", "bench.optimize", "bench.execute",
        }
        total = phases["bench.total"]
        parts = phases["bench.optimize"] + phases["bench.execute"]
        assert parts <= total
        # Tolerance: 10% of total plus 5ms of fixed overhead.
        assert total - parts <= 0.10 * total + 0.005, phases

    def test_reported_times_come_from_registry(self, tiny_db):
        result = run_mode(tiny_db, example1_batch(), MODE_CSE)
        assert result.optimization_time == result.phase_seconds["bench.optimize"]
        assert result.exec_time == result.phase_seconds["bench.execute"]
        timers = result.snapshot["timers"]
        assert timers["bench.total"]["count"] == 1

    def test_snapshot_counters_and_q_error(self, tiny_db):
        result = run_mode(tiny_db, example1_batch(), MODE_CSE)
        assert result.counter("optimizer.candidates_generated") >= 1
        assert result.counter("executor.spools_materialized") >= 1
        assert result.exec_cost == result.counter("executor.cost_units")
        assert result.q_error_max >= result.q_error_mean >= 1.0


class TestCompareTrend:
    """The CI trend gate (benchmarks/compare_trend.py) as a module."""

    @pytest.fixture(scope="class")
    def trend(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).parent.parent / "benchmarks" / "compare_trend.py"
        )
        spec = importlib.util.spec_from_file_location("compare_trend", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _artifact(self, wall, ms):
        return {
            "benchmark": "bench_x",
            "tests": {
                "test_a": {
                    "wall_seconds": wall,
                    "extra_info": {"traced_ms": ms, "overhead": 0.01},
                }
            },
        }

    def _write(self, directory, payload):
        import json

        directory.mkdir(exist_ok=True)
        (directory / "BENCH_x.json").write_text(json.dumps(payload))

    def test_regression_beyond_threshold_fails(self, trend, tmp_path):
        self._write(tmp_path / "cur", self._artifact(1.0, 1000.0))
        self._write(tmp_path / "base", self._artifact(0.5, 500.0))
        assert trend.main(
            ["--current", str(tmp_path / "cur"),
             "--baseline", str(tmp_path / "base")]
        ) == 1

    def test_growth_within_threshold_passes(self, trend, tmp_path):
        self._write(tmp_path / "cur", self._artifact(0.55, 550.0))
        self._write(tmp_path / "base", self._artifact(0.5, 500.0))
        assert trend.main(
            ["--current", str(tmp_path / "cur"),
             "--baseline", str(tmp_path / "base")]
        ) == 0

    def test_noise_floor_forgives_tiny_absolute_growth(self, trend, tmp_path):
        # +100% but only +2ms: under the 5ms floor, not a regression.
        self._write(tmp_path / "cur", self._artifact(0.004, 4.0))
        self._write(tmp_path / "base", self._artifact(0.002, 2.0))
        assert trend.main(
            ["--current", str(tmp_path / "cur"),
             "--baseline", str(tmp_path / "base")]
        ) == 0

    def test_missing_baseline_passes(self, trend, tmp_path):
        self._write(tmp_path / "cur", self._artifact(1.0, 1000.0))
        assert trend.main(
            ["--current", str(tmp_path / "cur"),
             "--baseline", str(tmp_path / "missing")]
        ) == 0

    def test_non_overlapping_tests_pass(self, trend, tmp_path):
        self._write(tmp_path / "cur", self._artifact(1.0, 1000.0))
        base = {"benchmark": "bench_x", "tests": {"test_other": {}}}
        self._write(tmp_path / "base", base)
        assert trend.main(
            ["--current", str(tmp_path / "cur"),
             "--baseline", str(tmp_path / "base")]
        ) == 0
