"""Unit tests for the observability subsystem (metrics + tracing) and
its wiring into the optimizer, executor, and Session facade."""

import json
import threading

import pytest

from repro import MetricsRegistry, Session, Tracer
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    TRACE_HEADER_TYPE,
    active_registry,
    use_registry,
)
from repro.workloads import example1_batch


class TestMetricsRegistry:
    def test_counters_gauges_timers(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("a", 2)
        registry.gauge("g", 7)
        registry.gauge("g", 9)
        with registry.timer("t"):
            pass
        registry.timer_add("t", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 3
        assert snapshot["gauges"]["g"] == 9
        assert snapshot["timers"]["t"]["count"] == 2
        assert registry.get("a") == 3
        assert registry.get("missing", -1) == -1
        assert registry.timer_total("t") >= 0.5

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a")
        registry.gauge("g", 1)
        registry.observe("h", 1.0)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }

    def test_reset_and_merge(self):
        registry = MetricsRegistry()
        registry.counter("a", 5)
        registry.reset()
        assert registry.get("a") == 0
        other = MetricsRegistry()
        other.counter("a", 2)
        other.timer_add("t", 1.0)
        registry.merge(other)
        registry.merge(other)
        assert registry.get("a") == 4
        assert registry.snapshot()["timers"]["t"]["count"] == 2

    def test_thread_safety(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.counter("hits")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.get("hits") == 4000

    def test_ambient_registry(self):
        registry = MetricsRegistry()
        assert active_registry() is NULL_REGISTRY
        with use_registry(registry):
            assert active_registry() is registry
            with use_registry(None):
                assert active_registry() is NULL_REGISTRY
            assert active_registry() is registry
        assert active_registry() is NULL_REGISTRY


class TestTracer:
    def test_span_nesting_and_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner"):
                tracer.event("point", detail=1)
            outer.attrs["late"] = True
        lines = [json.loads(l) for l in tracer.to_jsonl().splitlines()]
        by_name = {l["name"]: l for l in lines}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["point"]["parent_id"] == by_name["inner"]["span_id"]
        assert by_name["outer"]["attrs"] == {"kind": "test", "late": True}
        assert "duration" in by_name["outer"]
        assert "duration" not in by_name["point"]
        path = tmp_path / "trace.jsonl"
        assert tracer.write(str(path)) == 3
        written = path.read_text().splitlines()
        # header record + the three events
        assert len(written) == 4
        header = json.loads(written[0])
        assert header["type"] == TRACE_HEADER_TYPE
        assert header["version"] == 1
        assert "wall_time_unix" in header and "perf_counter_epoch" in header

    def test_disabled_tracer(self):
        with NULL_TRACER.span("x") as span:
            assert span is None
        NULL_TRACER.event("y")
        assert NULL_TRACER.events == []


class TestSessionWiring:
    def test_optimizer_spans_cover_figure1(self, tiny_db):
        tracer = Tracer()
        session = Session(tiny_db, tracer=tracer)
        session.optimize(example1_batch())
        names = [e.name for e in tracer.events]
        for step in (
            "optimize",
            "normal_optimization",
            "candidate_generation",
            "cse_optimization",
            "cse_pass",
        ):
            assert step in names, names
        optimize = next(e for e in tracer.events if e.name == "optimize")
        assert optimize.parent_id is None
        children = {
            e.name for e in tracer.events if e.parent_id == optimize.span_id
        }
        assert {
            "normal_optimization", "candidate_generation", "cse_optimization",
        } <= children

    def test_registry_counters_from_both_layers(self, tiny_db):
        registry = MetricsRegistry()
        session = Session(tiny_db, registry=registry)
        session.execute(example1_batch())
        counters = registry.snapshot()["counters"]
        assert counters["optimizer.candidates_generated"] >= 1
        assert counters["cse.merge_benefit_evaluations"] >= 1
        assert counters["executor.spools_materialized"] >= 1
        assert counters["executor.spool_reads"] >= 2
        assert registry.timer_total("optimizer.total") > 0

    def test_null_session_publishes_nothing(self, tiny_db):
        session = Session(tiny_db)
        session.execute(example1_batch())
        assert session.registry is NULL_REGISTRY
        assert NULL_REGISTRY.snapshot()["counters"] == {}

    def test_op_stats_only_on_request(self, tiny_db):
        session = Session(tiny_db)
        plain = session.execute(example1_batch())
        assert plain.execution.op_stats is None
        analyzed = session.execute(example1_batch(), collect_op_stats=True)
        assert analyzed.execution.op_stats
        plan = next(iter(analyzed.execution.executed_plans.values()))
        stats = analyzed.execution.stats_for(plan)
        assert stats is not None and stats.rows_out > 0
