"""Unit tests for join compatibility (paper §4.1, Definition 4.1).

Uses hand-built memos over TPC-H blocks plus the paper's Examples 2 and 3.
"""

import pytest

from repro.cse.compatibility import (
    compatibility_groups,
    consumer_slot_classes,
    derive_compatibility_from_parts,
    join_compatible,
    join_compatible_classes,
    slot_assignment,
    slot_classes,
)
from repro.expr.expressions import ColumnRef, TableRef, eq
from repro.expr.predicates import EquivalenceClasses
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.memo import Memo
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch
from repro.types import DataType

R1 = TableRef("R", 1)
S1 = TableRef("S", 2)
R2 = TableRef("R", 3)
S2 = TableRef("S", 4)


def col(table, name):
    return ColumnRef(table, name, DataType.INT)


def classes_of(*equalities):
    return EquivalenceClasses.from_conjuncts(list(equalities))


class TestSlotMapping:
    def test_assignment_by_name_and_occurrence(self):
        assignment = slot_assignment([S1, R1])
        assert assignment[R1] == ("R", 0)
        assert assignment[S1] == ("S", 0)

    def test_self_join_occurrences(self):
        a1, a2 = TableRef("A", 1), TableRef("A", 2)
        assignment = slot_assignment([a2, a1])
        assert sorted(assignment.values()) == [("A", 0), ("A", 1)]

    def test_slot_classes(self):
        classes = slot_classes(
            frozenset([R1, S1]),
            [frozenset([col(R1, "a"), col(S1, "d")])],
        )
        assert classes.same_class(("R", 0, "a"), ("S", 0, "d"))


class TestExample2:
    """Paper Example 2, verbatim."""

    def _expr1(self, r, s):
        # R ⋈(R.a=S.d ∧ R.b=S.e) S
        return slot_classes(
            frozenset([r, s]),
            [
                frozenset([col(r, "a"), col(s, "d")]),
                frozenset([col(r, "b"), col(s, "e")]),
            ],
        )

    def _expr2(self, r, s):
        # R ⋈(R.a=S.d ∧ R.c=S.f) S
        return slot_classes(
            frozenset([r, s]),
            [
                frozenset([col(r, "a"), col(s, "d")]),
                frozenset([col(r, "c"), col(s, "f")]),
            ],
        )

    def _expr3(self, r, s):
        # R ⋈(R.c=S.f) S only
        return slot_classes(
            frozenset([r, s]), [frozenset([col(r, "c"), col(s, "f")])]
        )

    def test_compatible_pair(self):
        slots = {("R", 0), ("S", 0)}
        ok, intersection = join_compatible_classes(
            [self._expr1(R1, S1), self._expr2(R2, S2)], slots
        )
        assert ok
        # Intersection is exactly {{R.a, S.d}}.
        assert len(intersection.classes()) == 1

    def test_incompatible_pair(self):
        slots = {("R", 0), ("S", 0)}
        expr1 = self._expr1(R1, S1)  # a=d, b=e
        expr3 = self._expr3(R2, S2)  # c=f only
        ok, intersection = join_compatible_classes([expr1, expr3], slots)
        assert not ok
        assert len(intersection.classes()) == 0


class TestDerivation:
    """Paper Example 3: deriving compatibility from subexpressions."""

    def test_connected_parts_prove_compatibility(self):
        all_slots = {("R", 0), ("S", 0), ("T", 0)}
        parts = [
            ({("R", 0), ("S", 0)}, True),
            ({("S", 0), ("T", 0)}, True),
        ]
        assert derive_compatibility_from_parts(parts, all_slots)

    def test_disconnected_parts_are_inconclusive(self):
        all_slots = {("R", 0), ("S", 0), ("T", 0), ("U", 0)}
        parts = [
            ({("R", 0), ("S", 0)}, True),
            ({("T", 0), ("U", 0)}, True),
        ]
        assert not derive_compatibility_from_parts(parts, all_slots)

    def test_incompatible_part_ignored(self):
        all_slots = {("R", 0), ("S", 0), ("T", 0)}
        parts = [
            ({("R", 0), ("S", 0)}, True),
            ({("S", 0), ("T", 0)}, False),
        ]
        assert not derive_compatibility_from_parts(parts, all_slots)

    def test_uncovered_slots_inconclusive(self):
        all_slots = {("R", 0), ("S", 0), ("T", 0)}
        parts = [({("R", 0), ("S", 0)}, True)]
        assert not derive_compatibility_from_parts(parts, all_slots)


class TestOnRealBlocks:
    @pytest.fixture()
    def two_query_memo(self, tiny_db):
        sql = (
            "select c_nationkey, sum(l_extendedprice) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_nationkey;"
            "select c_mktsegment, sum(l_quantity) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_mktsegment"
        )
        memo = Memo(CardinalityEstimator(tiny_db), OptimizerOptions())
        batch = bind_batch(tiny_db.catalog, sql)
        tops = [memo.build_block(q.block, q.name) for q in batch.queries]
        memo.build_root(tops)
        return memo, tops

    def test_same_joins_compatible(self, two_query_memo):
        memo, tops = two_query_memo
        assert join_compatible(
            tops[0], tops[1],
            memo.block_infos[tops[0].block.name],
            memo.block_infos[tops[1].block.name],
        )

    def test_different_table_sets_incompatible(self, two_query_memo):
        memo, tops = two_query_memo
        smaller = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 2
            and g.block.name == tops[0].block.name
        ][0]
        assert not join_compatible(
            tops[0], smaller,
            memo.block_infos[tops[0].block.name],
            memo.block_infos[smaller.block.name],
        )

    def test_compatibility_groups_partition(self, two_query_memo):
        memo, tops = two_query_memo
        clusters = compatibility_groups(list(tops), memo.block_infos)
        assert len(clusters) == 1 and len(clusters[0]) == 2

    def test_overlapping_instances_not_clustered(self, two_query_memo):
        memo, tops = two_query_memo
        # A group cannot share a CSE with itself (same instances).
        clusters = compatibility_groups([tops[0], tops[0]], memo.block_infos)
        assert clusters == []
