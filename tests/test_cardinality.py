"""Tests for the cardinality estimator."""

import pytest

from repro.expr.expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    Not,
    Or,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.optimizer.cardinality import (
    CardinalityEstimator,
    DEFAULT_SELECTIVITY,
    cardenas,
)
from repro.types import DataType, date_to_int


@pytest.fixture()
def estimator(tiny_db):
    return CardinalityEstimator(tiny_db)


def cust(name, dtype=DataType.INT):
    return ColumnRef(TableRef("customer", 1), name, dtype)


def orders(name, dtype=DataType.INT):
    return ColumnRef(TableRef("orders", 2), name, dtype)


class TestBaseStatistics:
    def test_table_rows(self, estimator, tiny_db):
        assert estimator.table_rows(TableRef("customer", 1)) == float(
            tiny_db.table("customer").row_count
        )

    def test_column_ndv(self, estimator):
        assert estimator.column_ndv(cust("c_nationkey")) <= 25
        assert estimator.column_ndv(cust("c_custkey")) == float(
            estimator.table_rows(TableRef("customer", 1))
        )

    def test_width_of(self, estimator):
        width = estimator.width_of([cust("c_custkey"), cust("c_name", DataType.STRING)])
        assert width == 8 + 25


class TestSelectivity:
    def test_equality_literal(self, estimator):
        sel = estimator.selectivity(eq(cust("c_nationkey"), Literal(3)))
        assert 0 < sel <= 1.0 / 10  # ~1/25 with full stats

    def test_range_uses_histogram(self, estimator):
        date_col = orders("o_orderdate", DataType.DATE)
        mid = Literal(date_to_int("1995-05-01"), DataType.DATE)
        sel = estimator.selectivity(lt(date_col, mid))
        assert 0.35 < sel < 0.65  # roughly half the 1992-1998 span

    def test_range_extremes(self, estimator):
        date_col = orders("o_orderdate", DataType.DATE)
        early = Literal(date_to_int("1980-01-01"), DataType.DATE)
        late = Literal(date_to_int("2005-01-01"), DataType.DATE)
        assert estimator.selectivity(lt(date_col, early)) < 0.01
        assert estimator.selectivity(lt(date_col, late)) > 0.99

    def test_column_column_equality(self, estimator):
        sel = estimator.selectivity(eq(cust("c_custkey"), orders("o_custkey")))
        assert sel == pytest.approx(
            1.0 / estimator.column_ndv(cust("c_custkey"))
        )

    def test_and_or_not(self, estimator):
        a = gt(cust("c_nationkey"), Literal(10))
        b = lt(cust("c_nationkey"), Literal(20))
        sa, sb = estimator.selectivity(a), estimator.selectivity(b)
        assert estimator.selectivity(And((a, b))) == pytest.approx(sa * sb)
        assert estimator.selectivity(Or((a, b))) == pytest.approx(
            1 - (1 - sa) * (1 - sb)
        )
        assert estimator.selectivity(Not(a)) == pytest.approx(1 - sa)

    def test_true_false_literals(self, estimator):
        assert estimator.selectivity(Literal(True)) == 1.0
        assert estimator.selectivity(Literal(False)) == 0.0

    def test_unknown_shape_defaults(self, estimator):
        from repro.logical.blocks import ScalarSubquery

        pred = gt(cust("c_acctbal", DataType.FLOAT), ScalarSubquery("s"))
        assert estimator.selectivity(pred) == DEFAULT_SELECTIVITY

    def test_ne_complements_eq(self, estimator):
        col = cust("c_nationkey")
        eq_sel = estimator.selectivity(eq(col, Literal(3)))
        ne_sel = estimator.selectivity(
            Comparison(ComparisonOp.NE, col, Literal(3))
        )
        assert eq_sel + ne_sel == pytest.approx(1.0)


class TestJoinFactors:
    def test_class_factor_for_join_two_way(self, estimator):
        c = cust("c_custkey")
        o = orders("o_custkey")
        cls = frozenset([c, o])
        rows = {
            TableRef("customer", 1): estimator.table_rows(TableRef("customer", 1)),
            TableRef("orders", 2): estimator.table_rows(TableRef("orders", 2)),
        }
        factor = estimator.class_factor_for_join(
            cls, rows, frozenset(rows.keys())
        )
        # 1/max(ndv): the classic equijoin selectivity.
        assert factor == pytest.approx(
            1.0 / max(estimator.column_ndv(c), estimator.column_ndv(o))
        )

    def test_ndv_capped_by_rows(self, estimator):
        c = cust("c_custkey")
        o = orders("o_custkey")
        rows = {TableRef("customer", 1): 5.0, TableRef("orders", 2): 5.0}
        factor = estimator.class_factor_for_join(
            frozenset([c, o]), rows, frozenset(rows.keys())
        )
        assert factor == pytest.approx(1.0 / 5.0)

    def test_single_item_class_neutral(self, estimator):
        c = cust("c_custkey")
        factor = estimator.class_factor_for_join(
            frozenset([c]), {TableRef("customer", 1): 10.0},
            frozenset([TableRef("customer", 1)]),
        )
        assert factor == 1.0


class TestGroupRows:
    def test_no_keys_single_group(self, estimator):
        assert estimator.group_rows(1000, ()) == 1.0

    def test_group_count_bounded(self, estimator):
        keys = (cust("c_nationkey"),)
        groups = estimator.group_rows(10_000, keys)
        assert 1.0 <= groups <= 25.0

    def test_more_keys_more_groups(self, estimator):
        one = estimator.group_rows(10_000, (cust("c_nationkey"),))
        two = estimator.group_rows(
            10_000, (cust("c_nationkey"), cust("c_mktsegment", DataType.STRING))
        )
        assert two >= one


class TestCardenas:
    def test_bounds(self):
        assert cardenas(100, 1000) <= 100
        assert cardenas(1_000_000, 10) <= 10.0001
        assert cardenas(1, 50) == 1

    def test_monotone_in_rows(self):
        assert cardenas(100, 50) <= cardenas(100, 500)

    def test_zero_rows(self):
        assert cardenas(100, 0) == 0.0

    def test_saturation(self):
        # Far more rows than domain: all values appear.
        assert cardenas(10, 1_000_000) == pytest.approx(10.0)


class TestIndexSupport:
    def test_match_fraction_range(self, estimator):
        date_col = orders("o_orderdate", DataType.DATE)
        conjunct = lt(date_col, Literal(date_to_int("1993-01-01"), DataType.DATE))
        fraction = estimator.index_match_fraction(date_col, conjunct)
        assert fraction is not None and 0 < fraction < 0.3

    def test_not_sargable(self, estimator):
        date_col = orders("o_orderdate", DataType.DATE)
        other = orders("o_orderkey")
        conjunct = lt(other, Literal(50))
        assert estimator.index_match_fraction(date_col, conjunct) is None
        ne = Comparison(ComparisonOp.NE, date_col, Literal(5, DataType.DATE))
        assert estimator.index_match_fraction(date_col, ne) is None
