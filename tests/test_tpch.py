"""Tests for the synthetic TPC-H generator."""

import numpy as np
import pytest

from repro.catalog.tpch import (
    BASE_CARDINALITIES,
    build_tpch_database,
    generate_tpch_data,
    tpch_catalog_schemas,
)
from repro.types import DataType, date_to_int


class TestSchemas:
    def test_eight_tables(self):
        schemas = tpch_catalog_schemas()
        assert sorted(s.name for s in schemas) == [
            "customer", "lineitem", "nation", "orders",
            "part", "partsupp", "region", "supplier",
        ]

    def test_orderdate_index_declared(self):
        orders = next(s for s in tpch_catalog_schemas() if s.name == "orders")
        assert orders.index_on("o_orderdate") is not None

    def test_paper_availqty_column(self):
        """Q4 of §6.2 selects p_availqty from part (see module docstring)."""
        part = next(s for s in tpch_catalog_schemas() if s.name == "part")
        assert part.has_column("p_availqty")


class TestGeneration:
    def test_deterministic(self):
        first = generate_tpch_data(0.0005, seed=7)
        second = generate_tpch_data(0.0005, seed=7)
        assert np.array_equal(
            first["orders"]["o_orderdate"], second["orders"]["o_orderdate"]
        )

    def test_seed_changes_data(self):
        first = generate_tpch_data(0.0005, seed=7)
        second = generate_tpch_data(0.0005, seed=8)
        assert not np.array_equal(
            first["orders"]["o_custkey"], second["orders"]["o_custkey"]
        )

    def test_cardinality_ratios(self):
        data = generate_tpch_data(0.001)
        customers = len(data["customer"]["c_custkey"])
        orders = len(data["orders"]["o_orderkey"])
        lineitems = len(data["lineitem"]["l_orderkey"])
        assert orders == 10 * customers
        assert 2.5 * orders <= lineitems <= 5.5 * orders

    def test_fixed_small_tables(self):
        data = generate_tpch_data(0.001)
        assert len(data["region"]["r_regionkey"]) == 5
        assert len(data["nation"]["n_nationkey"]) == 25

    def test_foreign_keys_resolve(self):
        data = generate_tpch_data(0.001)
        custkeys = set(data["customer"]["c_custkey"].tolist())
        assert set(data["orders"]["o_custkey"].tolist()) <= custkeys
        orderkeys = set(data["orders"]["o_orderkey"].tolist())
        assert set(data["lineitem"]["l_orderkey"].tolist()) <= orderkeys
        assert set(data["customer"]["c_nationkey"].tolist()) <= set(range(25))
        assert set(data["nation"]["n_regionkey"].tolist()) <= set(range(5))

    def test_date_ranges(self):
        data = generate_tpch_data(0.001)
        dates = data["orders"]["o_orderdate"]
        assert dates.min() >= date_to_int("1992-01-01")
        assert dates.max() <= date_to_int("1998-08-02")

    def test_lineitem_orderdate_consistency(self):
        """Ship dates follow their order's date."""
        data = generate_tpch_data(0.001)
        order_dates = dict(
            zip(
                data["orders"]["o_orderkey"].tolist(),
                data["orders"]["o_orderdate"].tolist(),
            )
        )
        ship = data["lineitem"]["l_shipdate"].tolist()
        keys = data["lineitem"]["l_orderkey"].tolist()
        for okey, sdate in list(zip(keys, ship))[:200]:
            assert sdate > order_dates[okey]


class TestDatabaseBuild:
    def test_build_with_stats_and_index(self):
        db = build_tpch_database(scale_factor=0.0005)
        assert db.has_statistics("lineitem")
        assert db.index_for("orders", "o_orderdate") is not None
        stats = db.statistics("customer")
        assert stats.column("c_nationkey").ndv <= 25

    def test_mktsegment_domain(self):
        db = build_tpch_database(scale_factor=0.0005)
        segments = set(db.table("customer").column("c_mktsegment").tolist())
        assert segments <= {
            "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
        }
