"""Tests for the workload generators."""

import pytest

from repro.sql.binder import bind_batch
from repro.sql.parser import parse_batch
from repro.workloads import (
    complex_join_batch,
    example1_batch,
    example1_with_q4,
    nested_query,
    scaleup_batch,
)


class TestExample1:
    def test_three_queries(self, tiny_db):
        batch = bind_batch(tiny_db.catalog, example1_batch())
        assert len(batch.queries) == 3
        for query in batch.queries[:2]:
            assert sorted(t.table for t in query.block.tables) == [
                "customer", "lineitem", "orders",
            ]
        assert "nation" in {t.table for t in batch.queries[2].block.tables}

    def test_q4_added(self, tiny_db):
        batch = bind_batch(tiny_db.catalog, example1_with_q4())
        assert len(batch.queries) == 4
        assert sorted(t.table for t in batch.queries[3].block.tables) == [
            "lineitem", "orders", "part",
        ]

    def test_nested_query_structure(self, tiny_db):
        batch = bind_batch(tiny_db.catalog, nested_query())
        query = batch.queries[0]
        assert len(query.subqueries) == 1
        assert query.order_by and query.order_by[0][1] is True
        sub = next(iter(query.subqueries.values()))
        assert sorted(t.table for t in sub.tables) == [
            "customer", "lineitem", "orders",
        ]


class TestScaleup:
    def test_requested_count(self, tiny_db):
        for n in (1, 2, 5, 10):
            batch = bind_batch(tiny_db.catalog, scaleup_batch(n))
            assert len(batch.queries) == n

    def test_deterministic(self):
        assert scaleup_batch(6, seed=3) == scaleup_batch(6, seed=3)
        assert scaleup_batch(6, seed=3) != scaleup_batch(6, seed=4)

    def test_all_share_core_join(self, tiny_db):
        batch = bind_batch(tiny_db.catalog, scaleup_batch(8))
        for query in batch.queries:
            tables = {t.table for t in query.block.tables}
            assert {"customer", "orders", "lineitem"} <= tables

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            scaleup_batch(0)


class TestComplexJoins:
    def test_two_eight_table_queries(self, tiny_db):
        batch = bind_batch(tiny_db.catalog, complex_join_batch())
        assert len(batch.queries) == 2
        for query in batch.queries:
            assert len(query.block.tables) == 8

    def test_different_predicates(self):
        sql = complex_join_batch()
        first, second = sql.split(";\n")
        assert first != second

    def test_parses(self):
        assert len(parse_batch(complex_join_batch())) == 2
