"""The sharing-economics ledger: Def 5.1 identities, assembly from
plan/run evidence, and the cross-surface number-equality contract
(EXPLAIN ANALYZE == query log == /metrics == explain --why)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import MetricsRegistry, OptimizerOptions, Session
from repro.executor.runtime import SpoolStats
from repro.obs import SharingLedger, SpoolLedgerEntry, build_ledger
from repro.obs.exporter import render_prometheus
from repro.obs.ledger import estimated_ledger
from repro.obs.querylog import QueryLog
from repro.workloads import example1_batch


@dataclass
class FakeCandidate:
    cse_id: str
    body_cost: float
    write_cost: float
    read_cost: float


class TestDefinition51:
    def test_estimated_savings_identity(self):
        # Def 5.1: n*C_E - (C_E + C_W + n*C_R) with n=3, C_E=100,
        # C_W=20, C_R=5 -> 300 - (100 + 20 + 15) = 165.
        entry = SpoolLedgerEntry(
            cse_id="E1", planned_consumers=3, consumers=0,
            est_body_cost=100.0, est_write_cost=20.0, est_read_cost=5.0,
        )
        assert entry.est_savings == pytest.approx(165.0)

    def test_measured_savings_uses_actual_reads(self):
        entry = SpoolLedgerEntry(
            cse_id="E1", planned_consumers=3, consumers=2,
            measured_body_cost=100.0, measured_write_cost=20.0,
            measured_read_total=8.0,
        )
        # 2*100 - (100 + 20 + 8) = 72: one planned consumer never read.
        assert entry.measured_savings == pytest.approx(72.0)
        assert not entry.negative

    def test_single_consumer_spool_loses_money(self):
        entry = SpoolLedgerEntry(
            cse_id="E1", planned_consumers=2, consumers=1,
            measured_body_cost=100.0, measured_write_cost=20.0,
            measured_read_total=4.0,
        )
        # 1*C_E - (C_E + C_W + C_R) = -(C_W + C_R): sharing with one
        # actual reader can never pay.
        assert entry.measured_savings == pytest.approx(-24.0)
        assert entry.negative
        ledger = SharingLedger(spools=[entry])
        assert ledger.negative_spools == ["E1"]
        assert "!! negative benefit" in ledger.render()


class TestBuildLedger:
    def _stats(self, **kw):
        stats = SpoolStats()
        for key, value in kw.items():
            setattr(stats, key, value)
        return stats

    def test_measured_write_is_total_minus_body(self):
        stats = self._stats(
            reads=2, rows_written=10, rows_read=20,
            body_cost_units=100.0, write_cost_units=130.0,
            read_cost_units=8.0,
        )
        ledger = build_ledger(
            [FakeCandidate("E1", 90.0, 25.0, 4.0)],
            {"E1": stats},
            {"Q1": {"E1": 1}, "Q2": {"E1": 1}},
        )
        entry = ledger.spool("E1")
        assert entry.measured_body_cost == pytest.approx(100.0)
        assert entry.measured_write_cost == pytest.approx(30.0)
        assert entry.measured_read_total == pytest.approx(8.0)
        assert entry.est_body_cost == pytest.approx(90.0)
        assert entry.planned_consumers == 2
        assert entry.consumers == 2

    def test_stacked_spool_never_plans_below_actual_reads(self):
        # A stacked spool's body is itself a reader, which query plans
        # under-count; the ledger keeps the higher observed count.
        stats = self._stats(reads=3, body_cost_units=10.0,
                            write_cost_units=12.0)
        ledger = build_ledger(
            [FakeCandidate("E1", 10.0, 2.0, 1.0)], {"E1": stats},
            {"Q1": {"E1": 2}},
        )
        assert ledger.spool("E1").planned_consumers == 3

    def test_only_materialized_spools_appear(self):
        ledger = build_ledger(
            [FakeCandidate("E1", 1.0, 1.0, 1.0),
             FakeCandidate("E2", 1.0, 1.0, 1.0)],
            {"E1": self._stats(reads=1)},
            {},
        )
        assert [e.cse_id for e in ledger.spools] == ["E1"]

    def test_per_query_attribution_sums_to_totals(self):
        stats = self._stats(
            reads=3, body_cost_units=100.0, write_cost_units=120.0,
            read_cost_units=9.0,
        )
        ledger = build_ledger(
            [FakeCandidate("E1", 100.0, 20.0, 3.0)],
            {"E1": stats},
            {"Q1": {"E1": 2}, "Q2": {"E1": 1}, "Q3": {}},
        )
        assert sum(
            q.est_savings for q in ledger.queries
        ) == pytest.approx(ledger.est_savings)
        assert sum(
            q.measured_savings for q in ledger.queries
        ) == pytest.approx(ledger.measured_savings)
        by_name = {q.query: q for q in ledger.queries}
        assert by_name["Q1"].measured_savings == pytest.approx(
            by_name["Q2"].measured_savings * 2
        )
        assert by_name["Q3"].measured_savings == 0.0

    def test_estimated_ledger_has_zero_measured_columns(self):
        ledger = estimated_ledger(
            [FakeCandidate("E1", 100.0, 20.0, 5.0)],
            {"Q1": {"E1": 1}, "Q2": {"E1": 1}},
        )
        entry = ledger.spool("E1")
        assert entry.planned_consumers == 2
        assert entry.consumers == 0
        assert entry.measured_savings == pytest.approx(-0.0)
        assert entry.est_savings == pytest.approx(70.0)


class TestLedgerSurfaces:
    @pytest.fixture()
    def run(self, small_db):
        registry = MetricsRegistry()
        query_log = QueryLog()
        session = Session(
            small_db, OptimizerOptions(), registry=registry,
            query_log=query_log, workers=4,
        )
        outcome = session.execute(example1_batch())
        return session, registry, query_log, outcome

    def test_measured_savings_positive_on_example1(self, run):
        _, _, _, outcome = run
        ledger = outcome.ledger
        assert ledger is not None and ledger.spools
        assert ledger.measured_savings > 0
        assert ledger.est_savings > 0
        assert ledger.negative_spools == []
        entry = ledger.spools[0]
        assert entry.consumers == 3  # Q1, Q2, Q3 all read the spool
        assert entry.rows_written > 0

    def test_same_numbers_on_every_surface(self, run):
        session, registry, query_log, outcome = run
        payload = outcome.ledger.to_payload()

        # Query log carries the identical payload object structure.
        assert query_log.records[-1]["ledger"] == payload

        # Prometheus gauges equal the payload's rounded values.
        for spool in payload["spools"]:
            labels = {"spool": spool["spool"]}
            assert registry.get(
                "ledger.spool_measured_savings", labels=labels
            ) == spool["measured_savings"]
            assert registry.get(
                "ledger.spool_est_savings", labels=labels
            ) == spool["est_savings"]
            assert registry.get(
                "ledger.spool_consumers", labels=labels
            ) == spool["consumers"]
        assert registry.get("ledger.spools_shared") == len(payload["spools"])
        assert registry.get("ledger.negative_spools") == 0

        text = render_prometheus(registry)
        assert "repro_ledger_spool_measured_savings{" in text

        # EXPLAIN ANALYZE renders from the same payload.
        analyzed = session.explain(example1_batch(), analyze=True)
        assert "sharing ledger (Def 5.1, cost units):" in analyzed
        for spool in payload["spools"]:
            assert f"C_E={spool['est_body_cost']}" in analyzed

    def test_explain_why_shows_plan_time_ledger(self, run):
        session, _, _, outcome = run
        why = session.explain(example1_batch(), why=True)
        assert "sharing ledger (Def 5.1, cost units):" in why
        payload = outcome.ledger.to_payload()
        # Same estimated terms as the executed ledger, measured all zero.
        for spool in payload["spools"]:
            assert f"C_E={spool['est_body_cost']}" in why
        assert "measured: C_E=0" in why

    def test_totals_accumulate_as_counters(self, run):
        session, registry, _, outcome = run
        first = registry.get("ledger.measured_savings_total")
        assert first == pytest.approx(
            outcome.ledger.to_payload()["measured_savings"]
        )
        session.execute(example1_batch())
        assert registry.get("ledger.batches") == 2
        assert registry.get("ledger.measured_savings_total") > first

    def test_degraded_run_has_empty_ledger(self, small_db):
        session = Session(
            small_db, OptimizerOptions(enable_cse=False),
        )
        outcome = session.execute(example1_batch())
        assert outcome.ledger is not None
        assert outcome.ledger.spools == []
        assert "no shared spools" in outcome.ledger.render()
