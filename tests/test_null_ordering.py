"""NULL ordering through ORDER BY: engine and oracle must agree.

NULL-extended outer-join frames (PR 6) flow ``None`` (object columns) and
``NaN`` (numeric columns) into ORDER BY. The engine encodes each sort key as
dense rank codes with NULL ranking largest — NULLs last ascending, first
descending, on both dtypes — and the reference oracle sorts with stable
per-key passes under the same rule. These tests pin the unit behavior
(including descending-tie stability, which a reversed-stable-sort
implementation breaks) and the engine↔oracle agreement on null-extended
frames, with a pinned-seed randomized sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.executor.iterators import _rank_codes, sort_order_for
from repro.executor.reference import evaluate_batch
from repro.expr.expressions import ColumnRef, TableRef
from repro.types import DataType

#: pinned seed for the randomized sweep (satellite regression anchor).
PINNED_SEED = 20260807

T = TableRef(table="t", instance=0)


def _col(name: str, data_type: DataType) -> ColumnRef:
    return ColumnRef(table_ref=T, column=name, data_type=data_type)


class TestRankCodes:
    def test_float_nan_ranks_largest(self):
        values = np.array([3.0, np.nan, 1.0, 2.0, np.nan])
        codes = _rank_codes(values)
        assert codes.dtype == np.int64
        assert list(codes) == [2, 3, 0, 1, 3]

    def test_object_none_ranks_largest(self):
        values = np.array(["b", None, "a", None, "c"], dtype=object)
        codes = _rank_codes(values)
        assert list(codes) == [1, 3, 0, 3, 2]

    def test_plain_int_dense_ranks(self):
        values = np.array([30, 10, 20, 10])
        assert list(_rank_codes(values)) == [2, 0, 1, 0]

    def test_empty(self):
        assert len(_rank_codes(np.array([], dtype=np.float64))) == 0


class TestSortOrder:
    def test_nulls_last_ascending_first_descending(self):
        col = _col("v", DataType.FLOAT)
        frame = {col: np.array([2.0, np.nan, 1.0])}
        asc = sort_order_for(((col, False),), frame)
        assert list(asc) == [2, 0, 1]
        desc = sort_order_for(((col, True),), frame)
        assert list(desc) == [1, 0, 2]

    def test_object_none_ordering(self):
        col = _col("s", DataType.STRING)
        frame = {col: np.array(["b", None, "a"], dtype=object)}
        assert list(sort_order_for(((col, False),), frame)) == [2, 0, 1]
        assert list(sort_order_for(((col, True),), frame)) == [1, 0, 2]

    def test_descending_ties_keep_secondary_key_order(self):
        """Multi-key: a descending primary key must stay stable on ties,
        so the ascending secondary key decides — reversing a stable
        ascending sort (the old implementation) scrambles this."""
        a = _col("a", DataType.INT)
        b = _col("b", DataType.INT)
        frame = {
            a: np.array([1, 2, 1, 2]),
            b: np.array([10, 20, 30, 40]),
        }
        order = sort_order_for(((a, True), (b, False)), frame)
        ranked = [(frame[a][i], frame[b][i]) for i in order]
        assert ranked == [(2, 20), (2, 40), (1, 10), (1, 30)]


#: unmatched nations NULL-extend c_acctbal (NaN in the engine's numeric
#: frames, None in the oracle's row tuples).
NULL_EXTENDED_SQL = (
    "select n_name, c_acctbal "
    "from nation left join customer on n_nationkey = c_nationkey "
    "and c_acctbal > 9900 "
    "order by c_acctbal {direction}, n_name"
)


def _canon(rows):
    """Order-preserving comparison form; NaN and None both mean NULL."""
    return [
        tuple(
            round(v, 6)
            if isinstance(v, float) and v == v
            else ("NULL" if v is None or v != v else v)
            for v in row
        )
        for row in rows
    ]


class TestEngineVsOracle:
    @pytest.mark.parametrize("direction", ["asc", "desc"])
    def test_null_extended_order_by(self, small_db, direction):
        sql = NULL_EXTENDED_SQL.format(direction=direction)
        session = Session(small_db)
        batch = session.bind(sql)
        outcome = session.execute(batch)
        oracle = evaluate_batch(small_db, batch)
        got = outcome.execution.results[0].rows
        # ORDER BY output: compare *in order*, not normalized.
        assert _canon(got) == _canon(oracle["Q1"])
        values = [row[1] for row in got]
        nulls = [i for i, v in enumerate(values)
                 if v is None or v != v]
        assert nulls, "the aggressive ON filter must leave NULL rows"
        if direction == "desc":
            assert nulls == list(range(len(nulls)))  # NULLs first
        else:
            assert nulls == list(
                range(len(values) - len(nulls), len(values))
            )  # NULLs last

    def test_oracle_handles_non_numeric_descending(self, small_db):
        """The old oracle negated values for descending keys — crashing
        on strings; stable per-key passes must not."""
        sql = (
            "select c_mktsegment, count(*) as n from customer "
            "group by c_mktsegment order by c_mktsegment desc"
        )
        session = Session(small_db)
        batch = session.bind(sql)
        outcome = session.execute(batch)
        oracle = evaluate_batch(small_db, batch)
        assert outcome.execution.results[0].rows == oracle["Q1"]

    def test_pinned_seed_randomized_sweep(self, small_db):
        """Randomized ORDER BY shapes over a null-extending join, pinned
        to one seed so a regression reproduces deterministically."""
        rng = np.random.default_rng(PINNED_SEED)
        session = Session(small_db, OptimizerOptions())
        order_cols = ["c_acctbal", "c_custkey", "c_mktsegment"]
        for _ in range(12):
            order_col = order_cols[int(rng.integers(0, len(order_cols)))]
            bound = 8800 + int(rng.integers(0, 1200))
            direction = "desc" if rng.integers(0, 2) else "asc"
            sql = (
                f"select n_name, {order_col} "
                "from nation left join customer "
                f"on n_nationkey = c_nationkey and c_acctbal > {bound} "
                f"order by {order_col} {direction}, n_name"
            )
            batch = session.bind(sql)
            outcome = session.execute(batch)
            oracle = evaluate_batch(small_db, batch)
            assert _canon(outcome.execution.results[0].rows) == _canon(
                oracle["Q1"]
            ), f"seed {PINNED_SEED}: mismatch for\n{sql}"
