"""Unit tests for the serving layer: fingerprints, the plan cache, and
dependency schedules (``repro.serve``)."""

from __future__ import annotations

import threading

import pytest

from repro import CostModel, OptimizerOptions, Session
from repro.errors import ExecutionError
from repro.obs import MetricsRegistry
from repro.serve import (
    ParallelExecutor,
    PlanCache,
    batch_fingerprint,
    batch_tables,
    build_schedule,
    cache_key,
    config_key,
)
from repro.workloads import example1_batch


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


GROUPED = (
    "select c_nationkey, sum(c_acctbal) as t from customer "
    "where c_custkey > 5 and c_nationkey < 10 group by c_nationkey"
)


class TestFingerprint:
    def test_whitespace_and_conjunct_order_invariant(self, small_session):
        reordered = (
            "select   c_nationkey, sum(c_acctbal) as t\nfrom customer\n"
            "where c_nationkey < 10 and c_custkey > 5 group by c_nationkey"
        )
        assert batch_fingerprint(
            small_session.bind(GROUPED)
        ) == batch_fingerprint(small_session.bind(reordered))

    def test_from_clause_order_invariant(self, small_session):
        forward = small_session.bind(
            "select n_name, sum(c_acctbal) as t from nation, customer "
            "where n_nationkey = c_nationkey group by n_name"
        )
        backward = small_session.bind(
            "select n_name, sum(c_acctbal) as t from customer, nation "
            "where n_nationkey = c_nationkey group by n_name"
        )
        assert batch_fingerprint(forward) == batch_fingerprint(backward)

    def test_changed_constant_changes_fingerprint(self, small_session):
        other = GROUPED.replace("c_custkey > 5", "c_custkey > 6")
        assert batch_fingerprint(
            small_session.bind(GROUPED)
        ) != batch_fingerprint(small_session.bind(other))

    def test_changed_join_changes_fingerprint(self, small_session):
        base = (
            "select n_name, sum(c_acctbal) as t from nation, customer "
            "where n_nationkey = c_nationkey group by n_name"
        )
        other = base.replace("n_nationkey =", "n_regionkey =")
        assert batch_fingerprint(
            small_session.bind(base)
        ) != batch_fingerprint(small_session.bind(other))

    def test_batch_order_matters(self, small_session):
        ab = small_session.bind(
            "select r_name from region; select n_name from nation"
        )
        ba = small_session.bind(
            "select n_name from nation; select r_name from region"
        )
        assert batch_fingerprint(ab) != batch_fingerprint(ba)

    def test_batch_tables(self, small_session):
        batch = small_session.bind(example1_batch())
        assert batch_tables(batch) == frozenset(
            {"customer", "orders", "lineitem", "nation"}
        )

    def test_config_key_distinguishes_options(self):
        model = CostModel()
        assert config_key(OptimizerOptions(), model) != config_key(
            OptimizerOptions(enable_cse=False), model
        )
        assert config_key(OptimizerOptions(), model) == config_key(
            OptimizerOptions(), CostModel()
        )

    def test_cache_key_tracks_catalog_version(self):
        session = Session.tpch(scale_factor=0.0005)
        batch = session.bind(GROUPED)
        before = cache_key(
            batch, session.database, session.options, session.cost_model
        )
        session.database.analyze("customer")
        after = cache_key(
            batch, session.database, session.options, session.cost_model
        )
        assert before[0] == after[0]  # same query text
        assert before[1] != after[1]  # new catalog version


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


KEY_A = ("a" * 64, 0, "cfg")
KEY_B = ("b" * 64, 0, "cfg")
KEY_C = ("c" * 64, 0, "cfg")


class TestPlanCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(0)

    def test_hit_miss_counters(self):
        registry = MetricsRegistry()
        cache = PlanCache(4, registry=registry)
        result = object()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, result, frozenset({"customer"}))
        assert cache.get(KEY_A) is result
        assert (cache.hits, cache.misses) == (1, 1)
        counters = registry.snapshot()["counters"]
        assert counters["plan_cache.hit"] == 1
        assert counters["plan_cache.miss"] == 1

    def test_lru_eviction_order(self):
        registry = MetricsRegistry()
        cache = PlanCache(2, registry=registry)
        a, b, c = object(), object(), object()
        cache.put(KEY_A, a, frozenset())
        cache.put(KEY_B, b, frozenset())
        assert cache.get(KEY_A) is a  # refresh A; B is now LRU
        cache.put(KEY_C, c, frozenset())
        assert cache.get(KEY_B) is None
        assert cache.get(KEY_A) is a
        assert cache.get(KEY_C) is c
        assert cache.evictions == 1
        assert registry.snapshot()["counters"]["plan_cache.eviction"] == 1

    def test_invalidate_by_table(self):
        cache = PlanCache(4)
        cache.put(KEY_A, object(), frozenset({"customer", "orders"}))
        cache.put(KEY_B, object(), frozenset({"nation"}))
        assert cache.invalidate("ORDERS") == 1
        assert cache.get(KEY_A) is None
        assert cache.get(KEY_B) is not None
        assert cache.invalidations == 1

    def test_invalidate_matches_mixed_case_put(self):
        """put() must normalize table names: invalidation matches on
        lower-cased names, so an entry stored under mixed-case DDL
        spelling used to survive the mutation that should drop it."""
        cache = PlanCache(4)
        cache.put(KEY_A, object(), frozenset({"Orders", "LineItem"}))
        # The database's mutation hook always fires lower-cased.
        assert cache.invalidate("lineitem") == 1
        assert cache.get(KEY_A) is None

    def test_mixed_case_ddl_invalidates_session_cache(self):
        """End to end: a mutation of a mixed-case table drops the cached
        plan of a batch reading it."""
        import numpy as np

        from repro import Session
        from repro.catalog.schema import ColumnSchema, TableSchema
        from repro.storage.database import Database
        from repro.types import DataType

        database = Database()
        database.create_table(
            TableSchema(
                name="CamelCase",
                columns=[ColumnSchema("cc_id", DataType.INT)],
            ),
            {"cc_id": np.arange(10, dtype=np.int64)},
        )
        session = Session(database)
        sql = "select cc_id from CamelCase"
        session.execute(sql)
        assert session.execute(sql).plan_cache_hit
        database.insert("CamelCase", [(99,)])
        assert not session.execute(sql).plan_cache_hit

    def test_invalidate_all(self):
        cache = PlanCache(4)
        cache.put(KEY_A, object(), frozenset({"customer"}))
        cache.put(KEY_B, object(), frozenset({"nation"}))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_concurrent_access_is_consistent(self):
        cache = PlanCache(8)
        keys = [(f"{i}" * 64, 0, "cfg") for i in range(16)]
        lookups_per_thread = 200
        errors = []

        def hammer(thread_index: int) -> None:
            try:
                for i in range(lookups_per_thread):
                    key = keys[(thread_index + i) % len(keys)]
                    if cache.get(key) is None:
                        cache.put(key, object(), frozenset({"customer"}))
                    if i % 50 == 0:
                        cache.invalidate("customer")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= cache.capacity
        assert cache.hits + cache.misses == 8 * lookups_per_thread


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_shared_spool_dag(self, small_session):
        result = small_session.optimize(example1_batch())
        assert result.stats.used_cses  # the batch shares a spool
        schedule = build_schedule(result.bundle)
        spools = [t for t in schedule.tasks if t.kind == "spool"]
        queries = [t for t in schedule.tasks if t.kind == "query"]
        assert [t.label for t in queries] == ["Q1", "Q2", "Q3"]
        assert spools, "kept CSEs must appear as spool tasks"
        # Every query reading a spool depends on that spool's task.
        spool_indices = {t.index for t in spools}
        assert all(set(q.deps) <= spool_indices for q in queries)
        assert any(q.deps for q in queries)
        # Consumers of one shared spool can run concurrently.
        assert schedule.width >= 2

    def test_topological_task_order(self, small_session):
        result = small_session.optimize(example1_batch())
        schedule = build_schedule(result.bundle)
        for task in schedule.tasks:
            assert all(dep < task.index for dep in task.deps)

    def test_describe_lists_dependencies(self, small_session):
        result = small_session.optimize(example1_batch())
        text = build_schedule(result.bundle).describe()
        assert "spool" in text
        assert "query Q1" in text
        assert "<-" in text  # at least one dependency edge rendered

    def test_independent_queries_have_no_deps(self, small_session):
        result = small_session.optimize(
            "select r_name from region; select n_name from nation"
        )
        schedule = build_schedule(result.bundle)
        assert all(t.kind == "query" and not t.deps for t in schedule.tasks)
        assert schedule.width == 2


class TestParallelExecutorConstruction:
    def test_workers_must_be_positive(self, small_db):
        with pytest.raises(ExecutionError):
            ParallelExecutor(small_db, workers=0)


class TestWarmExecuteSkipsOptimization:
    def test_no_optimizer_span_on_cache_hit(self, small_db):
        from repro import Tracer

        tracer = Tracer()
        session = Session(small_db, OptimizerOptions(), tracer=tracer)
        session.execute(example1_batch())
        cold_names = [e.name for e in tracer.events]
        assert "optimize" in cold_names
        cold_optimize_spans = cold_names.count("optimize")

        warm = session.execute(example1_batch())
        assert warm.plan_cache_hit
        warm_names = [e.name for e in tracer.events]
        # The warm run adds a plan_cache_hit event and no optimizer span.
        assert warm_names.count("optimize") == cold_optimize_spans
        assert "plan_cache_hit" in warm_names
