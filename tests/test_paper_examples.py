"""Scenario tests for the paper's inline examples (5-11) not already covered
by the §6 experiment reproductions."""

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.optimizer.physical import (
    PhysIndexScan,
    PhysSpoolDef,
    PhysSpoolRead,
)


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestExample7IndexedConsumer:
    """Example 7: Q6 touches one day of orders via the o_orderdate index;
    Q7 needs everything after that day. Merging them into one CSE would
    force Q6 to wade through Q7's huge result — merging must not happen."""

    SQL = (
        "select o_orderkey, sum(l_extendedprice) as v "
        "from orders, lineitem "
        "where o_orderkey = l_orderkey and o_orderdate = '1995-01-17' "
        "group by o_orderkey;"
        "select o_orderpriority, sum(l_extendedprice) as v "
        "from orders, lineitem "
        "where o_orderkey = l_orderkey and o_orderdate > '1995-01-17' "
        "group by o_orderpriority"
    )

    def test_selective_consumer_keeps_its_index(self, small_db):
        session = Session(small_db)
        result = session.optimize(self.SQL)
        q6_plan = result.bundle.queries[0].plan
        # Q6's optimal plan goes through the index, not through a shared
        # spool of Q7-sized data.
        assert not any(isinstance(n, PhysSpoolRead) for n in q6_plan.walk())

    def test_merge_benefit_negative(self, small_db):
        """The Δ computation (Heuristic 3) rejects this merge, so no
        candidate covering both consumers is generated."""
        session = Session(small_db)
        result = session.optimize(self.SQL)
        for candidate in result.candidates:
            assert len(candidate.definition.consumer_groups) < 2 or (
                # If a 2-consumer candidate exists, it must not be used by Q6
                candidate.cse_id not in result.stats.used_cses
                or not any(
                    isinstance(n, PhysSpoolRead)
                    for n in result.bundle.queries[0].plan.walk()
                )
            )

    def test_rows_correct(self, small_db):
        session = Session(small_db)
        batch = session.bind(self.SQL)
        outcome = session.execute(batch)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            assert normalize(outcome.execution.query(query.name).rows) == (
                normalize(oracle[query.name])
            )


class TestExample8IntraQuery:
    """Example 8: the same join appears twice *within one query*. The
    signature buckets contain two disjoint groups from one block; the
    candidate's least common ancestor lies inside the query."""

    SQL = (
        "select n1.n_name, sum(c1.c_acctbal) as v1, sum(c2.c_acctbal) as v2 "
        "from nation n1, customer c1, orders o1, "
        "     nation n2, customer c2, orders o2 "
        "where n1.n_nationkey = c1.c_nationkey and c1.c_custkey = o1.o_custkey "
        "  and n2.n_nationkey = c2.c_nationkey and c2.c_custkey = o2.o_custkey "
        "  and o1.o_orderkey = o2.o_orderkey "
        "group by n1.n_name"
    )

    def test_intra_query_candidates_detected(self, small_db):
        session = Session(
            small_db, OptimizerOptions(enable_heuristics=False,
                                       max_cse_optimizations=8)
        )
        result = session.optimize(self.SQL)
        assert result.stats.sharable_buckets >= 1
        assert result.candidates
        # At least one candidate settles inside the query. (Candidates
        # consumed inside other candidates' bodies are lifted to the root —
        # stacking applies within a single query too.)
        assert any(not c.lifted_to_root for c in result.candidates)

    def test_lca_is_inside_the_block(self, small_db):
        from repro.optimizer.engine import Optimizer
        from repro.sql.binder import bind_batch

        optimizer = Optimizer(
            small_db,
            OptimizerOptions(enable_heuristics=False, max_cse_optimizations=4),
        )
        batch = bind_batch(small_db.catalog, self.SQL)
        result = optimizer.optimize(batch)
        root_gid = optimizer._root.gid
        inside = [
            c for c in result.candidates
            if not c.lifted_to_root and c.lca_gid != root_gid
        ]
        assert inside
        for candidate in inside:
            lca = optimizer._memo.groups[candidate.lca_gid]
            assert lca.block is not None  # a group of the query's block

    def test_rows_correct_all_modes(self, small_db):
        for options in (
            OptimizerOptions(),
            OptimizerOptions(enable_heuristics=False, max_cse_optimizations=4),
            OptimizerOptions(enable_cse=False),
        ):
            session = Session(small_db, options)
            batch = session.bind(self.SQL)
            outcome = session.execute(batch)
            oracle = evaluate_batch(session.database, batch)
            assert normalize(outcome.execution.query("Q1").rows) == (
                normalize(oracle["Q1"])
            )


class TestIntraQuerySharingActivates:
    """An intra-query workload where the shared spool genuinely wins: the
    same *filtered* expensive join appears twice, and the downstream work is
    small. The spool settles at the LCA inside the query (PhysSpoolDef in
    the query plan, not at the batch root)."""

    SQL = (
        "select c1.c_mktsegment, sum(c1.c_acctbal) as v1, "
        "       sum(c2.c_acctbal) as v2 "
        "from customer c1, nation n1, customer c2, nation n2 "
        "where c1.c_nationkey = n1.n_nationkey "
        "  and c2.c_nationkey = n2.n_nationkey "
        "  and n1.n_regionkey = n2.n_regionkey "
        "  and c1.c_acctbal > 0 and c2.c_acctbal > 0 "
        "group by c1.c_mktsegment"
    )

    def test_rows_correct(self, small_db):
        session = Session(small_db)
        batch = session.bind(self.SQL)
        outcome = session.execute(batch)
        oracle = evaluate_batch(session.database, batch)
        assert normalize(outcome.execution.query("Q1").rows) == (
            normalize(oracle["Q1"])
        )


class TestExample11MutuallyExclusiveCandidates:
    """Examples 10/11 motivate per-candidate-set re-optimization: plans are
    never compared on usage cost alone. We assert the machinery end to end:
    with several competing candidates, the chosen plan is at least as good
    as any single-candidate restriction."""

    SQL = (
        "select c_nationkey, sum(l_extendedprice) as v "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "group by c_nationkey;"
        "select c_mktsegment, sum(l_quantity) as v "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "group by c_mktsegment;"
        "select o_orderstatus, sum(l_extendedprice) as v "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "group by o_orderstatus"
    )

    def test_full_enumeration_at_least_as_good_as_restrictions(self, small_db):
        session = Session(
            small_db, OptimizerOptions(enable_heuristics=False,
                                       max_cse_optimizations=32)
        )
        full = session.optimize(self.SQL)
        # Restrict to each single candidate by pruning everything else.
        for candidate in full.candidates:
            restricted_session = Session(
                small_db,
                OptimizerOptions(enable_heuristics=False, max_candidates=1,
                                 max_cse_optimizations=4),
            )
            restricted = restricted_session.optimize(self.SQL)
            assert full.est_cost <= restricted.est_cost + 1e-6
