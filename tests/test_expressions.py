"""Unit tests for expression trees (repro.expr.expressions)."""

import pytest

from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.types import DataType


def tref(name="t", instance=1, **kw):
    return TableRef(table=name, instance=instance, **kw)


def col(name, table=None, dtype=DataType.INT):
    return ColumnRef(table or tref(), name, dtype)


class TestTableRef:
    def test_identity_by_instance(self):
        assert tref("t", 1) == tref("t", 1)
        assert tref("t", 1) != tref("t", 2)

    def test_signature_name(self):
        assert tref("customer").signature_name == "customer"
        delta = TableRef("customer", 9, is_delta=True, storage_name="__d1")
        assert delta.signature_name == "delta(customer)"
        assert delta.physical_name == "__d1"

    def test_display_name_prefers_alias(self):
        assert TableRef("customer", 1, alias="c").display_name == "c"
        assert TableRef("customer", 1).display_name == "customer"

    def test_ordering(self):
        assert sorted([tref("b", 1), tref("a", 2)])[0].table == "a"


class TestColumnRef:
    def test_equality_ignores_dtype(self):
        a = col("x", dtype=DataType.INT)
        b = col("x", dtype=DataType.FLOAT)
        assert a == b and hash(a) == hash(b)

    def test_columns_collection(self):
        c = col("x")
        assert c.columns() == frozenset([c])
        assert c.tables() == frozenset([tref()])

    def test_base_key(self):
        assert col("x").base_key == ("t", "x")


class TestLiteral:
    def test_type_inference(self):
        assert Literal(1).data_type is DataType.INT
        assert Literal(1.5).data_type is DataType.FLOAT
        assert Literal("s").data_type is DataType.STRING

    def test_explicit_type_preserved(self):
        assert Literal(10, DataType.DATE).data_type is DataType.DATE

    def test_no_columns(self):
        assert Literal(1).columns() == frozenset()


class TestComparison:
    def test_normalized_literal_to_right(self):
        c = Comparison(ComparisonOp.LT, Literal(5), col("x"))
        n = c.normalized()
        assert isinstance(n.left, ColumnRef)
        assert n.op is ComparisonOp.GT

    def test_normalized_column_order(self):
        a = col("a")
        b = col("b")
        assert Comparison(ComparisonOp.EQ, b, a).normalized().left == a

    def test_is_column_equality(self):
        assert eq(col("a"), col("b")).is_column_equality
        assert not eq(col("a"), Literal(1)).is_column_equality
        assert not lt(col("a"), col("b")).is_column_equality

    def test_flip_negate(self):
        assert ComparisonOp.LE.flipped() is ComparisonOp.GE
        assert ComparisonOp.LT.negated() is ComparisonOp.GE
        assert ComparisonOp.EQ.flipped() is ComparisonOp.EQ

    def test_rebuild_by_substitution(self):
        c = eq(col("a"), col("b"))
        replaced = c.substitute({col("a"): col("z")})
        assert replaced == eq(col("z"), col("b"))


class TestBooleanConnectives:
    def test_and_flattens(self):
        a, b, c = (eq(col(n), Literal(1)) for n in "abc")
        nested = And((a, And((b, c))))
        assert nested.terms == (a, b, c)

    def test_or_flattens(self):
        a, b, c = (eq(col(n), Literal(1)) for n in "abc")
        nested = Or((Or((a, b)), c))
        assert nested.terms == (a, b, c)

    def test_not(self):
        inner = gt(col("a"), Literal(0))
        n = Not(inner)
        assert n.children() == (inner,)
        assert n.data_type is DataType.BOOL

    def test_substitution_through_connectives(self):
        a = eq(col("a"), Literal(1))
        b = eq(col("b"), Literal(2))
        combined = And((a, Or((b, a))))
        replaced = combined.substitute({col("a"): col("q")})
        assert col("q") in replaced.columns()
        assert col("a") not in replaced.columns()


class TestArithmetic:
    def test_div_is_float(self):
        expr = Arithmetic(ArithmeticOp.DIV, Literal(1), Literal(2))
        assert expr.data_type is DataType.FLOAT

    def test_int_plus_int(self):
        expr = Arithmetic(ArithmeticOp.ADD, Literal(1), Literal(2))
        assert expr.data_type is DataType.INT

    def test_mixed_promotes(self):
        expr = Arithmetic(ArithmeticOp.MUL, Literal(1), Literal(2.0))
        assert expr.data_type is DataType.FLOAT


class TestAggExpr:
    def test_count_star(self):
        agg = AggExpr(AggFunc.COUNT, None)
        assert agg.data_type is DataType.INT
        assert agg.children() == ()

    def test_sum_inherits_arg_type(self):
        assert AggExpr(AggFunc.SUM, Literal(1.0)).data_type is DataType.FLOAT
        assert AggExpr(AggFunc.SUM, Literal(1)).data_type is DataType.INT

    def test_min_max(self):
        assert AggExpr(AggFunc.MIN, col("x")).data_type is DataType.INT

    def test_contains_aggregate(self):
        agg = AggExpr(AggFunc.SUM, col("x"))
        assert agg.contains_aggregate()
        assert Arithmetic(ArithmeticOp.DIV, agg, Literal(2)).contains_aggregate()
        assert not col("x").contains_aggregate()

    def test_hashable_and_equal(self):
        a = AggExpr(AggFunc.SUM, col("x"))
        b = AggExpr(AggFunc.SUM, col("x"))
        assert a == b and hash(a) == hash(b)

    def test_walk(self):
        agg = AggExpr(AggFunc.SUM, Arithmetic(ArithmeticOp.ADD, col("x"), col("y")))
        nodes = list(agg.walk())
        assert agg in nodes and col("x") in nodes and col("y") in nodes


class TestCanonKey:
    """The cached canonicalization sort key (memo hot-path fix)."""

    def test_key_is_repr_and_cached(self):
        from repro.expr.expressions import canon_key

        c = col("x")
        assert canon_key(c) == repr(c)
        assert c._canon_key_cache == repr(c)
        assert canon_key(c) is c._canon_key_cache

    def test_repr_not_reinvoked_across_canonicalizations(self, monkeypatch):
        """Regression: repeated ``canon_sorted`` passes over the same
        expression objects must call ``__repr__`` once per object total —
        not once per pass, and a fortiori not O(n log n) per sort."""
        from repro.expr.expressions import canon_sorted

        calls = {"n": 0}
        original = ColumnRef.__repr__

        def counting_repr(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(ColumnRef, "__repr__", counting_repr)
        cols = [col(f"c{i:03d}") for i in range(64)]
        first = canon_sorted(cols)
        for _ in range(9):
            assert canon_sorted(cols) == first
        assert calls["n"] == len(cols)

    def test_sort_order_matches_plain_repr_sort(self):
        from repro.expr.expressions import canon_sorted

        cols = [col(name) for name in ("b", "a", "z", "m", "a2")]
        assert canon_sorted(cols) == sorted(cols, key=repr)

    def test_uncacheable_objects_fall_back(self):
        from repro.expr.expressions import canon_key

        class Slotted:
            __slots__ = ()

            def __repr__(self):
                return "slotted"

        assert canon_key(Slotted()) == "slotted"
