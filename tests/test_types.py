"""Unit tests for the type system (repro.types)."""

import datetime

import numpy as np
import pytest

from repro.errors import StorageError
from repro.types import (
    DataType,
    coerce_column,
    coerce_value,
    common_numeric_type,
    comparable,
    date_to_int,
    int_to_date,
    literal_type,
)


class TestDateConversion:
    def test_epoch_is_zero(self):
        assert date_to_int("1970-01-01") == 0

    def test_known_date(self):
        assert date_to_int("1970-01-02") == 1
        assert date_to_int("1996-07-01") == (
            datetime.date(1996, 7, 1) - datetime.date(1970, 1, 1)
        ).days

    def test_accepts_date_objects(self):
        assert date_to_int(datetime.date(1992, 1, 1)) == date_to_int("1992-01-01")

    def test_accepts_ints_passthrough(self):
        assert date_to_int(12345) == 12345

    def test_roundtrip(self):
        for iso in ("1970-01-01", "1996-07-01", "1998-08-02"):
            assert int_to_date(date_to_int(iso)).isoformat() == iso

    def test_rejects_bool(self):
        with pytest.raises(StorageError):
            date_to_int(True)

    def test_rejects_garbage(self):
        with pytest.raises(StorageError):
            date_to_int(object())


class TestCoercion:
    def test_int(self):
        assert coerce_value(42, DataType.INT) == 42

    def test_int_rejects_float(self):
        with pytest.raises(StorageError):
            coerce_value(4.2, DataType.INT)

    def test_int_rejects_bool(self):
        with pytest.raises(StorageError):
            coerce_value(True, DataType.INT)

    def test_float_accepts_int(self):
        assert coerce_value(7, DataType.FLOAT) == 7.0

    def test_string(self):
        assert coerce_value("abc", DataType.STRING) == "abc"

    def test_string_rejects_number(self):
        with pytest.raises(StorageError):
            coerce_value(3, DataType.STRING)

    def test_date_from_string(self):
        assert coerce_value("1970-01-03", DataType.DATE) == 2

    def test_bool(self):
        assert coerce_value(True, DataType.BOOL) is True

    def test_null_rejected(self):
        with pytest.raises(StorageError):
            coerce_value(None, DataType.INT)

    def test_coerce_column_int(self):
        column = coerce_column([1, 2, 3], DataType.INT)
        assert column.dtype == np.int64
        assert column.tolist() == [1, 2, 3]

    def test_coerce_column_passthrough(self):
        original = np.array([1, 2], dtype=np.int64)
        assert coerce_column(original, DataType.INT) is original

    def test_coerce_column_dates(self):
        column = coerce_column(["1970-01-02", "1970-01-03"], DataType.DATE)
        assert column.tolist() == [1, 2]


class TestLiteralTypes:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (1, DataType.INT),
            (1.5, DataType.FLOAT),
            ("x", DataType.STRING),
            (True, DataType.BOOL),
            (datetime.date(2000, 1, 1), DataType.DATE),
        ],
    )
    def test_inference(self, value, expected):
        assert literal_type(value) is expected

    def test_unknown_rejected(self):
        with pytest.raises(StorageError):
            literal_type(object())


class TestTypeAlgebra:
    def test_common_numeric(self):
        assert common_numeric_type(DataType.INT, DataType.FLOAT) is DataType.FLOAT
        assert common_numeric_type(DataType.INT, DataType.INT) is DataType.INT
        assert common_numeric_type(DataType.DATE, DataType.INT) is DataType.DATE
        assert common_numeric_type(DataType.DATE, DataType.DATE) is DataType.INT

    def test_common_numeric_rejects_strings(self):
        with pytest.raises(StorageError):
            common_numeric_type(DataType.STRING, DataType.INT)

    def test_comparable(self):
        assert comparable(DataType.INT, DataType.FLOAT)
        assert comparable(DataType.DATE, DataType.INT)
        assert comparable(DataType.STRING, DataType.STRING)
        assert not comparable(DataType.STRING, DataType.INT)
        assert not comparable(DataType.DATE, DataType.FLOAT)

    def test_byte_widths(self):
        assert DataType.INT.byte_width == 8
        assert DataType.STRING.byte_width == 25
        assert DataType.BOOL.byte_width == 1

    def test_numpy_dtypes(self):
        assert DataType.INT.numpy_dtype == np.dtype(np.int64)
        assert DataType.BOOL.numpy_dtype == np.dtype(np.bool_)
