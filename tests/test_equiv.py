"""Adversarial corpus for the bag-semantics equivalence checker.

The checker (``repro.equiv``) is the admission gate for every widened-surface
rewrite, so its one inviolable property is *soundness*: it must never return
``proved`` for a pair that is not equivalent under bag semantics. This corpus
pins that property on known-equivalent pairs (which should be proved) and on
the classical traps — NULL-extension (a bare outer join is not an inner
join), duplicate sensitivity (a semi join is not a join), near-miss
predicates — every one of which must come back ``refuted`` or ``gave_up``,
never ``proved``.
"""

import pytest

from repro.equiv import (
    GAVE_UP,
    PROVED,
    REFUTED,
    blocks_equivalent,
    null_rejecting,
    outer_join_reducible,
)
from repro.logical.simplify import simplify_query
from repro.sql.binder import bind_sql


@pytest.fixture()
def catalog(tiny_db):
    return tiny_db.catalog


def _block(catalog, sql):
    query = bind_sql(catalog, sql)
    assert not query.extensions, "helper expects a plain SPJ(G) query"
    return query.block


def _left_join_parts(catalog, sql):
    """(extension tables, post filters) of a single-left-join query."""
    query = bind_sql(catalog, sql)
    assert len(query.extensions) == 1
    return set(query.extensions[0].block.tables), list(query.post.filters)


class TestNullRejection:
    def test_comparison_on_outer_side_rejects(self, catalog):
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where o_totalprice > 100",
        )
        assert null_rejecting(filters[0], tables)

    def test_negated_comparison_still_rejects(self, catalog):
        # NOT(NULL) is NULL under Kleene logic, so the negation of a
        # comparison over the null-extended side still rejects NULLs.
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where not (o_totalprice > 100)",
        )
        assert null_rejecting(filters[0], tables)

    def test_core_only_predicate_does_not_reject(self, catalog):
        query = bind_sql(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where c_nationkey > 2",
        )
        ext_tables = set(query.extensions[0].block.tables)
        # The core-side filter stays in the core block; build the
        # predicate by hand off the core conjuncts.
        conjunct = query.block.conjuncts[0]
        assert not null_rejecting(conjunct, ext_tables)

    def test_disjunction_with_core_escape_does_not_reject(self, catalog):
        # TRAP: `o_totalprice > 100 OR c_nationkey > 2` can be TRUE on a
        # null-extended row (via the core disjunct) — not null-rejecting.
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where o_totalprice > 100 or c_nationkey > 2",
        )
        assert not null_rejecting(filters[0], tables)


class TestOuterJoinReduction:
    def test_null_rejecting_filter_proves_reduction(self, catalog):
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where o_totalprice > 100",
        )
        assert outer_join_reducible(tables, filters).outcome == PROVED

    def test_bare_outer_join_is_never_reduced(self, catalog):
        # TRAP: without a null-rejecting filter the outer join produces
        # null-extended rows an inner join would drop.
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey",
        )
        verdict = outer_join_reducible(tables, filters)
        assert verdict.outcome == GAVE_UP

    def test_escapable_disjunction_is_not_reduced(self, catalog):
        tables, filters = _left_join_parts(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where o_totalprice > 100 or c_nationkey > 2",
        )
        assert outer_join_reducible(tables, filters).outcome != PROVED

    def test_simplifier_folds_only_proved_reductions(self, catalog):
        reducible = bind_sql(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey "
            "where o_totalprice > 100",
        )
        simplified, verdicts = simplify_query(reducible)
        assert not simplified.extensions
        assert [v.outcome for _, v in verdicts] == [PROVED]

        bare = bind_sql(
            catalog,
            "select c_nationkey, o_totalprice from customer "
            "left join orders on c_custkey = o_custkey",
        )
        kept, verdicts = simplify_query(bare)
        assert len(kept.extensions) == 1
        assert [v.outcome for _, v in verdicts] == [GAVE_UP]


#: known-equivalent SPJ(G) pairs: table order, conjunct order, alias names.
EQUIVALENT_PAIRS = [
    (
        "select c_nationkey, sum(o_totalprice) as v from customer, orders "
        "where c_custkey = o_custkey and c_nationkey < 5 "
        "group by c_nationkey",
        "select c_nationkey, sum(o_totalprice) as v from orders, customer "
        "where c_nationkey < 5 and o_custkey = c_custkey "
        "group by c_nationkey",
    ),
    (
        "select c_name from customer where c_nationkey < 7",
        "select c_name from customer c where c.c_nationkey < 7",
    ),
    # alias-only difference (these also appear, separately, in the
    # inequivalent corpus against *other* queries)
    (
        "select c_nationkey from customer where c_nationkey < 5",
        "select c1.c_nationkey from customer c1 where c1.c_nationkey < 5",
    ),
]

#: known-INEQUIVALENT pairs; the checker must never prove any of these.
INEQUIVALENT_PAIRS = [
    # different table multisets (a semi-join consumer is *not* a join:
    # the join multiplies duplicates, the semi join does not)
    (
        "select c_nationkey from customer where c_nationkey < 5",
        "select c_nationkey from customer, orders "
        "where c_custkey = o_custkey and c_nationkey < 5",
    ),
    # self-join vs single scan (duplicate sensitivity again)
    (
        "select c1.c_nationkey from customer c1 where c1.c_nationkey < 5",
        "select c1.c_nationkey from customer c1, customer c2 "
        "where c1.c_custkey = c2.c_custkey and c1.c_nationkey < 5",
    ),
    # near-miss predicate bounds
    (
        "select c_nationkey from customer where c_nationkey < 5",
        "select c_nationkey from customer where c_nationkey < 6",
    ),
    # aggregated vs not
    (
        "select c_nationkey, count(*) as v from customer "
        "group by c_nationkey",
        "select c_nationkey, c_custkey from customer",
    ),
    # different grouping keys
    (
        "select c_nationkey, count(*) as v from customer "
        "group by c_nationkey",
        "select c_mktsegment, count(*) as v from customer "
        "group by c_mktsegment",
    ),
    # different aggregates over the same grouping
    (
        "select c_nationkey, sum(c_acctbal) as v from customer "
        "group by c_nationkey",
        "select c_nationkey, min(c_acctbal) as v from customer "
        "group by c_nationkey",
    ),
]


class TestBlockEquivalence:
    @pytest.mark.parametrize("left,right", EQUIVALENT_PAIRS)
    def test_equivalent_pairs_are_proved(self, catalog, left, right):
        a = _block(catalog, left)
        b = _block(catalog, right)
        assert blocks_equivalent(a, b).outcome == PROVED
        assert blocks_equivalent(b, a).outcome == PROVED

    @pytest.mark.parametrize("left,right", INEQUIVALENT_PAIRS)
    def test_inequivalent_pairs_are_never_proved(self, catalog, left, right):
        a = _block(catalog, left)
        b = _block(catalog, right)
        for first, second in ((a, b), (b, a)):
            verdict = blocks_equivalent(first, second)
            assert verdict.outcome in (REFUTED, GAVE_UP), (
                f"checker PROVED an inequivalent pair:\n{left}\n{right}"
            )

    def test_all_corpus_cross_pairs_never_proved(self, catalog):
        """Sweep every cross pair of distinct corpus queries: the checker
        may prove a pair only if it appears in EQUIVALENT_PAIRS."""
        sqls = sorted(
            {sql for pair in EQUIVALENT_PAIRS + INEQUIVALENT_PAIRS
             for sql in pair}
        )
        allowed = {frozenset(pair) for pair in EQUIVALENT_PAIRS}
        blocks = {sql: _block(catalog, sql) for sql in sqls}
        for left in sqls:
            for right in sqls:
                if left == right:
                    continue
                verdict = blocks_equivalent(blocks[left], blocks[right])
                if verdict.outcome == PROVED:
                    assert frozenset((left, right)) in allowed, (
                        f"checker PROVED an unlisted pair:\n{left}\n{right}"
                    )


class TestDuplicateSensitivityEndToEnd:
    def test_semi_join_is_not_a_join(self, tiny_session):
        """The EXISTS query returns each customer at most once; the plain
        join repeats it per matching order. Results must differ and both
        must match their own plans — sharing the build side must not blur
        the distinction."""
        batch = tiny_session.bind(
            "select c_custkey from customer where exists "
            "(select * from orders where o_custkey = c_custkey);"
            "select c_custkey from customer, orders "
            "where c_custkey = o_custkey"
        )
        outcome = tiny_session.execute(batch)
        semi_rows = [r[0] for r in outcome.execution.query("Q1").rows]
        join_rows = [r[0] for r in outcome.execution.query("Q2").rows]
        assert len(semi_rows) == len(set(semi_rows))
        assert sorted(set(join_rows)) == sorted(semi_rows)
        assert len(join_rows) > len(semi_rows)
