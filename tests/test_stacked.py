"""Dedicated unit coverage for stacked CSEs (§5.5)."""

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.optimizer.engine import Optimizer
from repro.optimizer.physical import PhysSpoolRead
from repro.sql.binder import bind_batch

STACKED_SQL = (
    "select c_nationkey, sum(l_extendedprice) as v "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_nationkey;"
    "select c_mktsegment, sum(l_extendedprice) as v "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_mktsegment;"
    "select o_orderpriority, sum(l_extendedprice) as v "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderpriority;"
    "select o_orderstatus, sum(l_extendedprice) as v "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderstatus"
)


@pytest.fixture()
def stacked_result(small_db):
    optimizer = Optimizer(small_db, OptimizerOptions())
    batch = bind_batch(small_db.catalog, STACKED_SQL)
    return optimizer, optimizer.optimize(batch)


class TestStackedDetection:
    def test_wider_candidate_hosts_narrower(self, stacked_result):
        optimizer, result = stacked_result
        wide = next(
            c for c in result.candidates
            if c.definition.signature.table_count == 3
        )
        narrow = next(
            c for c in result.candidates
            if c.definition.signature.table_count == 2
        )
        assert wide.signature_wider_than(narrow)
        assert not narrow.signature_wider_than(wide)
        body_specs = optimizer._body_specs[narrow.cse_id]
        assert body_specs
        assert all(
            spec.group.block.name == wide.definition.block.name
            for spec in body_specs
        )

    def test_narrow_candidate_lifted(self, stacked_result):
        _, result = stacked_result
        narrow = next(
            c for c in result.candidates
            if c.definition.signature.table_count == 2
        )
        assert narrow.lifted_to_root

    def test_stacking_never_cycles(self, stacked_result):
        """Stacking is restricted to strictly-narrower-inside-wider, so
        spool dependencies are acyclic by construction."""
        optimizer, result = stacked_result
        edges = set()
        for inner in result.candidates:
            for spec in optimizer._body_specs[inner.cse_id]:
                outer_name = spec.group.block.name
                edges.add((inner.cse_id, outer_name))
        for inner_id, outer_body in edges:
            inner = next(
                c for c in result.candidates if c.cse_id == inner_id
            )
            outer = next(
                c for c in result.candidates
                if c.definition.block.name == outer_body
            )
            assert outer.definition.signature.table_count > (
                inner.definition.signature.table_count
            )


class TestStackedExecution:
    def test_spool_order_and_reads(self, stacked_result):
        _, result = stacked_result
        spool_ids = [cid for cid, _ in result.bundle.root_spools]
        if len(spool_ids) < 2:
            pytest.skip("stacking not chosen at this scale")
        reads_of = {
            cid: {
                n.cse_id for n in body.walk() if isinstance(n, PhysSpoolRead)
            }
            for cid, body in result.bundle.root_spools
        }
        for position, (cid, _) in enumerate(result.bundle.root_spools):
            for dep in reads_of[cid]:
                if dep in spool_ids:
                    assert spool_ids.index(dep) < position

    def test_disable_stacking_drops_body_specs(self, small_db):
        optimizer = Optimizer(
            small_db, OptimizerOptions(enable_stacked=False)
        )
        batch = bind_batch(small_db.catalog, STACKED_SQL)
        result = optimizer.optimize(batch)
        for candidate in result.candidates:
            assert optimizer._body_specs[candidate.cse_id] == []
            assert not candidate.lifted_to_root or (
                candidate.lca_gid == optimizer._root.gid
            )

    def test_stacked_execution_metrics(self, small_db):
        session = Session(small_db)
        outcome = session.execute(STACKED_SQL)
        metrics = outcome.execution.metrics
        if metrics.spools_materialized >= 2:
            # The outer spool read the inner one: reads > queries * rows.
            assert metrics.spool_rows_read > 0
        batch = session.bind(STACKED_SQL)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = sorted(outcome.execution.query(query.name).rows, key=repr)
            want = sorted(oracle[query.name], key=repr)
            got = [tuple(round(v, 3) if isinstance(v, float) else v for v in r) for r in got]
            want = [tuple(round(v, 3) if isinstance(v, float) else v for v in r) for r in want]
            assert got == want
