"""Tests for logical operators, query blocks, and tree normalization."""

import pytest

from repro.errors import OptimizerError
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
)
from repro.logical.blocks import BoundBatch, BoundQuery, OutputColumn, QueryBlock
from repro.logical.normalize import normalize_tree
from repro.logical.operators import Get, GroupBy, Join, Project, Select, Spool
from repro.types import DataType

A = TableRef("A", 1)
B = TableRef("B", 2)
C = TableRef("C", 3)


def col(table, name):
    return ColumnRef(table, name, DataType.INT)


class TestOperators:
    def test_tables_in_tree_order(self):
        tree = Join(None, Get(B), Join(None, Get(A), Get(C)))
        assert tree.tables() == (B, A, C)

    def test_walk(self):
        inner = Get(A)
        tree = Select(gt(col(A, "x"), Literal(1)), inner)
        assert list(tree.walk()) == [tree, inner]

    def test_groupby_rejects_expressions_as_keys(self):
        with pytest.raises(OptimizerError):
            GroupBy((Literal(1),), (), Get(A))  # type: ignore[arg-type]


class TestNormalize:
    def test_spj_flattening(self):
        tree = Select(
            gt(col(A, "x"), Literal(5)),
            Join(
                eq(col(A, "k"), col(B, "k")),
                Get(A),
                Select(gt(col(B, "y"), Literal(0)), Get(B)),
            ),
        )
        block = normalize_tree(tree, "q")
        assert set(block.tables) == {A, B}
        assert len(block.conjuncts) == 3
        assert not block.has_groupby

    def test_groupby_normalization(self):
        agg = AggExpr(AggFunc.SUM, col(B, "v"))
        tree = GroupBy(
            (col(A, "k"),),
            (agg,),
            Join(eq(col(A, "k"), col(B, "k")), Get(A), Get(B)),
        )
        block = normalize_tree(tree, "q")
        assert block.group_keys == (col(A, "k"),)
        assert block.aggregates == (agg,)
        # Default output: keys then aggregates.
        assert [o.expr for o in block.output] == [col(A, "k"), agg]

    def test_having_extraction(self):
        agg = AggExpr(AggFunc.SUM, col(A, "v"))
        tree = Select(
            gt(agg, Literal(10)),
            GroupBy((col(A, "k"),), (agg,), Get(A)),
        )
        block = normalize_tree(tree, "q")
        assert block.having == (gt(agg, Literal(10)),)
        assert block.conjuncts == ()

    def test_projection_defines_output(self):
        tree = Project((col(A, "x"),), Get(A))
        block = normalize_tree(tree, "q")
        assert len(block.output) == 1
        assert block.output[0].expr == col(A, "x")

    def test_spool_transparent(self):
        block = normalize_tree(Spool(Get(A)), "q")
        assert block.tables == (A,)

    def test_rejects_join_above_groupby(self):
        grouped = GroupBy((col(A, "x"),), (), Get(A))
        with pytest.raises(OptimizerError):
            normalize_tree(Join(None, grouped, Get(B)), "q")


class TestQueryBlock:
    def _block(self, **kw):
        defaults = dict(
            name="q",
            tables=(A, B),
            conjuncts=(eq(col(A, "k"), col(B, "k")),),
            output=(OutputColumn("k", col(A, "k")),),
        )
        defaults.update(kw)
        return QueryBlock(**defaults)

    def test_duplicate_instances_rejected(self):
        with pytest.raises(OptimizerError):
            self._block(tables=(A, A))

    def test_foreign_columns_rejected(self):
        with pytest.raises(OptimizerError):
            self._block(conjuncts=(eq(col(A, "k"), col(C, "k")),))

    def test_equivalence_classes(self):
        block = self._block()
        classes = block.equivalence_classes()
        assert classes.same_class(col(A, "k"), col(B, "k"))

    def test_columns_of(self):
        block = self._block()
        assert block.columns_of(A) == frozenset([col(A, "k")])
        assert block.columns_of(C) == frozenset()

    def test_required_columns(self):
        agg = AggExpr(AggFunc.SUM, col(B, "v"))
        block = self._block(
            group_keys=(col(A, "k"),),
            aggregates=(agg,),
            output=(OutputColumn("k", col(A, "k")), OutputColumn("s", agg)),
        )
        required = {(c.table_ref, c.column) for c in block.required_columns()}
        assert (B, "v") in required and (A, "k") in required

    def test_has_groupby(self):
        assert not self._block().has_groupby
        assert self._block(group_keys=(col(A, "k"),)).has_groupby
        assert self._block(
            aggregates=(AggExpr(AggFunc.COUNT, None),)
        ).has_groupby


class TestBatches:
    def test_duplicate_query_names_rejected(self):
        q = BoundQuery(name="q", block=QueryBlock(
            name="b1", tables=(A,), conjuncts=(),
            output=(OutputColumn("x", col(A, "x")),),
        ))
        q2 = BoundQuery(name="q", block=QueryBlock(
            name="b2", tables=(B,), conjuncts=(),
            output=(OutputColumn("y", col(B, "y")),),
        ))
        with pytest.raises(OptimizerError):
            BoundBatch(queries=[q, q2])

    def test_shared_instances_rejected(self):
        q1 = BoundQuery(name="q1", block=QueryBlock(
            name="b1", tables=(A,), conjuncts=(),
            output=(OutputColumn("x", col(A, "x")),),
        ))
        q2 = BoundQuery(name="q2", block=QueryBlock(
            name="b2", tables=(A,), conjuncts=(),
            output=(OutputColumn("x", col(A, "x")),),
        ))
        with pytest.raises(OptimizerError):
            BoundBatch(queries=[q1, q2])

    def test_lookup(self):
        q1 = BoundQuery(name="q1", block=QueryBlock(
            name="b1", tables=(A,), conjuncts=(),
            output=(OutputColumn("x", col(A, "x")),),
        ))
        batch = BoundBatch(queries=[q1])
        assert batch.query("q1") is q1
        with pytest.raises(OptimizerError):
            batch.query("nope")
