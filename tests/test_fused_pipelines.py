"""Morsel-streamed fused pipelines: fusion pass, streaming equivalence,
and exactly-once row-budget charging.

The fusion pass collapses eligible scan→filter→project chains into one
:class:`~repro.optimizer.physical.PhysFusedPipeline` node that streams
fixed-size morsels instead of materializing a whole frame per operator.
Correctness bar: frame-identical results to the materializing path at any
morsel size, identical deterministic cost units, and governor row/deadline
checks firing per-morsel.
"""

from __future__ import annotations

import pytest

from repro import OptimizerOptions, Session
from repro.errors import BudgetExceededError, QueryTimeoutError
from repro.optimizer.physical import (
    PhysFilter,
    PhysFusedPipeline,
    PhysScan,
    PhysSpoolRead,
)
from repro.serve.governor import QueryBudget
from repro.workloads import example1_batch

FILTERED_SQL = (
    "select c_nationkey, sum(c_acctbal) as v from customer "
    "where c_nationkey < 12 group by c_nationkey;"
    "select c_mktsegment, count(*) as n from customer "
    "where c_nationkey < 12 group by c_mktsegment"
)

EMPTY_SQL = (
    "select c_nationkey, count(*) as n from customer "
    "where c_nationkey < -1 group by c_nationkey"
)


def _nodes(plan, kind):
    return [n for n in plan.walk() if isinstance(n, kind)]


def _normalize(rows):
    return sorted(
        [
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestFusionPass:
    def test_filtered_scans_fuse(self, small_db):
        result = Session(small_db).optimize(FILTERED_SQL)
        fused = [
            node
            for query in result.bundle.queries
            for node in _nodes(query.plan, PhysFusedPipeline)
        ]
        assert fused
        for node in fused:
            assert isinstance(node.source, (PhysScan, PhysSpoolRead))
            assert all(s.kind in ("filter", "project") for s in node.stages)

    def test_no_bare_filters_below_fused_regions(self, small_db):
        """Fusion is maximal over eligible chains: a filter directly over
        a scan or spool read must have been absorbed."""
        result = Session(small_db).optimize(example1_batch())
        for query in result.bundle.queries:
            for node in _nodes(query.plan, PhysFilter):
                assert not isinstance(
                    node.child, (PhysScan, PhysSpoolRead)
                ), f"unfused filter chain in {query.name}"

    def test_enable_fusion_false_keeps_legacy_shape(self, small_db):
        result = Session(
            small_db, OptimizerOptions(enable_fusion=False)
        ).optimize(FILTERED_SQL)
        for query in result.bundle.queries:
            assert not _nodes(query.plan, PhysFusedPipeline)

    def test_fusion_is_cost_neutral(self, small_db):
        fused = Session(small_db).optimize(FILTERED_SQL)
        legacy = Session(
            small_db, OptimizerOptions(enable_fusion=False)
        ).optimize(FILTERED_SQL)
        assert fused.est_cost == pytest.approx(legacy.est_cost, rel=1e-12)

    def test_option_is_part_of_plan_cache_key(self, small_db):
        session = Session(small_db)
        session.execute(FILTERED_SQL)
        session.options = OptimizerOptions(enable_fusion=False)
        outcome = session.execute(FILTERED_SQL)
        assert not outcome.plan_cache_hit

    def test_cli_no_fused_flag(self, small_db, capsys):
        from repro.cli import main

        assert main(["--sf", "0.002", "explain", FILTERED_SQL]) == 0
        assert "FusedPipeline" in capsys.readouterr().out
        assert (
            main(["--sf", "0.002", "explain", "--no-fused", FILTERED_SQL])
            == 0
        )
        assert "FusedPipeline" not in capsys.readouterr().out


class TestStreamingEquivalence:
    @pytest.mark.parametrize("morsel", [1, 7, 4096])
    def test_morsel_sizes_match_materializing_path(self, small_db, morsel):
        batch = Session(small_db).bind(example1_batch())
        legacy = Session(
            small_db, OptimizerOptions(enable_fusion=False)
        ).execute(batch)
        fused = Session(small_db, morsel_rows=morsel).execute(batch)
        for query in batch.queries:
            assert _normalize(
                fused.execution.query(query.name).rows
            ) == _normalize(legacy.execution.query(query.name).rows)
        assert fused.execution.metrics.cost_units == pytest.approx(
            legacy.execution.metrics.cost_units, rel=1e-12
        )

    @pytest.mark.parametrize("morsel", [1, 7, 4096])
    def test_empty_result_streams(self, small_db, morsel):
        outcome = Session(small_db, morsel_rows=morsel).execute(EMPTY_SQL)
        assert outcome.execution.results[0].row_count == 0

    def test_morsel_size_does_not_change_cost(self, small_db):
        costs = {
            morsel: Session(small_db, morsel_rows=morsel)
            .execute(example1_batch())
            .execution.metrics.cost_units
            for morsel in (1, 7, 4096, 0)
        }
        baseline = costs[4096]
        for morsel, cost in costs.items():
            assert cost == pytest.approx(baseline, rel=1e-12), morsel


class TestRowBudgetCharging:
    """Satellite: rows must be charged exactly once per consumer, no
    matter which of shared-scan / fused / parallel paths executed."""

    def _charged(self, db, sql, **session_kwargs) -> int:
        session = Session(
            db,
            session_kwargs.pop("options", OptimizerOptions()),
            **session_kwargs,
        )
        result = session.optimize(sql)
        token = QueryBudget(max_rows=10**12).start()
        session.execute_bundle(result, token=token)
        return token.rows_charged

    def test_charges_identical_across_execution_modes(self, small_db):
        sql = example1_batch()
        baseline = self._charged(small_db, sql)
        assert baseline > 0
        assert self._charged(small_db, sql, workers=4) == baseline
        assert self._charged(small_db, sql, morsel_rows=1) == baseline
        assert self._charged(small_db, sql, morsel_rows=7) == baseline
        assert (
            self._charged(
                small_db, sql, options=OptimizerOptions(enable_fusion=False)
            )
            == baseline
        )

    def test_budget_boundary_is_exact(self, small_db):
        sql = example1_batch()
        charged = self._charged(small_db, sql)
        session = Session(small_db)
        result = session.optimize(sql)
        session.execute_bundle(
            result, token=QueryBudget(max_rows=charged).start()
        )
        with pytest.raises(BudgetExceededError):
            session.execute_bundle(
                result, token=QueryBudget(max_rows=charged - 1).start()
            )

    def test_spool_producer_output_not_double_charged(self, small_db):
        """The spool body's top output flows only into the materialized
        spool; consumers are charged at their SpoolRead. Charging both
        would bill those rows twice per read."""
        from repro.executor.iterators import execute_node, materialize_spool
        from repro.executor.runtime import ExecutionContext

        session = Session(small_db)
        result = session.optimize(example1_batch())
        assert result.bundle.root_spools
        cse_id, body = result.bundle.root_spools[0]

        def fresh_ctx():
            return ExecutionContext(
                database=small_db,
                cost_model=session.cost_model,
                token=QueryBudget(max_rows=10**12).start(),
            )

        ctx = fresh_ctx()
        spool = materialize_spool(cse_id, body, ctx)
        assert spool.row_count > 0
        materialize_charge = ctx.token.rows_charged
        # Evaluating the same body as a plain subplan charges its top
        # output too — materialization must charge exactly that less.
        plain = fresh_ctx()
        execute_node(body, plain)
        assert (
            plain.token.rows_charged
            == materialize_charge + spool.row_count
        )
        # And each consumer read is charged once, at the read.
        read_node = next(
            node
            for query in result.bundle.queries
            for node in query.plan.walk()
            if isinstance(node, PhysSpoolRead) and node.cse_id == cse_id
        )
        reader = fresh_ctx()
        reader.spools[cse_id] = spool
        execute_node(read_node, reader)
        assert reader.token.rows_charged == spool.row_count


class TestGovernorPerMorsel:
    def test_row_budget_trips_inside_fused_pipeline(self, small_db):
        session = Session(
            small_db,
            default_budget=QueryBudget(max_rows=5, allow_fallback=False),
        )
        with pytest.raises(BudgetExceededError):
            session.execute(FILTERED_SQL)

    def test_deadline_checked_per_morsel(self, small_db):
        """An already-cancelled token must stop the stream at the first
        morsel checkpoint, not after the pipeline drained."""
        from repro.executor.executor import Executor

        session = Session(small_db, morsel_rows=1)
        result = session.optimize(FILTERED_SQL)
        token = QueryBudget(deadline_ms=10_000).start()
        token.deadline = 0.0  # already expired
        executor = Executor(
            session.database, session.cost_model, morsel_rows=1
        )
        with pytest.raises(QueryTimeoutError):
            executor.execute(result.bundle, token=token)
