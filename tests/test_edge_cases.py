"""Edge-case coverage: same-table equalities, inline spool definitions,
scalar binding across every node type, degenerate statistics."""

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.catalog.schema import ColumnSchema, TableSchema
from repro.catalog.statistics import ColumnStats
from repro.errors import ExecutionError
from repro.executor.executor import bind_scalars
from repro.executor.iterators import execute_node
from repro.executor.reference import evaluate_batch
from repro.executor.runtime import ExecutionContext
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.logical.blocks import OutputColumn, ScalarSubquery
from repro.optimizer.aggs import AggCompute
from repro.optimizer.physical import (
    PhysHashAgg,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
)
from repro.storage.database import Database
from repro.types import DataType


class TestSameTableEquality:
    def test_column_equality_within_one_table(self, tiny_session):
        """WHERE c_custkey = c_nationkey: a same-table equivalence class
        becomes a pushed-down scan conjunct."""
        sql = (
            "select c_custkey from customer "
            "where c_custkey = c_nationkey"
        )
        batch = tiny_session.bind(sql)
        outcome = tiny_session.execute(batch)
        oracle = evaluate_batch(tiny_session.database, batch)
        assert sorted(outcome.execution.results[0].rows) == sorted(oracle["Q1"])

    def test_transitive_same_table_equality(self, tiny_session):
        sql = (
            "select n_nationkey from nation "
            "where n_nationkey = n_regionkey"
        )
        outcome = tiny_session.execute(sql)
        table = tiny_session.database.table("nation")
        expected = int(
            (table.column("n_nationkey") == table.column("n_regionkey")).sum()
        )
        assert outcome.execution.results[0].row_count == expected


class TestInlineSpoolDef:
    def test_spool_def_node_executes(self, tiny_db):
        nation = TableRef("nation", 1)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        body = PhysProject(
            child=PhysScan(nation, (lt(nid, Literal(5)),), (nid,)),
            outputs=(OutputColumn("k0", nid),),
            est_rows=5,
        )
        read = PhysSpoolRead("S1", (("k0", nid),), est_rows=5)
        plan = PhysSpoolDef(spools=(("S1", body),), child=read)
        ctx = ExecutionContext(database=tiny_db)
        frame = execute_node(plan, ctx)
        assert sorted(frame[nid].tolist()) == [0, 1, 2, 3, 4]
        assert ctx.metrics.spools_materialized == 1

    def test_spool_def_idempotent(self, tiny_db):
        nation = TableRef("nation", 1)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        body = PhysProject(
            child=PhysScan(nation, (), (nid,)),
            outputs=(OutputColumn("k0", nid),),
        )
        read = PhysSpoolRead("S1", (("k0", nid),))
        inner = PhysSpoolDef(spools=(("S1", body),), child=read)
        outer = PhysSpoolDef(spools=(("S1", body),), child=inner)
        ctx = ExecutionContext(database=tiny_db)
        execute_node(outer, ctx)
        assert ctx.metrics.spools_materialized == 1  # second def is a no-op


class TestBindScalarsCoverage:
    T = TableRef("nation", 1)
    NID = ColumnRef(T, "n_nationkey", DataType.INT)
    SUB = ScalarSubquery("sq9", DataType.INT)

    def _mapping(self):
        return {self.SUB: Literal(3)}

    def test_hash_agg_compute_args(self):
        agg_out = AggExpr(AggFunc.SUM, self.NID)
        scaled = Arithmetic(ArithmeticOp.MUL, self.NID, self.SUB)
        plan = PhysHashAgg(
            child=PhysScan(self.T, (), (self.NID,)),
            keys=(),
            computes=(AggCompute(out=agg_out, func=AggFunc.SUM, arg=scaled),),
        )
        bound = bind_scalars(plan, self._mapping())
        arg = bound.computes[0].arg
        assert all(not isinstance(n, ScalarSubquery) for n in arg.walk())
        assert Literal(3) in list(arg.walk())

    def test_sort_items(self):
        plan = PhysSort(
            child=PhysScan(self.T, (), (self.NID,)),
            sort_items=((Arithmetic(ArithmeticOp.ADD, self.NID, self.SUB), True),),
        )
        bound = bind_scalars(plan, self._mapping())
        expr = bound.sort_items[0][0]
        assert all(not isinstance(n, ScalarSubquery) for n in expr.walk())

    def test_spool_def_rebinds_children(self):
        body = PhysProject(
            child=PhysScan(self.T, (gt(self.NID, self.SUB),), (self.NID,)),
            outputs=(OutputColumn("k0", self.NID),),
        )
        plan = PhysSpoolDef(
            spools=(("S", body),),
            child=PhysSpoolRead("S", (("k0", self.NID),)),
        )
        bound = bind_scalars(plan, self._mapping())
        scan = bound.spools[0][1].child
        assert all(
            not isinstance(n, ScalarSubquery)
            for c in scan.conjuncts
            for n in c.walk()
        )

    def test_index_scan_residual(self):
        from repro.optimizer.physical import PhysIndexScan

        plan = PhysIndexScan(
            table_ref=self.T,
            column=self.NID,
            low=0.0,
            high=None,
            low_inclusive=True,
            high_inclusive=True,
            residual=(gt(self.NID, self.SUB),),
            outputs=(self.NID,),
        )
        bound = bind_scalars(plan, self._mapping())
        assert all(
            not isinstance(n, ScalarSubquery)
            for c in bound.residual
            for n in c.walk()
        )


class TestDegenerateStatistics:
    def test_single_valued_column(self):
        values = np.full(100, 7, dtype=np.int64)
        stats = ColumnStats.collect(values, DataType.INT)
        assert stats.ndv == 1
        assert stats.min_value == stats.max_value == 7.0

    def test_estimator_on_constant_column(self):
        db = Database()
        db.create_table(
            TableSchema("t", [ColumnSchema("a", DataType.INT)]),
            {"a": np.full(50, 7, dtype=np.int64)},
        )
        db.analyze()
        from repro.optimizer.cardinality import CardinalityEstimator

        estimator = CardinalityEstimator(db)
        col = ColumnRef(TableRef("t", 1), "a", DataType.INT)
        assert estimator.selectivity(eq(col, Literal(7))) > 0.9
        assert estimator.selectivity(gt(col, Literal(7))) < 0.1
        assert estimator.selectivity(lt(col, Literal(100))) > 0.9

    def test_empty_table_queries(self):
        db = Database()
        db.create_table(
            TableSchema("t", [ColumnSchema("a", DataType.INT)]),
            {"a": np.empty(0, dtype=np.int64)},
        )
        db.analyze()
        session = Session(db)
        outcome = session.execute("select a from t where a > 3")
        assert outcome.execution.results[0].rows == []
        outcome = session.execute("select count(*) as n, sum(a) as s from t")
        assert outcome.execution.results[0].rows[0][0] == 0
