"""Shared table scans: one physical scan per (table, column-set) group.

The batch-level :class:`~repro.executor.scans.ScanManager` is spool
sharing applied at the scan leaf (Def 5.1 with ``C_W = 0``): every
consumer past the first rides the one physical fetch. These tests pin

* the sharing invariant itself — ``physical_scans == 1`` per group no
  matter how many consumers read it, with a ``scan.shared`` assertion;
* cost accounting — single-consumer totals identical with sharing on or
  off, and serial totals identical to parallel totals;
* the scheduler's scan-prewarm tasks and their dependency edges;
* the ledger/EXPLAIN/Prometheus surfaces derived from the stats.
"""

from __future__ import annotations

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.obs import MetricsRegistry

#: two queries over the same join, different aggregates: with CSE off,
#: customer and orders are each scanned by both queries.
SHARED_SQL = """
    select c_nationkey, sum(l_extendedprice) as le
    from customer, orders, lineitem
    where c_custkey = o_custkey and o_orderkey = l_orderkey
    group by c_nationkey;

    select c_nationkey, sum(l_quantity) as lq
    from customer, orders, lineitem
    where c_custkey = o_custkey and o_orderkey = l_orderkey
    group by c_nationkey
"""


def _no_cse(db, **kwargs) -> Session:
    return Session(db, OptimizerOptions(enable_cse=False), **kwargs)


def _normalize(rows):
    return sorted(
        [
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestSharingInvariant:
    def test_one_physical_scan_per_group(self, small_db):
        outcome = _no_cse(small_db).execute(SHARED_SQL)
        stats = outcome.execution.metrics.scan_stats
        assert stats, "shared-scan stats must be populated"
        for key, group in stats.items():
            assert group.physical_scans == 1, key
        shared = {k: s.shared for k, s in stats.items()}
        assert shared["customer[c_custkey+c_nationkey]"] == 1
        assert shared["orders[o_custkey+o_orderkey]"] == 1
        saved = stats["orders[o_custkey+o_orderkey]"]
        assert saved.rows_saved == saved.rows

    def test_scan_shared_metric_published(self, small_db):
        registry = MetricsRegistry()
        _no_cse(small_db, registry=registry).execute(SHARED_SQL)
        counters = registry.snapshot()["counters"]
        assert counters["executor.scan.shared"] >= 2
        assert counters["executor.scan.physical"] < counters[
            "executor.scan.reads"
        ]
        assert counters["executor.scan.rows_saved"] > 0

    def test_rows_identical_with_and_without_sharing(self, small_db):
        batch = _no_cse(small_db).bind(SHARED_SQL)
        shared = _no_cse(small_db).execute(batch)
        unshared = _no_cse(small_db, shared_scans=False).execute(batch)
        oracle = evaluate_batch(small_db, batch)
        for query in batch.queries:
            want = _normalize(oracle[query.name])
            assert _normalize(
                shared.execution.query(query.name).rows
            ) == want
            assert _normalize(
                unshared.execution.query(query.name).rows
            ) == want

    def test_disabled_sharing_has_no_stats(self, small_db):
        outcome = _no_cse(small_db, shared_scans=False).execute(SHARED_SQL)
        assert outcome.execution.metrics.scan_stats == {}


class TestCostAccounting:
    def test_single_consumer_totals_unchanged(self, small_db):
        """With one consumer per group the split charge (raw fetch +
        predicate mask) must equal the legacy fused scan charge."""
        sql = (
            "select c_nationkey, sum(c_acctbal) as v from customer "
            "where c_nationkey < 10 group by c_nationkey"
        )
        shared = _no_cse(small_db).execute(sql)
        legacy = _no_cse(small_db, shared_scans=False).execute(sql)
        assert shared.execution.metrics.cost_units == pytest.approx(
            legacy.execution.metrics.cost_units, rel=1e-12
        )

    def test_serial_equals_parallel_totals(self, small_db):
        serial = _no_cse(small_db).execute(SHARED_SQL)
        parallel = _no_cse(small_db, workers=4).execute(SHARED_SQL)
        assert serial.execution.metrics.cost_units == pytest.approx(
            parallel.execution.metrics.cost_units, rel=1e-12
        )
        want = {
            k: (s.reads, s.physical_scans, s.rows, s.rows_scanned)
            for k, s in serial.execution.metrics.scan_stats.items()
        }
        got = {
            k: (s.reads, s.physical_scans, s.rows, s.rows_scanned)
            for k, s in parallel.execution.metrics.scan_stats.items()
        }
        assert want == got


class TestSchedule:
    def test_scan_tasks_emitted_first_with_edges(self, small_db):
        from repro.serve.schedule import build_schedule

        result = _no_cse(small_db).optimize(SHARED_SQL)
        schedule = build_schedule(result.bundle, include_scans=True)
        scans = [t for t in schedule.tasks if t.kind == "scan"]
        queries = [t for t in schedule.tasks if t.kind == "query"]
        assert scans, "shared groups must get prewarm tasks"
        # Only groups with >= 2 consumers are worth a task.
        labels = {t.label for t in scans}
        assert "customer[c_custkey+c_nationkey]" in labels
        assert "orders[o_custkey+o_orderkey]" in labels
        assert not any("lineitem" in label for label in labels)
        # Scan tasks come first and carry no dependencies; every query
        # reading a shared group depends on its prewarm task.
        for task in scans:
            assert task.deps == ()
            assert task.index < min(q.index for q in queries)
        scan_indices = {t.index for t in scans}
        for query in queries:
            assert scan_indices <= set(query.deps)

    def test_default_schedule_has_no_scan_tasks(self, small_db):
        from repro.serve.schedule import build_schedule

        result = _no_cse(small_db).optimize(SHARED_SQL)
        schedule = build_schedule(result.bundle)
        assert all(t.kind != "scan" for t in schedule.tasks)


class TestSurfaces:
    def test_ledger_carries_scan_entries(self, small_db):
        outcome = _no_cse(small_db).execute(SHARED_SQL)
        assert outcome.ledger is not None
        entries = {e.key: e for e in outcome.ledger.scans}
        assert "customer[c_custkey+c_nationkey]" in entries
        entry = entries["customer[c_custkey+c_nationkey]"]
        assert entry.reads == 2
        assert entry.physical_scans == 1
        assert entry.shared == 1
        assert entry.columns == ["c_custkey", "c_nationkey"]
        # Def 5.1 at the leaf: savings = shared reads * per-fetch cost.
        assert entry.measured_savings == pytest.approx(entry.cost_units)

    def test_ledger_render_keeps_no_spool_line(self, small_db):
        outcome = _no_cse(small_db).execute(SHARED_SQL)
        rendered = outcome.ledger.render()
        assert "no shared spools" in rendered
        assert "shared scans (Def 5.1 at the leaf" in rendered

    def test_single_read_groups_stay_out_of_ledger(self, small_db):
        outcome = _no_cse(small_db).execute(SHARED_SQL)
        keys = {e.key for e in outcome.ledger.scans}
        assert not any("lineitem" in key for key in keys)

    def test_explain_analyze_reports_totals(self, small_db):
        session = _no_cse(small_db)
        text = session.explain(SHARED_SQL, analyze=True)
        assert "Shared scans:" in text
        assert "shared scans (Def 5.1 at the leaf" in text

    def test_prometheus_ledger_gauges(self, small_db):
        registry = MetricsRegistry()
        _no_cse(small_db, registry=registry).execute(SHARED_SQL)
        gauges = registry.snapshot()["gauges"]
        labeled = [
            name for name in gauges if name.startswith("ledger.scan_shared")
        ]
        assert labeled, f"no ledger.scan_shared gauges in {sorted(gauges)}"

    def test_query_log_payload_matches_ledger(self, small_db, tmp_path):
        from repro.obs import QueryLog

        log = QueryLog(path=str(tmp_path / "q.jsonl"))
        session = _no_cse(small_db, query_log=log)
        outcome = session.execute(SHARED_SQL)
        record = log.records[-1]
        assert record["ledger"] == outcome.ledger.to_payload()
        assert record["ledger"]["scans"]
