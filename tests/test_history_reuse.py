"""§5.4 optimization-history reuse: footprints, cache behaviour, and
instrumentation.

The cross-pass history cache must be invisible in every observable plan
property (covered property-wise in ``tests/property/test_prop_history.py``)
while actually skipping work — these tests pin down the mechanism: the
footprint computation agrees with the descendant-walk oracle, reused
passes carry group results forward, the counters/journal/EXPLAIN surfaces
report it, and the governor's deadline stays live with reuse enabled.
"""

from __future__ import annotations

import time

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.cli import _options, build_parser
from repro.errors import OptimizerTimeoutError
from repro.obs import DecisionJournal, MetricsRegistry
from repro.optimizer.engine import Optimizer
from repro.workloads import scaleup_batch

DB = build_tpch_database(scale_factor=0.002)

#: a workload with several interacting candidates (≥3) and multiple
#: Step-3 passes — the regime §5.4 exists for.
MULTI_SQL = scaleup_batch(8)


def _optimize(reuse: bool, registry=None, journal=None, deadline=None):
    session = Session(DB, OptimizerOptions())
    batch = session.bind(MULTI_SQL)
    optimizer = Optimizer(
        DB,
        OptimizerOptions(reuse_history=reuse),
        registry=registry,
        journal=journal,
        deadline=deadline,
    )
    return optimizer, optimizer.optimize(batch)


class TestFootprints:
    def test_footprints_match_descendant_walk_oracle(self):
        optimizer, result = _optimize(True)
        assert len(result.candidates) >= 3
        assert optimizer._footprints is not None
        ctx = optimizer._build_pass_context(tuple(result.candidates))
        for group in optimizer._memo.groups:
            fast = optimizer._relevant_ids(group, ctx)
            slow = optimizer._relevant_ids_slow(group, ctx)
            assert fast == slow, f"footprint mismatch at g{group.gid}"

    def test_candidate_free_groups_have_empty_footprints(self):
        """A group whose subtree contains no consumer of any candidate
        has an empty footprint — its base-pass plan set serves every
        Step-3 pass (key (gid, frozenset()) never varies)."""
        optimizer, result = _optimize(True)
        consumer_gids = set()
        for gids in optimizer._consumer_gids.values():
            consumer_gids |= gids
        footprints = optimizer._footprints
        for group in optimizer._memo.groups:
            if not footprints[group.gid]:
                assert group.gid not in consumer_gids

    def test_memo_footprint_cache_invalidates(self):
        optimizer, _ = _optimize(True)
        memo = optimizer._memo
        consumers = optimizer._manager.consumer_map()
        first = memo.candidate_footprints(consumers)
        assert memo.candidate_footprints(consumers) is first  # cached
        memo.invalidate_dag_cache()
        second = memo.candidate_footprints(consumers)
        assert second is not first
        assert second == first


class TestReuseBehaviour:
    def test_multi_candidate_passes_reuse_groups(self):
        _, on = _optimize(True)
        assert on.stats.cse_optimizations >= 2
        assert on.stats.history_groups_reused > 0
        assert on.stats.history_hits > 0

    def test_off_mode_never_reuses_across_passes(self):
        _, off = _optimize(False)
        assert off.stats.cse_optimizations >= 2
        assert off.stats.history_groups_reused == 0
        assert off.stats.history_tops_folded == 0

    def test_on_off_bundles_identical(self):
        _, on = _optimize(True)
        _, off = _optimize(False)
        assert on.stats.est_cost_final == off.stats.est_cost_final
        assert on.stats.used_cses == off.stats.used_cses
        assert on.bundle.fingerprint() == off.bundle.fingerprint()
        assert on.bundle.describe() == off.bundle.describe()

    def test_off_mode_does_strictly_more_group_computes(self):
        _, on = _optimize(True)
        _, off = _optimize(False)
        assert off.stats.history_misses > on.stats.history_misses

    def test_deadline_still_enforced_with_reuse_on(self):
        with pytest.raises(OptimizerTimeoutError):
            _optimize(True, deadline=time.monotonic() - 1.0)

    def test_deadline_enforced_mid_step3(self):
        """A deadline that expires during Step 3 must abort the run even
        when most group lookups come from history."""
        session = Session(DB, OptimizerOptions())
        batch = session.bind(MULTI_SQL)
        probe = Optimizer(DB, OptimizerOptions(reuse_history=True))
        normal = probe.optimize(batch).stats.normal_time
        deadline = time.monotonic() + normal * 1.05
        optimizer = Optimizer(
            DB, OptimizerOptions(reuse_history=True), deadline=deadline
        )
        try:
            optimizer.optimize(batch)
        except OptimizerTimeoutError:
            pass  # expired inside Step 2/3, as intended
        # Either way the governor observed the deadline: no hang, and a
        # completed run means the machine was simply fast enough.


class TestInstrumentation:
    def test_history_counters_in_registry(self):
        registry = MetricsRegistry()
        _optimize(True, registry=registry)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["optimizer.history.hits"] > 0
        assert counters["optimizer.history.misses"] > 0
        assert counters["optimizer.history.groups_reused"] > 0
        assert "optimizer.history.pass_seconds" in snapshot["histograms"]
        passes = counters["optimizer.cse_passes"]
        assert snapshot["histograms"]["optimizer.history.pass_seconds"][
            "count"
        ] == passes
        assert "optimizer.step3" in snapshot["timers"]

    def test_journal_history_event_per_pass(self):
        for reuse in (True, False):
            journal = DecisionJournal()
            _, result = _optimize(reuse, journal=journal)
            events = journal.events("history")
            assert len(events) == result.stats.cse_optimizations
            for index, event in enumerate(events, start=1):
                assert event["pass_index"] == index
                assert event["subset"]
                assert event["seconds"] >= 0.0
                if not reuse:
                    assert event["groups_reused"] == 0

    def test_explain_why_reports_reuse(self):
        session = Session(DB, OptimizerOptions())
        text = session.explain(MULTI_SQL, why=True)
        assert "optimization-history reuse (§5.4):" in text
        assert "reuse ratio:" in text
        assert "recomputed" in text


class TestCliFlag:
    def test_no_history_reuse_flag(self):
        parser = build_parser()
        args = parser.parse_args(
            ["explain", "--no-history-reuse", "select r_name from region"]
        )
        assert _options(args).reuse_history is False
        args = parser.parse_args(["explain", "select r_name from region"])
        assert _options(args).reuse_history is True

    def test_flag_composes_with_mode_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["query", "--no-heuristics", "--no-history-reuse", "select 1"]
        )
        options = _options(args)
        assert options.enable_heuristics is False
        assert options.reuse_history is False
