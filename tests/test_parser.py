"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_batch, parse_statement


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse_statement("select a, b from t")
        assert len(stmt.select_items) == 2
        assert stmt.from_items[0].name == "t"
        assert stmt.where is None

    def test_star(self):
        stmt = parse_statement("select * from t")
        assert isinstance(stmt.select_items[0].expr, ast.SqlStar)

    def test_qualified_star(self):
        stmt = parse_statement("select t.* from t")
        star = stmt.select_items[0].expr
        assert isinstance(star, ast.SqlStar) and star.qualifier == "t"

    def test_aliases(self):
        stmt = parse_statement("select a as x, sum(b) total from t u")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "total"
        assert stmt.from_items[0].alias == "u"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            "select a, sum(b) from t where a > 1 group by a "
            "having sum(b) > 10 order by a desc"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending is True

    def test_order_asc_default(self):
        stmt = parse_statement("select a from t order by a")
        assert stmt.order_by[0].descending is False

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_statement("select 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("select a from t garbage ( extra")


class TestExpressions:
    def _where(self, condition):
        return parse_statement(f"select a from t where {condition}").where

    def test_comparison_ops(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            expr = self._where(f"a {op} 1")
            assert isinstance(expr, ast.SqlBinary) and expr.op == op

    def test_and_or_precedence(self):
        expr = self._where("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, ast.SqlBinary) and expr.op == "OR"
        right = expr.right
        assert isinstance(right, ast.SqlBinary) and right.op == "AND"

    def test_parentheses(self):
        expr = self._where("(a = 1 or b = 2) and c = 3")
        assert expr.op == "AND"
        assert expr.left.op == "OR"

    def test_not(self):
        expr = self._where("not a = 1")
        assert isinstance(expr, ast.SqlNot)

    def test_between(self):
        expr = self._where("a between 1 and 5")
        assert isinstance(expr, ast.SqlBetween) and not expr.negated

    def test_not_between(self):
        expr = self._where("a not between 1 and 5")
        assert isinstance(expr, ast.SqlBetween) and expr.negated

    def test_in_list(self):
        expr = self._where("a in (1, 2, 3)")
        assert isinstance(expr, ast.SqlInList) and len(expr.options) == 3

    def test_not_in(self):
        expr = self._where("a not in (1)")
        assert isinstance(expr, ast.SqlInList) and expr.negated

    def test_arithmetic_precedence(self):
        expr = self._where("a = 1 + 2 * 3")
        add = expr.right
        assert add.op == "+"
        assert add.right.op == "*"

    def test_date_literal(self):
        expr = self._where("d < date '1996-07-01'")
        assert isinstance(expr.right, ast.SqlLiteral) and expr.right.is_date

    def test_aggregates(self):
        stmt = parse_statement(
            "select sum(a), count(*), min(b), max(b), avg(a) from t"
        )
        funcs = [i.expr.func for i in stmt.select_items]
        assert funcs == ["SUM", "COUNT", "MIN", "MAX", "AVG"]
        assert stmt.select_items[1].expr.arg is None

    def test_scalar_subquery(self):
        stmt = parse_statement(
            "select a from t having sum(a) > (select sum(b) from u)"
        )
        assert isinstance(stmt.having.right, ast.SqlSubquery)


class TestBatchesAndWith:
    def test_batch(self):
        statements = parse_batch("select a from t; select b from u;")
        assert len(statements) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ParseError):
            parse_batch("  ")

    def test_with_clause(self):
        stmt = parse_statement(
            "with v as (select a, b from t where a > 1) "
            "select v.a from v, u where v.b = u.b"
        )
        assert len(stmt.ctes) == 1
        assert stmt.ctes[0].name == "v"
        assert stmt.from_items[0].name == "v"

    def test_multiple_ctes(self):
        stmt = parse_statement(
            "with v as (select a from t), w as (select b from u) "
            "select v.a from v, w"
        )
        assert [c.name for c in stmt.ctes] == ["v", "w"]


class TestUnaryOperators:
    def test_negative_literal(self):
        stmt = parse_statement("select a from t where a > -5")
        assert stmt.where.right.value == -5

    def test_negative_float(self):
        stmt = parse_statement("select a from t where a > -2.5")
        assert stmt.where.right.value == -2.5

    def test_unary_plus(self):
        stmt = parse_statement("select a from t where a > +7")
        assert stmt.where.right.value == 7

    def test_negated_expression(self):
        stmt = parse_statement("select a from t where a > -(b)")
        expr = stmt.where.right
        assert isinstance(expr, ast.SqlBinary) and expr.op == "-"
        assert expr.left.value == 0
