"""Tests for materialized views and joint maintenance (paper §6.4)."""

import numpy as np
import pytest

from repro import OptimizerOptions
from repro.catalog.tpch import build_tpch_database
from repro.errors import CatalogError
from repro.views.maintenance import MaintenancePlanner
from repro.views.materialized import ViewManager

V1 = (
    "select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20 "
    "group by c_nationkey"
)

V2 = (
    "select c_nationkey, sum(l_extendedprice) as le "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25 "
    "group by c_nationkey"
)

V3 = (
    "select n_regionkey, sum(l_extendedprice) as le "
    "from customer, orders, lineitem, nation "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and c_nationkey = n_nationkey and o_orderdate < '1996-07-01' "
    "group by n_regionkey"
)


@pytest.fixture()
def db():
    return build_tpch_database(scale_factor=0.001)


@pytest.fixture()
def manager(db):
    manager = ViewManager(db)
    manager.create_view("v1", V1)
    manager.create_view("v2", V2)
    manager.create_view("v3", V3)
    manager.refresh_all()
    return manager


def _new_customers(db, count=30, start_key=10_000_000):
    rng = np.random.default_rng(42)
    rows = []
    for i in range(count):
        rows.append(
            (
                start_key + i,
                f"Customer#{start_key + i}",
                int(rng.integers(0, 25)),
                ["BUILDING", "MACHINERY"][i % 2],
                float(np.round(rng.uniform(0, 1000), 2)),
            )
        )
    return rows


def _view_as_dict(view):
    table = view.contents
    rows = list(zip(*[table.column(n).tolist() for n in table.column_names]))
    key_count = sum(
        1 for o in view.query.block.output if not o.expr.contains_aggregate()
    )
    return {tuple(r[:key_count]): r[key_count:] for r in rows}


class TestViewManager:
    def test_create_and_refresh(self, manager):
        view = manager.view("v1")
        assert view.contents is not None
        assert view.contents.row_count > 0
        assert view.column_names == ["c_nationkey", "le", "lq"]

    def test_duplicate_rejected(self, manager):
        with pytest.raises(CatalogError):
            manager.create_view("v1", V1)

    def test_affected_by(self, manager):
        assert len(manager.affected_by("customer")) == 3
        assert len(manager.affected_by("nation")) == 1
        assert manager.affected_by("part") == []

    def test_drop(self, manager):
        manager.drop_view("v3")
        assert len(manager.views()) == 2
        with pytest.raises(CatalogError):
            manager.view("v3")

    def test_refresh_matches_direct_query(self, manager, db):
        from repro import Session

        view = manager.view("v1")
        outcome = Session(db).execute(V1)
        direct = sorted(outcome.execution.results[0].rows, key=repr)
        stored = sorted(
            zip(*[view.contents.column(n).tolist() for n in view.column_names]),
            key=repr,
        )
        assert [tuple(r) for r in direct] == [tuple(r) for r in stored]


class TestMaintenance:
    def test_insert_maintains_all_views(self, manager, db):
        planner = MaintenancePlanner(db, manager)
        rows = _new_customers(db)
        outcome = planner.apply_insert("customer", rows)
        assert sorted(outcome.affected_views) == ["v1", "v2", "v3"]
        assert outcome.delta_rows == len(rows)
        # The delta table is dropped afterwards.
        assert not db.has_table(outcome.table + "_delta")

    def test_maintenance_result_equals_recompute(self, manager, db):
        planner = MaintenancePlanner(db, manager)
        planner.apply_insert("customer", _new_customers(db))
        incremental = {
            name: _view_as_dict(manager.view(name)) for name in ("v1", "v2", "v3")
        }
        # Recompute from scratch over the updated base tables.
        fresh = ViewManager(db)
        for name, sql in (("f1", V1), ("f2", V2), ("f3", V3)):
            fresh.create_view(name, sql)
        fresh.refresh_all()
        recomputed = {
            "v1": _view_as_dict(fresh.view("f1")),
            "v2": _view_as_dict(fresh.view("f2")),
            "v3": _view_as_dict(fresh.view("f3")),
        }
        for name in ("v1", "v2", "v3"):
            got = {
                k: tuple(round(x, 4) for x in v)
                for k, v in incremental[name].items()
            }
            want = {
                k: tuple(round(x, 4) for x in v)
                for k, v in recomputed[name].items()
            }
            assert got == want, name

    def test_maintenance_batch_shares_cse(self, manager, db):
        """The paper's §6.4 claim: maintenance expressions share a covering
        subexpression over the delta table."""
        planner = MaintenancePlanner(db, manager)
        outcome = planner.apply_insert("customer", _new_customers(db, 50))
        stats = outcome.optimization.stats
        assert stats.used_cses, "maintenance batch should share a CSE"
        # The shared expression reads the delta, not the base table:
        spool_id, body = outcome.optimization.bundle.root_spools[0]
        scans = [
            n for n in body.walk()
            if hasattr(n, "table_ref") and n.table_ref.is_delta
        ]
        assert scans

    def test_maintenance_cheaper_with_cse(self, db):
        def build():
            manager = ViewManager(db)
            manager.create_view("v1", V1)
            manager.create_view("v2", V2)
            manager.create_view("v3", V3)
            manager.refresh_all()
            return manager

        rows = _new_customers(db, 40, start_key=20_000_000)
        with_cse = MaintenancePlanner(
            db, build(), OptimizerOptions()
        ).apply_insert("customer", rows)
        # Fresh database state for a fair comparison.
        db2 = build_tpch_database(scale_factor=0.001)
        manager2 = ViewManager(db2)
        manager2.create_view("v1", V1)
        manager2.create_view("v2", V2)
        manager2.create_view("v3", V3)
        manager2.refresh_all()
        without = MaintenancePlanner(
            db2, manager2, OptimizerOptions(enable_cse=False)
        ).apply_insert("customer", rows)
        assert with_cse.measured_cost < without.measured_cost

    def test_delta_signature_isolated(self, manager, db):
        """Delta expressions never share a CSE with base-table expressions:
        their signatures use delta(customer)."""
        planner = MaintenancePlanner(db, manager)
        batch, _ = planner.build_maintenance_batch("customer", "customer")
        for query in batch.queries:
            deltas = [t for t in query.block.tables if t.is_delta]
            assert len(deltas) == 1
            assert deltas[0].signature_name == "delta(customer)"

    def test_no_affected_views_raises(self, db):
        manager = ViewManager(db)
        planner = MaintenancePlanner(db, manager)
        with pytest.raises(CatalogError):
            planner.apply_insert("customer", _new_customers(db, 1))

    def test_spj_view_append(self, db):
        manager = ViewManager(db)
        manager.create_view(
            "flat",
            "select c_custkey, c_name from customer where c_nationkey = 3",
        )
        manager.refresh("flat")
        before = manager.view("flat").contents.row_count
        planner = MaintenancePlanner(db, manager)
        rows = _new_customers(db, 25, start_key=30_000_000)
        matching = sum(1 for r in rows if r[2] == 3)
        planner.apply_insert("customer", rows)
        assert manager.view("flat").contents.row_count == before + matching
