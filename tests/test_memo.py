"""Unit tests for the memo (groups, exploration, signatures, DAG, LCA)."""

import pytest

from repro.cse.signature import TableSignature
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.memo import (
    AggImplExpr,
    AggItem,
    JoinExpr,
    Memo,
    ScanExpr,
)
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch, bind_sql


@pytest.fixture()
def memo_for(tiny_db):
    def build(sql, options=None):
        memo = Memo(CardinalityEstimator(tiny_db), options or OptimizerOptions())
        batch = bind_batch(tiny_db.catalog, sql)
        tops = [memo.build_block(q.block, q.name) for q in batch.queries]
        memo.build_root(tops)
        return memo, tops

    return build


JOIN3 = (
    "select c_nationkey, sum(l_extendedprice) as le "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_nationkey"
)


class TestBlockExploration:
    def test_connected_subsets_only(self, memo_for):
        memo, _ = memo_for(JOIN3)
        join_groups = [
            g for g in memo.groups
            if g.kind == "join"
            and not any(isinstance(i, AggItem) for i in g.items)
        ]
        # customer-lineitem is not connected: subsets are
        # {c}, {o}, {l}, {c,o}, {o,l}, {c,o,l} => 6 pure join groups.
        assert len(join_groups) == 6

    def test_leaf_groups_have_scans(self, memo_for):
        memo, _ = memo_for(JOIN3)
        leaves = [g for g in memo.groups if g.kind == "join" and len(g.items) == 1]
        for leaf in leaves:
            assert any(isinstance(e, ScanExpr) for e in leaf.exprs)

    def test_join_alternatives(self, memo_for):
        memo, _ = memo_for(JOIN3)
        full = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 3
        ][0]
        # Partitions of {c,o,l}: ({c},{o,l}) and ({c,o},{l}) — {o} vs {c,l}
        # is not connected on the {c,l} side.
        assert len([e for e in full.exprs if isinstance(e, JoinExpr)]) == 2

    def test_hash_keys_derived_from_classes(self, memo_for):
        memo, _ = memo_for(JOIN3)
        for group in memo.groups:
            for expr in group.exprs:
                if isinstance(expr, JoinExpr):
                    assert len(expr.hash_keys) >= 1

    def test_final_agg_group(self, memo_for):
        memo, tops = memo_for(JOIN3)
        top = tops[0]
        assert top.kind == "agg"
        assert top.signature == TableSignature(
            True, ("customer", "lineitem", "orders")
        )
        assert len(top.agg_keys) == 1

    def test_preaggregation_explored(self, memo_for):
        memo, tops = memo_for(JOIN3)
        top = tops[0]
        # Direct implementation + at least one combine over a pre-aggregation.
        assert len(top.exprs) >= 2
        preaggs = [
            g for g in memo.groups
            if g.kind == "agg" and g is not top
        ]
        assert preaggs, "expected pre-aggregation groups"
        sigs = {g.signature for g in preaggs}
        assert TableSignature(True, ("lineitem", "orders")) in sigs

    def test_preagg_disabled(self, memo_for):
        memo, tops = memo_for(JOIN3, OptimizerOptions(enable_preagg=False))
        aggs = [g for g in memo.groups if g.kind == "agg"]
        assert len(aggs) == 1  # only the final aggregation

    def test_preagg_compression_gate(self, memo_for):
        # With an impossible compression requirement nothing is explored.
        memo, _ = memo_for(JOIN3, OptimizerOptions(preagg_min_compression=0.0))
        aggs = [g for g in memo.groups if g.kind == "agg"]
        assert len(aggs) == 1

    def test_cartesian_blocks_bridged(self, memo_for):
        # Disconnected join graph: region × part (no join predicate).
        memo, tops = memo_for("select r_name, p_name from region, part")
        top = tops[0]
        assert top.kind == "join" and len(top.items) == 2
        join_exprs = [e for e in top.exprs if isinstance(e, JoinExpr)]
        assert join_exprs and join_exprs[0].hash_keys == ()

    def test_required_outputs_restricted(self, memo_for):
        memo, _ = memo_for(JOIN3)
        cust = [
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 1
            and next(iter(g.tables)).table == "customer"
        ][0]
        names = {c.column for c in cust.required_outputs}
        assert names == {"c_custkey", "c_nationkey"}

    def test_duplicate_block_rejected(self, memo_for, tiny_db):
        memo, _ = memo_for(JOIN3)
        query = bind_sql(tiny_db.catalog, JOIN3, name="Q1")
        with pytest.raises(Exception):
            memo.build_block(query.block, "again")


class TestSignaturesInMemo:
    def test_join_groups_signed(self, memo_for):
        memo, _ = memo_for(JOIN3)
        expected = {
            TableSignature(False, ("customer",)),
            TableSignature(False, ("orders",)),
            TableSignature(False, ("lineitem",)),
            TableSignature(False, ("customer", "orders")),
            TableSignature(False, ("lineitem", "orders")),
            TableSignature(False, ("customer", "lineitem", "orders")),
        }
        join_sigs = {
            g.signature for g in memo.groups if g.kind == "join"
        }
        assert expected <= join_sigs

    def test_mixed_join_groups_unsigned(self, memo_for):
        memo, _ = memo_for(JOIN3)
        for group in memo.groups:
            if group.kind == "join" and any(
                isinstance(i, AggItem) for i in group.items
            ):
                assert group.signature is None

    def test_signature_log_covers_signed_groups(self, memo_for):
        memo, _ = memo_for(JOIN3)
        logged = {g.gid for g in memo.signature_log}
        signed = {g.gid for g in memo.groups if g.signature is not None}
        assert logged == signed


class TestDagAndLca:
    def test_descendants(self, memo_for):
        memo, tops = memo_for(JOIN3)
        top = tops[0]
        descendants = memo.descendants(top)
        join_gids = {g.gid for g in memo.groups if g.kind == "join"}
        assert join_gids <= descendants

    def test_root_covers_everything(self, memo_for):
        memo, _ = memo_for(JOIN3 + ";" + JOIN3.replace("c_nationkey", "c_mktsegment"))
        root_desc = memo.descendants(memo.root)
        assert len(root_desc) == len(memo.groups) - 1

    def test_lca_same_block(self, memo_for):
        memo, tops = memo_for(JOIN3)
        leaves = [
            g.gid for g in memo.groups
            if g.kind == "join" and len(g.items) == 1
        ]
        lca = memo.least_common_ancestor(leaves)
        # The lowest group containing all three leaves is the full join.
        assert lca.kind == "join" and len(lca.items) == 3

    def test_lca_cross_query_is_root(self, memo_for):
        memo, tops = memo_for(JOIN3 + ";" + JOIN3.replace("c_nationkey", "c_mktsegment"))
        lca = memo.least_common_ancestor([tops[0].gid, tops[1].gid])
        assert lca is memo.root

    def test_lca_single_group(self, memo_for):
        memo, tops = memo_for(JOIN3)
        assert memo.least_common_ancestor([tops[0].gid]) is tops[0]


class TestCardinalityWiring:
    def test_join_rows_monotone(self, memo_for):
        memo, _ = memo_for(JOIN3)
        for group in memo.groups:
            if group.kind in ("join", "agg"):
                assert group.est_rows >= 1.0

    def test_filter_reduces_estimate(self, memo_for, tiny_db):
        memo1, _ = memo_for(JOIN3)
        memo2 = Memo(CardinalityEstimator(tiny_db), OptimizerOptions())
        filtered = bind_sql(
            tiny_db.catalog,
            JOIN3.replace(
                "where", "where o_orderdate < '1994-01-01' and"
            ),
            name="F",
        )
        top2 = memo2.build_block(filtered.block, "F")
        top1_join = [g for g in memo1.groups if g.kind == "join" and len(g.items) == 3][0]
        top2_join = [g for g in memo2.groups if g.kind == "join" and len(g.items) == 3][0]
        assert top2_join.est_rows < top1_join.est_rows
