"""Golden-snapshot tests for EXPLAIN and EXPLAIN ANALYZE.

Three TPC-H-style workloads — the Example 1 batch, an adapted TPC-H
query, and the nested query — are rendered with ``costs=True`` and with
``analyze=True`` and compared against checked-in snapshots. Volatile
fields (wall-clock times) are normalized to ``?ms``; everything else
(plan shapes, estimated costs, actual row counts, measured cost units,
optimizer counters) is deterministic at a fixed scale factor and seed,
so any drift is a real behavior change.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_explain_golden.py
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.workloads import ADAPTED_QUERIES, example1_batch, nested_query

GOLDEN_DIR = Path(__file__).parent / "golden"

#: widened-surface batch: an outer join kept as a LeftOuterHashJoin, a
#: reducible outer join folded to an inner join, and a query whose EXISTS /
#: NOT EXISTS predicates become Semi/AntiHashJoin operators.
WIDENED_BATCH = (
    "select c_nationkey, count(*) as v from customer "
    "left join orders on c_custkey = o_custkey group by c_nationkey;"
    "select c_mktsegment, sum(o_totalprice) as v from customer "
    "left join orders on c_custkey = o_custkey "
    "where o_totalprice > 1000 group by c_mktsegment;"
    "select o_orderkey from orders where exists "
    "(select * from lineitem where l_orderkey = o_orderkey) "
    "and not exists (select * from lineitem "
    "where l_orderkey = o_orderkey and l_quantity > 45)"
)

CASES = {
    "example1_batch": example1_batch(),
    "tpch_q5": ADAPTED_QUERIES["Q5"],
    "nested_query": nested_query(),
    "widened_batch": WIDENED_BATCH,
}


def _normalize(text: str) -> str:
    """Blank out wall-clock times; keep every deterministic field."""
    return re.sub(r"\d+\.\d+ms", "?ms", text)


def _check(name: str, rendered: str) -> None:
    got = _normalize(rendered)
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(got + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1"
    )
    want = path.read_text().rstrip("\n")
    assert got == want, (
        f"{name} drifted from its golden snapshot; if intentional, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_explain_costs_golden(small_session, case):
    rendered = small_session.explain(CASES[case], costs=True)
    _check(f"explain_{case}", rendered)


@pytest.mark.parametrize("case", sorted(CASES))
def test_explain_analyze_golden(small_session, case):
    rendered = small_session.explain(CASES[case], analyze=True)
    _check(f"analyze_{case}", rendered)


@pytest.mark.parametrize("case", sorted(CASES))
def test_explain_analyze_parallel_matches_serial_golden(small_session, case):
    """Parallel execution must not change EXPLAIN ANALYZE output: the same
    serial golden snapshot must match, modulo the normalized timing
    fields — plan shapes, actual row counts, measured cost units, spool
    attribution, and optimizer counters are all execution-order facts."""
    rendered = small_session.explain(
        CASES[case], analyze=True, parallel=True, workers=4
    )
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        return  # snapshots are owned by the serial variant above
    _check(f"analyze_{case}", rendered)
