"""Cross-thread trace propagation and the tracer file lifecycle.

The propagation invariant: with ``Session(workers=N)``, every span a
worker thread emits chains up to the batch root span — no orphans — and
the ``spool_flow`` events reconstruct exactly the schedule's
producer→consumer DAG. The lifecycle contract: a path-bound tracer
flushes incrementally, closes idempotently, never duplicates events, and
is settled by ``Session.close`` (or the context manager / interpreter
exit) so the trace file is never truncated.
"""

from __future__ import annotations

import gc
import json

import pytest

from repro import OptimizerOptions, Session, Tracer
from repro.obs import TRACE_HEADER_TYPE, analyze, find_orphans, load_trace
from repro.obs.critical import find_roots
from repro.serve.schedule import build_schedule
from repro.workloads import example1_batch, example1_with_q4


def _events(tracer: Tracer):
    return [json.loads(line) for line in tracer.to_jsonl().splitlines()]


def _schedule_edges(bundle):
    """(producer key, consumer key) edges of the plan-time task DAG."""
    schedule = build_schedule(bundle)
    by_index = {t.index: t for t in schedule.tasks}
    edges = set()
    for task in schedule.tasks:
        consumer = f"{task.kind}:{task.label}"
        for dep in task.deps:
            edges.add((f"spool:{by_index[dep].label}", consumer))
    return edges


class TestCrossThreadPropagation:
    @pytest.fixture()
    def traced_run(self, small_db):
        tracer = Tracer()
        session = Session(small_db, OptimizerOptions(), tracer=tracer,
                          workers=4)
        outcome = session.execute(example1_with_q4())
        return session, tracer, outcome

    def test_single_batch_root_and_zero_orphans(self, traced_run):
        _, tracer, _ = traced_run
        events = _events(tracer)
        roots = find_roots(events)
        batch_roots = [e for e in roots if e["name"] == "batch"]
        assert len(batch_roots) == 1
        # The tentpole invariant: worker-thread task spans re-attach the
        # scheduling thread's context, so nothing floats free.
        assert find_orphans(events, batch_roots[0]["span_id"]) == []

    def test_worker_threads_actually_appear(self, traced_run):
        _, tracer, _ = traced_run
        events = _events(tracer)
        threads = {e.get("thread") for e in events}
        workers = {t for t in threads if t and t.startswith("repro-worker")}
        # 4 workers were configured; at least one task span must have run
        # off the scheduling thread for the propagation test to mean
        # anything.
        assert workers
        task_threads = {
            e.get("thread") for e in events if e["name"] == "task"
        }
        assert task_threads <= workers

    def test_flow_edges_match_schedule_dag(self, traced_run):
        _, tracer, outcome = traced_run
        events = _events(tracer)
        report = analyze(events)
        expected = _schedule_edges(outcome.optimization.bundle)
        assert expected, "workload should share at least one spool"
        assert set(report.flow_edges) == expected

    def test_task_spans_parent_under_execute_batch(self, traced_run):
        _, tracer, _ = traced_run
        events = _events(tracer)
        by_id = {e["span_id"]: e for e in events}
        tasks = [e for e in events if e["name"] == "task"]
        assert tasks
        for task in tasks:
            parent = by_id[task["parent_id"]]
            assert parent["name"] == "execute_batch"

    def test_critical_path_names_spool_producer(self, small_db):
        # Example 1 proper: every query consumes the shared spool, so the
        # longest chain must start at its producer.
        tracer = Tracer()
        session = Session(small_db, OptimizerOptions(), tracer=tracer,
                          workers=4)
        session.execute(example1_batch())
        report = analyze(_events(tracer))
        assert report.critical_path
        assert report.critical_path[0].startswith("spool:")
        assert any(k.startswith("query:") for k in report.critical_path)


class TestTracerLifecycle:
    def test_flush_is_incremental_and_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        with tracer.span("first"):
            pass
        assert tracer.flush() == 1
        assert len(path.read_text().splitlines()) == 2  # header + 1
        with tracer.span("second"):
            pass
        assert tracer.flush() == 1
        assert tracer.flush() == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["type"] == TRACE_HEADER_TYPE

    def test_close_flushes_and_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        with tracer.span("only"):
            pass
        assert tracer.close() == 1
        assert tracer.close() == 0
        assert len(path.read_text().splitlines()) == 2

    def test_write_to_bound_path_prevents_duplicate_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        with tracer.span("a"):
            pass
        tracer.write(str(path))
        # The bound file already holds everything: close must not append.
        assert tracer.close() == 0
        assert len(path.read_text().splitlines()) == 2

    def test_finalizer_flushes_at_garbage_collection(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=str(path))
        with tracer.span("survivor"):
            pass
        del tracer
        gc.collect()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "survivor"

    def test_session_context_manager_settles_trace(self, small_db, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Session(
            small_db, OptimizerOptions(), trace_path=str(path)
        ) as session:
            session.execute(example1_batch())
        trace = load_trace(str(path))
        assert trace.header is not None
        assert trace.header["version"] == 1
        assert "wall_time_unix" in trace.header
        assert "perf_counter_epoch" in trace.header
        assert any(e["name"] == "batch" for e in trace.events)
        # A settled session flushed everything: re-flushing adds nothing.
        assert session.tracer.flush() == 0
