"""Unit tests for aggregate decomposition (repro.optimizer.aggs)."""

import pytest

from repro.errors import OptimizerError
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    TableRef,
)
from repro.optimizer.aggs import (
    COUNT_STAR,
    combine_computes,
    decomposable_over,
    direct_computes,
    partial_computes,
    reaggregate_computes,
)
from repro.types import DataType

L = TableRef("lineitem", 1)
P = TableRef("part", 2)
INSIDE = frozenset([L])


def lcol(name):
    return ColumnRef(L, name, DataType.FLOAT)


def pcol(name):
    return ColumnRef(P, name, DataType.FLOAT)


SUM_IN = AggExpr(AggFunc.SUM, lcol("price"))
SUM_OUT = AggExpr(AggFunc.SUM, pcol("qty"))
MIN_IN = AggExpr(AggFunc.MIN, lcol("price"))
MAX_OUT = AggExpr(AggFunc.MAX, pcol("qty"))


class TestDirect:
    def test_direct_computes(self):
        computes = direct_computes([SUM_IN, COUNT_STAR])
        assert computes[0].out == SUM_IN and computes[0].func is AggFunc.SUM
        assert computes[1].arg is None


class TestDecomposability:
    def test_inside_and_outside_ok(self):
        assert decomposable_over([SUM_IN, SUM_OUT, COUNT_STAR], INSIDE)

    def test_mixed_argument_not_decomposable(self):
        mixed = AggExpr(
            AggFunc.SUM, Arithmetic(ArithmeticOp.MUL, lcol("price"), pcol("qty"))
        )
        assert not decomposable_over([mixed], INSIDE)


class TestPartials:
    def test_inside_sum(self):
        partials = partial_computes([SUM_IN], INSIDE)
        assert len(partials) == 1
        assert partials[0].out == SUM_IN
        assert partials[0].func is AggFunc.SUM

    def test_outside_sum_needs_count(self):
        partials = partial_computes([SUM_OUT], INSIDE)
        assert len(partials) == 1
        assert partials[0].out == COUNT_STAR
        assert partials[0].func is AggFunc.COUNT

    def test_count_star_needs_count(self):
        partials = partial_computes([COUNT_STAR], INSIDE)
        assert partials == partial_computes([SUM_OUT], INSIDE)

    def test_outside_min_needs_nothing(self):
        assert partial_computes([MAX_OUT], INSIDE) == ()

    def test_mixed_set(self):
        partials = partial_computes([SUM_IN, SUM_OUT, MIN_IN], INSIDE)
        outs = {p.out for p in partials}
        assert outs == {SUM_IN, MIN_IN, COUNT_STAR}

    def test_dedup(self):
        partials = partial_computes([SUM_IN, SUM_IN], INSIDE)
        assert len(partials) == 1


class TestCombine:
    def test_inside_sum_combines_with_sum(self):
        combine = combine_computes([SUM_IN], INSIDE)[0]
        assert combine.out == SUM_IN
        assert combine.func is AggFunc.SUM
        assert combine.arg == SUM_IN  # the partial's frame key

    def test_inside_min(self):
        combine = combine_computes([MIN_IN], INSIDE)[0]
        assert combine.func is AggFunc.MIN and combine.arg == MIN_IN

    def test_outside_sum_scales_by_count(self):
        combine = combine_computes([SUM_OUT], INSIDE)[0]
        assert combine.func is AggFunc.SUM
        assert combine.arg == Arithmetic(
            ArithmeticOp.MUL, pcol("qty"), COUNT_STAR
        )

    def test_outside_max_ignores_duplicates(self):
        combine = combine_computes([MAX_OUT], INSIDE)[0]
        assert combine.func is AggFunc.MAX and combine.arg == pcol("qty")

    def test_count_star_combines_with_sum_of_counts(self):
        combine = combine_computes([COUNT_STAR], INSIDE)[0]
        assert combine.out == COUNT_STAR
        assert combine.func is AggFunc.SUM and combine.arg == COUNT_STAR


class TestReaggregate:
    def test_sum_and_count(self):
        computes = reaggregate_computes([SUM_IN, COUNT_STAR])
        assert all(c.func is AggFunc.SUM for c in computes)
        assert computes[0].arg == SUM_IN

    def test_min_max(self):
        computes = reaggregate_computes([MIN_IN, MAX_OUT])
        assert computes[0].func is AggFunc.MIN
        assert computes[1].func is AggFunc.MAX

    def test_avg_rejected(self):
        with pytest.raises(OptimizerError):
            reaggregate_computes([AggExpr(AggFunc.AVG, lcol("price"))])


class TestNumericEquivalence:
    """Decomposed evaluation must equal one-shot evaluation on real data."""

    def test_sum_outside_scaling(self):
        # Join rows: part side value y, lineitem groups with counts.
        # final SUM(y) over join == SUM(y * cnt) over pre-aggregated rows.
        rows = [  # (group, y)
            ("g1", 10.0), ("g1", 10.0), ("g1", 10.0),  # cnt = 3
            ("g2", 7.0),  # cnt = 1
        ]
        final = sum(y for _, y in rows)
        pre = {"g1": 3, "g2": 1}
        combined = 10.0 * pre["g1"] + 7.0 * pre["g2"]
        assert final == combined
