"""Tests for the oracle evaluator itself (against hand-computed answers on a
miniature database — the oracle must be trustworthy before it can judge the
engine)."""

import numpy as np
import pytest

from repro.catalog.schema import ColumnSchema, TableSchema
from repro.executor.reference import evaluate_batch, evaluate_query
from repro.sql.binder import bind_batch, bind_sql
from repro.storage.database import Database
from repro.types import DataType


@pytest.fixture()
def mini_db():
    db = Database()
    db.create_table(
        TableSchema(
            "dept",
            [
                ColumnSchema("d_id", DataType.INT),
                ColumnSchema("d_name", DataType.STRING),
            ],
        ),
        {
            "d_id": np.array([1, 2, 3]),
            "d_name": np.array(["eng", "ops", "hr"], dtype=object),
        },
    )
    db.create_table(
        TableSchema(
            "emp",
            [
                ColumnSchema("e_id", DataType.INT),
                ColumnSchema("e_dept", DataType.INT),
                ColumnSchema("e_salary", DataType.FLOAT),
            ],
        ),
        {
            "e_id": np.array([10, 11, 12, 13, 14]),
            "e_dept": np.array([1, 1, 2, 2, 2]),
            "e_salary": np.array([100.0, 200.0, 50.0, 60.0, 70.0]),
        },
    )
    db.analyze()
    return db


class TestOracle:
    def test_join_and_filter(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select d_name, e_salary from dept, emp "
            "where d_id = e_dept and e_salary > 60",
        )
        rows = evaluate_query(mini_db, query)
        assert sorted(rows) == [("eng", 100.0), ("eng", 200.0), ("ops", 70.0)]

    def test_aggregation(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select d_name, sum(e_salary) as total, count(*) as n "
            "from dept, emp where d_id = e_dept group by d_name",
        )
        rows = dict((r[0], (r[1], r[2])) for r in evaluate_query(mini_db, query))
        assert rows == {"eng": (300.0, 2), "ops": (180.0, 3)}

    def test_min_max_avg(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select min(e_salary) as lo, max(e_salary) as hi, "
            "avg(e_salary) as mean from emp",
        )
        rows = evaluate_query(mini_db, query)
        assert rows == [(50.0, 200.0, 96.0)]

    def test_empty_group_result(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select d_name, count(*) as n from dept, emp "
            "where d_id = e_dept and e_salary > 1000 group by d_name",
        )
        assert evaluate_query(mini_db, query) == []

    def test_scalar_aggregate_over_empty(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select count(*) as n from emp where e_salary > 1000",
        )
        assert evaluate_query(mini_db, query) == [(0,)]

    def test_having(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select e_dept, sum(e_salary) as t from emp group by e_dept "
            "having sum(e_salary) > 200",
        )
        assert evaluate_query(mini_db, query) == [(1, 300.0)]

    def test_scalar_subquery(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select e_dept, sum(e_salary) as t from emp group by e_dept "
            "having sum(e_salary) > (select sum(e_salary) / 2 from emp)",
        )
        assert evaluate_query(mini_db, query) == [(1, 300.0)]

    def test_order_by(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select e_id, e_salary as s from emp order by s desc",
        )
        rows = evaluate_query(mini_db, query)
        assert [r[1] for r in rows] == [200.0, 100.0, 70.0, 60.0, 50.0]

    def test_cartesian_product(self, mini_db):
        query = bind_sql(
            mini_db.catalog, "select d_id, e_id from dept, emp"
        )
        assert len(evaluate_query(mini_db, query)) == 15

    def test_batch(self, mini_db):
        batch = bind_batch(
            mini_db.catalog,
            "select d_name from dept; select count(*) as n from emp",
        )
        results = evaluate_batch(mini_db, batch)
        assert len(results["Q1"]) == 3
        assert results["Q2"] == [(5,)]

    def test_expression_output(self, mini_db):
        query = bind_sql(
            mini_db.catalog,
            "select sum(e_salary) / 5 as per_head from emp",
        )
        assert evaluate_query(mini_db, query) == [(96.0,)]


class TestOracleAgreesWithEngine:
    """On the miniature database the full engine must agree with the oracle
    (complements the TPC-H comparisons in test_executor)."""

    QUERIES = [
        "select d_name, e_salary from dept, emp where d_id = e_dept",
        "select e_dept, sum(e_salary) as t, count(*) as n from emp group by e_dept",
        "select d_name, max(e_salary) as hi from dept, emp "
        "where d_id = e_dept and e_salary < 150 group by d_name",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_agreement(self, mini_db, sql):
        from repro import Session

        session = Session(mini_db)
        batch = session.bind(sql)
        outcome = session.execute(batch)
        got = sorted(outcome.execution.results[0].rows, key=repr)
        want = sorted(evaluate_query(mini_db, batch.queries[0]), key=repr)
        assert got == want
