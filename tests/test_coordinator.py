"""Cross-session coordinator: micro-batching windows, shared spools,
per-query signatures, budget accounting, and plan-cache invalidation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.errors import ExecutionError
from repro.executor.runtime import SharedSpoolPool
from repro.obs import DecisionJournal, MetricsRegistry
from repro.serve import (
    QueryBudget,
    SharedBatchCoordinator,
    batch_signatures,
    query_fingerprint,
    query_table_signature,
)
from repro.storage.worktable import WorkTable


#: a read-only database shared by tests that never mutate it.
DB = build_tpch_database(scale_factor=0.001)

#: overlapping two-table aggregations — the canonical sharing pair.
Q_PRIORITY = (
    "select o_orderpriority, sum(l_extendedprice) as s "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderpriority"
)
Q_STATUS = (
    "select o_orderstatus, sum(l_quantity) as q "
    "from orders, lineitem where o_orderkey = l_orderkey "
    "group by o_orderstatus"
)


def _norm(rows):
    return sorted(
        [
            tuple(round(v, 4) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


def _run_concurrent(jobs, timeout=60.0):
    """Run (name, fn) jobs on threads; return {name: result or exception}."""
    results = {}

    def wrap(name, fn):
        try:
            results[name] = fn()
        except BaseException as error:  # noqa: BLE001 — surfaced below
            results[name] = error

    threads = [
        threading.Thread(target=wrap, args=(name, fn), daemon=True)
        for name, fn in jobs
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    assert not any(t.is_alive() for t in threads), "coordinator deadlocked"
    for name, value in results.items():
        if isinstance(value, BaseException):
            raise AssertionError(f"job {name} raised") from value
    return results


# ---------------------------------------------------------------------------
# Per-query signatures (Step-1 analogue at window granularity)
# ---------------------------------------------------------------------------


class TestQuerySignatures:
    def test_signature_is_sorted_table_union(self):
        batch = Session(DB).bind(Q_PRIORITY)
        assert query_table_signature(batch.queries[0]) == "lineitem+orders"

    def test_signature_ignores_from_order(self):
        session = Session(DB)
        a = session.bind(
            "select o_orderkey from orders, lineitem "
            "where o_orderkey = l_orderkey"
        )
        b = session.bind(
            "select o_orderkey from lineitem, orders "
            "where o_orderkey = l_orderkey"
        )
        assert query_table_signature(a.queries[0]) == query_table_signature(
            b.queries[0]
        )
        assert query_fingerprint(a.queries[0]) == query_fingerprint(
            b.queries[0]
        )

    def test_batch_signatures_collects_distinct(self):
        session = Session(DB)
        batch = session.bind(
            Q_PRIORITY + "; select n_name from nation where n_regionkey = 1"
        )
        assert batch_signatures(batch) == frozenset(
            {"lineitem+orders", "nation"}
        )


# ---------------------------------------------------------------------------
# SharedSpoolPool refcounting
# ---------------------------------------------------------------------------


def _worktable(rows=3):
    from repro.types import DataType

    return WorkTable(
        name="t",
        column_names=["x"],
        column_types=[DataType.INT],
        columns={"x": np.arange(rows, dtype=np.int64)},
    )


class TestSharedSpoolPool:
    def test_last_detach_frees(self):
        pool = SharedSpoolPool()
        table = _worktable()
        pool.publish("E1", table, consumers=2)
        assert pool.attach("E1") is table
        assert pool.attach("E1") is table
        assert not pool.detach("E1")
        assert pool.live == 1
        assert pool.detach("E1")
        assert pool.live == 0
        assert pool.freed == 1

    def test_zero_consumer_spool_never_held(self):
        pool = SharedSpoolPool()
        pool.publish("E1", _worktable(), consumers=0)
        assert pool.live == 0
        assert pool.published == 1
        assert pool.freed == 1

    def test_attach_after_free_errors(self):
        pool = SharedSpoolPool()
        pool.publish("E1", _worktable(), consumers=1)
        pool.attach("E1")
        assert pool.detach("E1")
        with pytest.raises(ExecutionError):
            pool.attach("E1")

    def test_extra_detach_is_harmless(self):
        pool = SharedSpoolPool()
        pool.publish("E1", _worktable(), consumers=1)
        assert pool.detach("E1")
        assert not pool.detach("E1")
        assert pool.freed == 1


# ---------------------------------------------------------------------------
# Window protocol end-to-end
# ---------------------------------------------------------------------------


def _sessions(coordinator, registry, count=2, **kwargs):
    return [
        Session(DB, coordinator=coordinator, registry=registry, **kwargs)
        for _ in range(count)
    ]


def _counters(registry):
    return registry.snapshot()["counters"]


class TestCoordinatorMerging:
    def test_two_sessions_merge_and_rows_match_isolated(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        s1, s2 = _sessions(coordinator, registry)
        results = _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )
        counters = _counters(registry)
        assert counters.get("coordinator.merged_batches") == 1
        assert counters.get("coordinator.merged_consumers") == 2
        assert counters.get("coordinator.spools_published", 0) >= 1
        # Every published spool was freed by its last consumer detach.
        assert counters.get("coordinator.spools_freed") == counters.get(
            "coordinator.spools_published"
        )
        iso_a = Session(DB).execute(Q_PRIORITY)
        iso_b = Session(DB).execute(Q_STATUS)
        a, b = results["a"], results["b"]
        # Results are renamed back to each consumer's own query names.
        assert [r.name for r in a.execution.results] == ["Q1"]
        assert [r.name for r in b.execution.results] == ["Q1"]
        assert _norm(a.execution.results[0].rows) == _norm(
            iso_a.execution.results[0].rows
        )
        assert _norm(b.execution.results[0].rows) == _norm(
            iso_b.execution.results[0].rows
        )
        assert not a.degraded and not b.degraded
        # The merged optimization actually shared work across sessions.
        assert a.optimization.stats.used_cses

    def test_full_group_closes_before_window_expires(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=30000.0, max_group=2, registry=registry
        )
        s1, s2 = _sessions(coordinator, registry)
        start = time.perf_counter()
        _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )
        # max_group reached -> the leader woke long before the 30s window.
        assert time.perf_counter() - start < 15.0
        assert _counters(registry).get("coordinator.merged_batches") == 1

    def test_solo_window_runs_ordinary_path(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=50.0, registry=registry
        )
        (session,) = _sessions(coordinator, registry, count=1)
        outcome = session.execute(Q_PRIORITY)
        counters = _counters(registry)
        assert counters.get("coordinator.solo_windows") == 1
        assert counters.get("coordinator.merged_batches") is None
        iso = Session(DB).execute(Q_PRIORITY)
        assert _norm(outcome.execution.results[0].rows) == _norm(
            iso.execution.results[0].rows
        )

    def test_disjoint_signatures_do_not_merge(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=400.0, max_group=2, registry=registry
        )
        s1, s2 = _sessions(coordinator, registry)
        barrier = threading.Barrier(2)

        def run(session, sql):
            barrier.wait()
            return session.execute(sql)

        _run_concurrent(
            [
                ("a", lambda: run(s1, "select c_nationkey from customer")),
                ("b", lambda: run(s2, "select p_size from part")),
            ]
        )
        counters = _counters(registry)
        assert counters.get("coordinator.merged_batches") is None
        assert counters.get("coordinator.solo_windows") == 2

    def test_window_zero_disables(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(window_ms=0.0, registry=registry)
        (session,) = _sessions(coordinator, registry, count=1)
        session.execute(Q_PRIORITY)
        assert "coordinator.windows" not in _counters(registry)

    def test_session_private_coordinator_from_share_window_ms(self):
        session = Session(DB, share_window_ms=25.0)
        assert session.coordinator is not None
        assert session.coordinator.enabled
        outcome = session.execute(Q_PRIORITY)
        iso = Session(DB).execute(Q_PRIORITY)
        assert _norm(outcome.execution.results[0].rows) == _norm(
            iso.execution.results[0].rows
        )

    def test_bound_batch_target_bypasses(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=50.0, registry=registry
        )
        (session,) = _sessions(coordinator, registry, count=1)
        session.execute(session.bind(Q_PRIORITY))
        counters = _counters(registry)
        assert counters.get("coordinator.bypass") == 1
        assert counters.get("coordinator.windows") is None

    def test_deadline_budget_bypasses(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=50.0, registry=registry
        )
        (session,) = _sessions(coordinator, registry, count=1)
        outcome = session.execute(
            Q_PRIORITY, budget=QueryBudget(deadline_ms=60000.0)
        )
        assert _counters(registry).get("coordinator.bypass") == 1
        assert not outcome.degraded

    def test_config_mismatch_never_merges(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=400.0, max_group=2, registry=registry
        )
        s_paper = Session(DB, coordinator=coordinator, registry=registry)
        s_greedy = Session(
            DB,
            OptimizerOptions(cse_strategy="greedy"),
            coordinator=coordinator,
            registry=registry,
        )
        _run_concurrent(
            [
                ("a", lambda: s_paper.execute(Q_PRIORITY)),
                ("b", lambda: s_greedy.execute(Q_STATUS)),
            ]
        )
        counters = _counters(registry)
        assert counters.get("coordinator.merged_batches") is None
        assert counters.get("coordinator.solo_windows") == 2


class TestCoordinatorBudgets:
    def test_spool_budget_charged_per_consumer_falls_back(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        s1, s2 = _sessions(coordinator, registry)
        tight = QueryBudget(max_spool_rows=1)
        results = _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY, budget=tight)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )
        counters = _counters(registry)
        assert counters.get("coordinator.merged_batches") == 1
        # The budgeted consumer's attach charge busted its own budget; it
        # fell back to its ordinary path, where its lone query plans no
        # shared spools and runs clean under the same budget.
        assert counters.get("coordinator.fallback.consumer") == 1
        assert not results["a"].degraded
        assert not results["a"].optimization.bundle.root_spools
        # The unbudgeted consumer was untouched by its neighbour's budget.
        assert not results["b"].degraded
        iso_a = Session(DB).execute(Q_PRIORITY)
        assert _norm(results["a"].execution.results[0].rows) == _norm(
            iso_a.execution.results[0].rows
        )

    def test_generous_budget_stays_shared(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        s1, s2 = _sessions(coordinator, registry)
        roomy = QueryBudget(max_spool_rows=1_000_000)
        results = _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY, budget=roomy)),
                ("b", lambda: s2.execute(Q_STATUS, budget=roomy)),
            ]
        )
        counters = _counters(registry)
        assert counters.get("coordinator.merged_batches") == 1
        assert counters.get("coordinator.fallbacks") is None
        assert not results["a"].degraded and not results["b"].degraded


class TestMergedPlanCache:
    def _merge_round(self, coordinator, registry, sessions=None):
        s1, s2 = sessions or _sessions(coordinator, registry)
        return _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )

    def test_second_window_hits_merged_plan_cache(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        cold = self._merge_round(coordinator, registry)
        warm = self._merge_round(coordinator, registry)
        assert not cold["a"].plan_cache_hit
        assert warm["a"].plan_cache_hit and warm["b"].plan_cache_hit
        assert _norm(warm["a"].execution.results[0].rows) == _norm(
            cold["a"].execution.results[0].rows
        )

    def test_mid_window_mutation_evicts_merged_plan(self):
        database = build_tpch_database(scale_factor=0.001)
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        s1 = Session(database, coordinator=coordinator, registry=registry)
        s2 = Session(database, coordinator=coordinator, registry=registry)

        def round_of(sessions):
            a, b = sessions
            return _run_concurrent(
                [
                    ("a", lambda: a.execute(Q_PRIORITY)),
                    ("b", lambda: b.execute(Q_STATUS)),
                ]
            )

        round_of((s1, s2))
        warm = round_of((s1, s2))
        assert warm["a"].plan_cache_hit

        # Third window: the leader opens, and while it is still waiting a
        # mutation lands on a table the merged plan reads. The merged
        # entry must be evicted (listener) *and* the close-time key must
        # see the bumped catalog version — either alone would do; both
        # guarantee the stale plan cannot be served.
        table = database.table("orders")
        names = [c.name for c in table.schema.columns]
        row = tuple(
            v.item() if hasattr(v, "item") else v
            for v in (table.column(n)[0] for n in names)
        )
        outcomes = {}

        def leader():
            outcomes["a"] = s1.execute(Q_PRIORITY)

        def follower():
            outcomes["b"] = s2.execute(Q_STATUS)

        t1 = threading.Thread(target=leader, daemon=True)
        t1.start()
        time.sleep(0.5)  # leader is parked inside its window
        database.insert("orders", [row])
        t2 = threading.Thread(target=follower, daemon=True)
        t2.start()
        t1.join(60.0)
        t2.join(60.0)
        assert not t1.is_alive() and not t2.is_alive()
        assert not outcomes["a"].plan_cache_hit
        assert not outcomes["b"].plan_cache_hit
        counters = _counters(registry)
        assert counters.get("plan_cache.invalidation", 0) >= 1
        iso = Session(database).execute(Q_PRIORITY)
        assert _norm(outcomes["a"].execution.results[0].rows) == _norm(
            iso.execution.results[0].rows
        )


class TestCoordinatorStrategy:
    def test_greedy_strategy_optimizes_merged_batch(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        options = OptimizerOptions(cse_strategy="greedy")
        s1 = Session(
            DB, options, coordinator=coordinator, registry=registry
        )
        s2 = Session(
            DB, options, coordinator=coordinator, registry=registry
        )
        results = _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )
        assert _counters(registry).get("coordinator.merged_batches") == 1
        assert results["a"].optimization.stats.strategy == "greedy"
        iso = Session(DB, options).execute(Q_PRIORITY)
        assert _norm(results["a"].execution.results[0].rows) == _norm(
            iso.execution.results[0].rows
        )

    def test_journal_names_shared_merge_and_strategy(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=5000.0, max_group=2, registry=registry
        )
        journal = DecisionJournal()
        s1 = Session(
            DB, coordinator=coordinator, registry=registry, journal=journal
        )
        s2 = Session(DB, coordinator=coordinator, registry=registry)
        _run_concurrent(
            [
                ("a", lambda: s1.execute(Q_PRIORITY)),
                ("b", lambda: s2.execute(Q_STATUS)),
            ]
        )
        merges = journal.events("shared_merge")
        # The journal entry exists only when this session led the window;
        # either way the window must have merged both consumers.
        assert _counters(registry).get("coordinator.merged_consumers") == 2
        if merges:
            assert merges[0]["consumers"] == 2
            assert merges[0]["strategy"] in ("paper", "greedy")


class TestCoordinatorStress:
    SQL_POOL = [
        Q_PRIORITY,
        Q_STATUS,
        (
            "select o_orderpriority, count(*) as c "
            "from orders, lineitem where o_orderkey = l_orderkey "
            "group by o_orderpriority"
        ),
        (
            "select c_nationkey, sum(o_totalprice) as t "
            "from customer, orders where c_custkey = o_custkey "
            "group by c_nationkey"
        ),
    ]

    def test_eight_threads_three_rounds_match_isolated(self):
        registry = MetricsRegistry()
        coordinator = SharedBatchCoordinator(
            window_ms=250.0, max_group=8, registry=registry
        )
        sessions = _sessions(coordinator, registry, count=8)
        oracle = {
            sql: _norm(
                Session(DB).execute(sql).execution.results[0].rows
            )
            for sql in self.SQL_POOL
        }
        for round_no in range(3):
            jobs = []
            for i, session in enumerate(sessions):
                sql = self.SQL_POOL[(i + round_no) % len(self.SQL_POOL)]
                jobs.append(
                    (f"r{round_no}t{i}", lambda s=session, q=sql: (q, s.execute(q)))
                )
            results = _run_concurrent(jobs, timeout=120.0)
            for sql, outcome in results.values():
                assert (
                    _norm(outcome.execution.results[0].rows) == oracle[sql]
                )
        counters = _counters(registry)
        # 24 executes across 3 rounds: sharing must actually have happened.
        assert counters.get("coordinator.merged_consumers", 0) >= 4
        assert counters.get("coordinator.spools_freed", 0) == counters.get(
            "coordinator.spools_published", 0
        )
