"""Unit tests for candidate-subset enumeration (paper §5.3, Props 5.4-5.6)."""

import pytest

from repro.cse.candidates import CandidateCse
from repro.cse.construct import CseDefinition
from repro.cse.enumeration import SubsetEnumerator, competing
from repro.cse.signature import TableSignature
from repro.logical.blocks import QueryBlock
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.memo import Group, Memo, RootExpr
from repro.optimizer.options import OptimizerOptions


class _FakeMemo:
    """A miniature group DAG for LCA/competing tests.

    Structure: root(0) -> a(1), b(2); a -> a1(3), a2(4); b -> b1(5).
    """

    def __init__(self):
        self.groups = []
        for gid in range(6):
            group = Group(
                gid=gid, kind="join", block=None, part_id="p",
                items=frozenset(), tables=frozenset(),
            )
            self.groups.append(group)
        self._desc = {
            0: {1, 2, 3, 4, 5},
            1: {3, 4},
            2: {5},
            3: set(),
            4: set(),
            5: set(),
        }

    def descendants(self, group):
        return self._desc[group.gid]


def _candidate(cse_id, lca_gid):
    definition = CseDefinition(
        cse_id=cse_id,
        signature=TableSignature(False, ("t",)),
        block=None,  # type: ignore[arg-type]
        outputs=(),
        consumer_groups=[],
        joint_equalities=(),
        joint_classes=None,  # type: ignore[arg-type]
        covering_conjuncts=(),
    )
    candidate = CandidateCse(definition=definition)
    candidate.lca_gid = lca_gid
    return candidate


class TestCompeting:
    def test_same_lca_competes(self):
        memo = _FakeMemo()
        assert competing(_candidate("E1", 1), _candidate("E2", 1), memo)

    def test_ancestor_descendant_competes(self):
        memo = _FakeMemo()
        assert competing(_candidate("E1", 0), _candidate("E2", 1), memo)
        assert competing(_candidate("E1", 3), _candidate("E2", 1), memo)

    def test_siblings_independent(self):
        memo = _FakeMemo()
        assert not competing(_candidate("E1", 1), _candidate("E2", 2), memo)
        assert not competing(_candidate("E1", 3), _candidate("E2", 4), memo)


class TestEnumeration:
    def test_descending_size_order(self):
        memo = _FakeMemo()
        candidates = [_candidate("E1", 1), _candidate("E2", 1)]
        enum = SubsetEnumerator(candidates, memo)
        assert enum.next_subset() == frozenset({"E1", "E2"})
        enum.report(frozenset({"E1", "E2"}), frozenset({"E1", "E2"}))
        remaining = []
        while (s := enum.next_subset()) is not None:
            remaining.append(s)
        assert remaining == [frozenset({"E1"}), frozenset({"E2"})]

    def test_prop54_independent_set_stops_immediately(self):
        """Prop 5.4: after optimizing a fully independent set, every subset
        is redundant."""
        memo = _FakeMemo()
        candidates = [_candidate("E1", 1), _candidate("E2", 2)]
        enum = SubsetEnumerator(candidates, memo)
        full = enum.next_subset()
        enum.report(full, full)
        assert enum.next_subset() is None

    def test_interval_rule(self):
        """After optimizing S with plan using U, sets between U and S are
        skipped."""
        memo = _FakeMemo()
        candidates = [
            _candidate("E1", 1), _candidate("E2", 1), _candidate("E3", 1)
        ]
        enum = SubsetEnumerator(candidates, memo)
        full = enum.next_subset()
        enum.report(full, frozenset({"E1"}))
        seen = []
        while (s := enum.next_subset()) is not None:
            enum.report(s, frozenset())
            seen.append(s)
        # {E1,E2}, {E1,E3}, {E1} are inside the interval [ {E1}, full ].
        assert frozenset({"E1", "E2"}) not in seen
        assert frozenset({"E1", "E3"}) not in seen
        assert frozenset({"E1"}) not in seen
        assert frozenset({"E2", "E3"}) in seen

    def test_example1_pass_count(self):
        """Three mutually competing candidates where the full pass uses one:
        remaining passes are the subsets avoiding that one (paper Table 1's
        bracketed counts follow this arithmetic)."""
        memo = _FakeMemo()
        candidates = [
            _candidate(f"E{i}", 1) for i in range(1, 6)
        ]
        enum = SubsetEnumerator(candidates, memo, max_optimizations=128)
        full = enum.next_subset()
        enum.report(full, frozenset({"E4"}))
        count = 1
        while (s := enum.next_subset()) is not None:
            assert "E4" not in s or not s <= full  # interval honoured
            enum.report(s, frozenset())
            count += 1
            if count > 50:
                break
        # 1 (full) + subsets of the other four = 1 + 15 = 16 as an upper
        # bound; the empty-use reports prune further.
        assert count <= 16

    def test_max_optimizations_cap(self):
        memo = _FakeMemo()
        candidates = [_candidate(f"E{i}", 1) for i in range(1, 5)]
        enum = SubsetEnumerator(candidates, memo, max_optimizations=3)
        seen = 0
        while enum.next_subset() is not None:
            seen += 1
        assert seen == 3

    def test_large_candidate_sets_curated(self):
        memo = _FakeMemo()
        candidates = [_candidate(f"E{i}", 1) for i in range(1, 20)]
        enum = SubsetEnumerator(candidates, memo, max_optimizations=500)
        first = enum.next_subset()
        assert len(first) == 19
        enum.report(first, frozenset({"E1"}))
        # Generation stays cheap and bounded.
        count = 1
        while enum.next_subset() is not None:
            count += 1
        assert count <= 39 + 1
