"""Unit tests for view matching / consumer substitution (paper §5.1)."""

import itertools

import pytest

from repro.cse.construct import construct_cse
from repro.cse.matching import build_consumer_specs, try_match_consumer
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.memo import Memo
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch


def build_memo(db, sql):
    memo = Memo(CardinalityEstimator(db), OptimizerOptions())
    batch = bind_batch(db.catalog, sql)
    tops = [memo.build_block(q.block, q.name) for q in batch.queries]
    memo.build_root(tops)
    return memo, tops


BATCH = (
    "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20 "
    "group by c_nationkey, c_mktsegment;"
    "select c_nationkey, sum(l_extendedprice) as le "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25 "
    "group by c_nationkey"
)


@pytest.fixture()
def setting(tiny_db):
    memo, tops = build_memo(tiny_db, BATCH)
    counter = itertools.count(9000)
    definition = construct_cse(
        "E1", tops, memo.block_infos, lambda: next(counter),
        CardinalityEstimator(tiny_db),
    )
    return memo, tops, definition


class TestConstructedConsumers:
    def test_all_consumers_match(self, setting):
        memo, tops, definition = setting
        specs = build_consumer_specs(definition, memo.block_infos)
        assert len(specs) == 2

    def test_residual_is_consumer_specific(self, setting):
        memo, tops, definition = setting
        specs = build_consumer_specs(definition, memo.block_infos)
        q1 = next(s for s in specs if s.group is tops[0])
        # Q1's residual: its own nationkey range (the date conjunct was
        # factored into the covering predicate).
        texts = [repr(c) for c in q1.residual]
        assert any("c_nationkey" in t for t in texts)
        assert not any("o_orderdate" in t for t in texts)
        # Residual stays in consumer column space.
        for conjunct in q1.residual:
            for column in conjunct.columns():
                assert column.table_ref in tops[0].tables

    def test_reaggregation_for_coarser_consumer(self, setting):
        memo, tops, definition = setting
        specs = build_consumer_specs(definition, memo.block_infos)
        q2 = next(s for s in specs if s.group is tops[1])
        # The CSE groups by {nationkey, mktsegment}; Q2 groups by nationkey
        # only — it must re-aggregate.
        assert q2.needs_reagg
        assert [k.column for k in q2.reagg_keys] == ["c_nationkey"]
        assert q2.reagg_computes

    def test_exact_keys_no_reagg(self, tiny_db):
        sql = BATCH.replace(
            "select c_nationkey, sum(l_extendedprice) as le \n",
            "",
        )
        memo, tops = build_memo(
            tiny_db,
            BATCH.split(";")[0] + ";" + BATCH.split(";")[0].replace(
                "c_nationkey > 0 and c_nationkey < 20",
                "c_nationkey > 3 and c_nationkey < 22",
            ),
        )
        counter = itertools.count(9500)
        definition = construct_cse(
            "E2", tops, memo.block_infos, lambda: next(counter),
            CardinalityEstimator(tiny_db),
        )
        specs = build_consumer_specs(definition, memo.block_infos)
        # Both consumers group by exactly the CSE keys: no re-aggregation.
        assert all(not s.needs_reagg for s in specs)

    def test_column_map_covers_outputs(self, setting):
        memo, tops, definition = setting
        specs = build_consumer_specs(definition, memo.block_infos)
        for spec in specs:
            assert len(spec.column_map) == len(definition.outputs)
            names = [n for n, _ in spec.column_map]
            assert names == [o.name for o in definition.outputs]


class TestRejection:
    def test_wrong_signature_rejected(self, setting):
        memo, tops, definition = setting
        join2 = next(
            g for g in memo.groups
            if g.kind == "join" and len(g.items) == 2 and g.signature
        )
        info = memo.block_infos[join2.block.name]
        assert try_match_consumer(definition, join2, info) is None

    def test_uncovered_predicate_rejected(self, tiny_db):
        """A consumer whose rows the CSE does not contain must not match."""
        memo, tops = build_memo(
            tiny_db,
            BATCH.split(";")[0]
            + ";"
            + BATCH.split(";")[0].replace(
                "c_nationkey > 0 and c_nationkey < 20",
                "c_nationkey > 2 and c_nationkey < 22",
            ),
        )
        counter = itertools.count(9600)
        definition = construct_cse(
            "E3", [tops[0]], memo.block_infos, lambda: next(counter),
            CardinalityEstimator(tiny_db),
        )
        # tops[1] wants nationkey in (2, 22) but the trivial CSE covers
        # (0, 20) only — matching must fail on the upper bound.
        info = memo.block_infos[tops[1].block.name]
        assert try_match_consumer(definition, tops[1], info) is None

    def test_stacked_consumer_within_other_body(self, tiny_db):
        """A narrower candidate matches the pre-aggregation group inside a
        wider candidate's body (§5.5 stacked CSEs)."""
        memo, tops = build_memo(tiny_db, BATCH)
        counter = itertools.count(9700)
        alloc = lambda: next(counter)
        estimator = CardinalityEstimator(tiny_db)
        wide = construct_cse("W", tops, memo.block_infos, alloc, estimator)
        # Narrow candidate over the orders⋈lineitem pre-aggregations.
        preaggs = [
            g for g in memo.groups
            if g.kind == "agg"
            and g.signature is not None
            and g.signature.tables == ("lineitem", "orders")
        ]
        assert len(preaggs) >= 2
        narrow = construct_cse(
            "N", preaggs, memo.block_infos, alloc, estimator
        )
        # Build the wide body into the memo; its own pre-aggregation group
        # over orders⋈lineitem should match the narrow candidate.
        memo.build_block(wide.block, "cse:W")
        memo.invalidate_dag_cache()
        body_info = memo.block_infos[wide.block.name]
        body_groups = [
            g for g in memo.groups
            if g.block is not None and g.block.name == wide.block.name
            and g.signature == narrow.signature
        ]
        assert body_groups
        spec = try_match_consumer(narrow, body_groups[0], body_info)
        assert spec is not None
        assert spec.needs_reagg or spec.residual == ()
