"""Production telemetry: histograms, Prometheus export, the structured
query log, and the optimizer decision journal.

Covers the telemetry subsystem end to end: log-bucket histogram math,
Prometheus text rendering validated by a strict parser, the stdlib HTTP
telemetry server, per-query JSONL records with slow-query EXPLAIN ANALYZE
attachment, and the ``--why`` journal naming the heuristic that killed
every rejected candidate on the paper's Example 1 batch.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro import OptimizerOptions, Session
from repro.cli import main as cli_main
from repro.obs import (
    NULL_JOURNAL,
    NULL_QUERY_LOG,
    DecisionJournal,
    Histogram,
    MetricsRegistry,
    QueryLog,
    TelemetryServer,
    Tracer,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from repro.workloads.example1 import EXAMPLE1_BATCH_SQL


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_quantiles_within_observed_range(self):
        hist = Histogram()
        samples = [0.001, 0.002, 0.01, 0.05, 0.05, 0.1, 0.5, 1.0, 2.0, 3.5]
        for s in samples:
            hist.observe(s)
        snap = hist.snapshot()
        assert snap["count"] == len(samples)
        assert snap["sum"] == pytest.approx(sum(samples))
        for q in (0.5, 0.95, 0.99):
            estimate = hist.quantile(q)
            assert min(samples) <= estimate <= max(samples)
        assert hist.quantile(0.5) <= hist.quantile(0.99)

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_merge_equals_combined_observation(self):
        a, b = Histogram(), Histogram()
        for v in (0.01, 0.2, 5.0):
            a.observe(v)
        for v in (0.03, 7.5):
            b.observe(v)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(0.01 + 0.2 + 5.0 + 0.03 + 7.5)

    def test_registry_observe_and_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("x.seconds", 0.5)
        registry.observe("x.seconds", 1.5)
        snap = registry.snapshot()
        assert snap["histograms"]["x.seconds"]["count"] == 2
        # Merging registries merges their histograms too.
        other = MetricsRegistry()
        other.observe("x.seconds", 2.5)
        registry.merge(other)
        assert registry.snapshot()["histograms"]["x.seconds"]["count"] == 3


# ---------------------------------------------------------------------------
# Prometheus exporter + telemetry server
# ---------------------------------------------------------------------------


class TestExporter:
    def test_sanitize_names(self):
        assert sanitize_metric_name("optimizer.cse_seconds") == (
            "repro_optimizer_cse_seconds"
        )
        assert sanitize_metric_name("a-b c!d") == "repro_a_b_c_d"

    def test_render_parses_with_strict_checker(self):
        registry = MetricsRegistry()
        registry.counter("optimizer.batches", 3)
        registry.gauge("executor.parallel_workers", 4)
        with registry.timer("bench.optimize"):
            pass
        for v in (0.001, 0.05, 2.0):
            registry.observe("serve.query_seconds", v)
        text = render_prometheus(registry)
        families = parse_prometheus_text(text)
        assert families["repro_optimizer_batches_total"][0][1] == 3.0
        bucket = families["repro_serve_query_seconds_bucket"]
        # Cumulative with a +Inf terminator equal to the count.
        inf = [v for labels, v in bucket if labels.get("le") == "+Inf"]
        assert inf == [3.0]
        assert families["repro_serve_query_seconds_count"][0][1] == 3.0

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line!!!\n")

    def test_labelled_histogram_series_round_trip(self):
        """Label sets on one histogram family render as independent
        Prometheus series (shared HELP/TYPE, per-series cumulative
        buckets) and survive the strict checker."""
        registry = MetricsRegistry()
        for v in (0.001, 0.05):
            registry.observe(
                "executor.task_seconds", v, labels={"outcome": "ok"}
            )
        registry.observe(
            "executor.task_seconds", 2.0, labels={"outcome": "error"}
        )
        registry.observe("executor.task_seconds", 0.01)  # unlabelled
        text = render_prometheus(registry)
        # One family header, not one per label set.
        assert text.count("# TYPE repro_executor_task_seconds ") == 1
        families = parse_prometheus_text(text)
        counts = {
            labels.get("outcome"): value
            for labels, value in families["repro_executor_task_seconds_count"]
        }
        assert counts == {"ok": 2.0, "error": 1.0, None: 1.0}
        ok_inf = [
            value
            for labels, value in families["repro_executor_task_seconds_bucket"]
            if labels.get("outcome") == "ok" and labels.get("le") == "+Inf"
        ]
        assert ok_inf == [2.0]

    def test_series_key_round_trip(self):
        from repro.obs.metrics import series_key, split_series_key

        key = series_key("executor.task_seconds", {"outcome": "ok", "a": "b"})
        assert key == 'executor.task_seconds{a="b",outcome="ok"}'
        assert split_series_key(key) == (
            "executor.task_seconds", 'a="b",outcome="ok"'
        )
        assert series_key("plain") == "plain"
        assert split_series_key("plain") == ("plain", "")

    def test_server_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("optimizer.batches", 7)
        with TelemetryServer(registry, port=0) as server:
            body = urllib.request.urlopen(server.url + "/metrics").read()
            families = parse_prometheus_text(body.decode())
            assert families["repro_optimizer_batches_total"][0][1] == 7.0
            health = json.load(
                urllib.request.urlopen(server.url + "/healthz")
            )
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0.0
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope")

    def test_session_telemetry_port(self, small_db):
        session = Session(small_db, telemetry_port=0, plan_cache_size=0)
        try:
            # A port with no registry implies an enabled registry.
            assert session.registry.enabled
            session.execute("select r_name from region")
            text = (
                urllib.request.urlopen(session.telemetry.url + "/metrics")
                .read()
                .decode()
            )
            families = parse_prometheus_text(text)
            assert any("serve_query_seconds" in n for n in families)
        finally:
            session.close()
        assert session.telemetry is None


# ---------------------------------------------------------------------------
# Structured query log
# ---------------------------------------------------------------------------


class TestQueryLog:
    def test_execute_appends_record(self, small_db, tmp_path):
        path = tmp_path / "queries.jsonl"
        log = QueryLog(path=str(path))
        session = Session(small_db, query_log=log)
        session.execute(EXAMPLE1_BATCH_SQL)
        session.execute(EXAMPLE1_BATCH_SQL)

        assert len(log) == 2
        first, second = log.records
        assert first["queries"] == ["Q1", "Q2", "Q3"]
        assert first["plan_cache_hit"] is False
        assert second["plan_cache_hit"] is True
        assert first["fingerprint"] == second["fingerprint"]
        assert first["candidates_kept"] >= 1
        assert first["estimated_savings"] > 0
        assert first["spool_rows_written"] > 0
        assert first["rows"] > 0
        assert not first["slow"]
        # The file holds the same records, one JSON object per line.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["fingerprint"] == first["fingerprint"]

    def test_slow_queries_carry_explain_analyze(self, small_db):
        log = QueryLog(slow_ms=0.0)  # everything is slow
        session = Session(small_db, query_log=log)
        session.execute(EXAMPLE1_BATCH_SQL)
        (record,) = log.records
        assert record["slow"]
        assert record in log.slow_queries()
        report = record["explain_analyze"]
        assert report.startswith("EXPLAIN ANALYZE")
        # The attached tree is from the measured run, with actuals.
        assert "actual rows=" in report
        assert "never executed" not in report

    def test_null_query_log_is_silent(self, small_db):
        session = Session(small_db)
        assert session.query_log is NULL_QUERY_LOG
        session.execute("select r_name from region")
        assert len(NULL_QUERY_LOG) == 0

    def test_fresh_empty_log_is_not_dropped(self, small_db):
        # A QueryLog has a length, so an empty one is falsy; the session
        # must still adopt it (regression for `or`-based defaulting).
        log = QueryLog()
        assert not log  # precondition: falsy when empty
        session = Session(small_db, query_log=log)
        assert session.query_log is log


# ---------------------------------------------------------------------------
# Decision journal + explain --why
# ---------------------------------------------------------------------------

_WHY_REASONS = (
    "H1",
    "H2",
    "H3",
    "H4 containment",
    "single-consumer LCA discard",
    "sharing never beat recomputation",
    "max_candidates cap",
)


class TestDecisionJournal:
    def test_journal_records_full_lifecycle(self, small_db):
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        result = session.optimize(EXAMPLE1_BATCH_SQL)
        assert result.journal is journal
        kinds = {entry["kind"] for entry in journal.events()}
        assert {"bucket", "h1", "h2", "h3", "candidate", "lca",
                "verdict"} <= kinds
        # Every generated candidate gets exactly one verdict.
        candidates = [e["cse_id"] for e in journal.events("candidate")]
        verdicts = journal.verdicts()
        assert sorted(verdicts) == sorted(candidates)
        kept = [cid for cid, v in verdicts.items() if v["kept"]]
        assert kept == result.stats.used_cses
        # for_candidate collects that candidate's trail.
        trail = journal.for_candidate(kept[0])
        assert any(e["kind"] == "lca" for e in trail)

    @pytest.mark.parametrize("heuristics", [True, False])
    def test_every_rejected_candidate_names_its_heuristic(
        self, small_db, heuristics
    ):
        """Acceptance: ``--why`` on Example 1 names the heuristic (H1-H4,
        containment, or single-consumer LCA discard) for every
        generated-but-rejected candidate."""
        options = OptimizerOptions() if heuristics else OptimizerOptions(
            enable_heuristics=False, max_cse_optimizations=16
        )
        journal = DecisionJournal()
        session = Session(small_db, options)
        session.optimize(EXAMPLE1_BATCH_SQL, journal=journal)
        rejected = [
            v for v in journal.verdicts().values() if not v["kept"]
        ]
        assert rejected, "Example 1 must generate rejected candidates"
        for verdict in rejected:
            assert any(
                reason in verdict["reason"] for reason in _WHY_REASONS
            ), verdict

    def test_render_why_report(self, small_db):
        session = Session(small_db)
        report = session.explain(EXAMPLE1_BATCH_SQL, why=True)
        assert "Optimizer decision journal" in report
        assert "candidate generation:" in report
        assert "H1" in report and "α" in report
        assert "KEPT" in report and "REJECTED" in report
        # The session journal stays untouched (a fresh one is scoped).
        assert session.journal is NULL_JOURNAL

    def test_journal_jsonl_round_trip(self, small_db):
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        session.optimize(EXAMPLE1_BATCH_SQL)
        lines = journal.to_jsonl().strip().splitlines()
        assert len(lines) == len(journal)
        parsed = [json.loads(line) for line in lines]
        assert all("kind" in entry for entry in parsed)

    def test_disabled_journal_is_free(self):
        assert not NULL_JOURNAL.enabled
        NULL_JOURNAL.event("candidate", cse_id="E1")
        assert len(NULL_JOURNAL) == 0


#: two EXISTS consumers sharing one decorrelated semi-join build side — every
#: consumer match goes through the equivalence-checker gate.
_EXISTS_PAIR_SQL = (
    "select c_nationkey, count(*) as v from customer where exists "
    "(select * from orders, lineitem where o_custkey = c_custkey and "
    "o_orderkey = l_orderkey and l_quantity < 30) group by c_nationkey;"
    "select c_mktsegment, count(*) as v from customer where exists "
    "(select * from orders, lineitem where o_custkey = c_custkey and "
    "o_orderkey = l_orderkey and l_quantity < 30) group by c_mktsegment"
)

#: a bare outer join: the simplifier's reduction attempt must give up, and
#: ``--why`` must say so.
_BARE_LEFT_SQL = (
    "select c_nationkey, o_totalprice from customer "
    "left join orders on c_custkey = o_custkey"
)

_REDUCIBLE_LEFT_SQL = (
    "select c_nationkey, o_totalprice from customer "
    "left join orders on c_custkey = o_custkey where o_totalprice > 1000"
)


class TestEquivalenceJournal:
    def test_consumer_matches_emit_equiv_events(self, small_db):
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        session.optimize(_EXISTS_PAIR_SQL)
        checks = [
            e for e in journal.events("equiv") if e.get("cse_id") is not None
        ]
        assert checks, "consumer matching must consult the checker"
        for entry in checks:
            assert entry["outcome"] in ("proved", "refuted", "gave_up")
            assert entry["consumer"].startswith("g")
            assert entry["reason"]

    def test_verdicts_name_checker_outcome(self, small_db):
        """Acceptance: every candidate verdict carries the equivalence-
        checker tally for its consumer checks, and the checks appear in
        the candidate's journal trail."""
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        session.optimize(_EXISTS_PAIR_SQL)
        verdicts = journal.verdicts()
        assert verdicts
        for cse_id, verdict in verdicts.items():
            assert "proved=" in verdict["equiv"], verdict
            trail = journal.for_candidate(cse_id)
            assert any(e["kind"] == "equiv" for e in trail)

    def test_why_reports_rejected_outer_join_reduction(self, small_db):
        report = Session(small_db).explain(_BARE_LEFT_SQL, why=True)
        assert "equivalence checker (outer-join simplification):" in report
        assert "gave_up" in report
        assert "no post-join filter constrains the outer side" in report

    def test_why_reports_proved_reduction(self, small_db):
        report = Session(small_db).explain(_REDUCIBLE_LEFT_SQL, why=True)
        assert "outer-join reduction: proved" in report
        assert "null-rejecting" in report

    def test_why_renders_consumer_checks_under_candidate(self, small_db):
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        session.optimize(_EXISTS_PAIR_SQL)
        report = journal.render_why()
        assert "equivalence check for consumer" in report
        assert "[equivalence checker: proved=" in report

    def test_equiv_events_survive_jsonl(self, small_db):
        journal = DecisionJournal()
        session = Session(small_db, journal=journal)
        session.optimize(_EXISTS_PAIR_SQL + ";" + _BARE_LEFT_SQL)
        parsed = [
            json.loads(line)
            for line in journal.to_jsonl().strip().splitlines()
        ]
        kinds = {entry["kind"] for entry in parsed}
        assert "equiv" in kinds
        reduction = [
            e for e in parsed
            if e["kind"] == "equiv" and e.get("cse_id") is None
        ]
        assert any(e.get("extension") for e in reduction)


# ---------------------------------------------------------------------------
# Satellites: parallel op-stat timer reconciliation, tracer concurrency
# ---------------------------------------------------------------------------


class TestParallelTimerReconciliation:
    def test_worker_slots_merge_timer_maps(self, small_db):
        """Per-worker OperatorStats slots merged after a parallel run must
        reconcile per-phase timer maps, matching the serial totals."""
        serial = Session(small_db, plan_cache_size=0)
        parallel = Session(small_db, workers=4, plan_cache_size=0)
        ser = serial.execute(EXAMPLE1_BATCH_SQL, collect_op_stats=True)
        par = parallel.execute(
            EXAMPLE1_BATCH_SQL, collect_op_stats=True, parallel=True
        )

        def timer_profile(execution):
            profile = {}
            for stats in execution.execution.op_stats.values():
                for name, seconds in stats.timers.items():
                    profile[name] = profile.get(name, 0) + 1
                    assert seconds > 0.0
            return profile

        ser_profile = timer_profile(ser)
        par_profile = timer_profile(par)
        # Same phases appear with the same multiplicity: merged worker
        # slots did not lose (or double) any timer components.
        assert ser_profile == par_profile
        assert "materialize" in par_profile  # spool bodies were timed
        assert "finalize" in par_profile
        # And the results themselves are identical.
        for s, p in zip(ser.execution.results, par.execution.results):
            assert s.sorted_rows() == p.sorted_rows()


class TestTracerConcurrency:
    def test_eight_threads_one_sink(self):
        tracer = Tracer()
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(25):
                    with tracer.span(f"outer-{tid}", thread=tid) as outer:
                        tracer.event(f"point-{tid}-{i}")
                        with tracer.span(f"inner-{tid}") as inner:
                            assert inner.parent_id == outer.span_id
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # 8 threads x 25 iterations x (outer + point + inner).
        assert len(tracer.events) == 8 * 25 * 3
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == len(tracer.events)
        by_id = {}
        for line in lines:
            event = json.loads(line)
            assert event["span_id"] not in by_id, "span ids must be unique"
            by_id[event["span_id"]] = event
        for event in by_id.values():
            parent = event["parent_id"]
            if parent is None:
                continue
            # Parent exists and belongs to the same thread's trace:
            # nesting never leaks across threads.
            assert parent in by_id
            parent_name = by_id[parent]["name"]
            tid = event["name"].split("-")[1]
            assert parent_name == f"outer-{tid}"


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestTelemetryCli:
    def test_explain_why(self, capsys):
        import io

        out = io.StringIO()
        code = cli_main(
            ["--sf", "0.001", "explain", "--why", EXAMPLE1_BATCH_SQL], out
        )
        assert code == 0
        text = out.getvalue()
        assert "Optimizer decision journal" in text
        assert "candidate generation:" in text

    def test_query_with_query_log(self, tmp_path):
        import io

        path = tmp_path / "log.jsonl"
        out = io.StringIO()
        code = cli_main(
            [
                "--sf", "0.001", "query",
                "--query-log", str(path), "--slow-ms", "0",
                "select r_name from region",
            ],
            out,
        )
        assert code == 0
        assert "query log: 1 record(s) (1 slow)" in out.getvalue()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["slow"] is True
        assert record["explain_analyze"].startswith("EXPLAIN ANALYZE")

    def test_serve_metrics_runs_and_stops(self):
        import io

        out = io.StringIO()
        code = cli_main(
            [
                "--sf", "0.001", "serve-metrics",
                "select r_name from region",
                "--port", "0", "--iterations", "1", "--duration", "0",
            ],
            out,
        )
        assert code == 0
        text = out.getvalue()
        assert "/metrics" in text and "/healthz" in text
        assert "telemetry server stopped" in text


class TestHistoryReuseMetrics:
    """§5.4 optimization-history counters and the per-pass histogram
    survive the Prometheus exporter's strict parse check."""

    def _registry_after_multi_pass_batch(self):
        from repro.workloads import scaleup_batch

        registry = MetricsRegistry()
        session = Session(
            Session.tpch(scale_factor=0.002).database,
            OptimizerOptions(),
            registry=registry,
        )
        session.optimize(scaleup_batch(8))
        return registry

    def test_history_counters_render_and_parse(self):
        registry = self._registry_after_multi_pass_batch()
        text = render_prometheus(registry)
        families = parse_prometheus_text(text)
        for name in (
            "repro_optimizer_history_hits_total",
            "repro_optimizer_history_misses_total",
            "repro_optimizer_history_groups_reused_total",
            "repro_optimizer_history_tops_folded_total",
        ):
            assert name in families, f"missing {name}"
        assert families["repro_optimizer_history_hits_total"][0][1] > 0
        assert families["repro_optimizer_history_groups_reused_total"][0][1] > 0

    def test_pass_seconds_histogram_renders_and_parses(self):
        registry = self._registry_after_multi_pass_batch()
        text = render_prometheus(registry)
        families = parse_prometheus_text(text)
        bucket = families["repro_optimizer_history_pass_seconds_bucket"]
        inf = [v for labels, v in bucket if labels.get("le") == "+Inf"]
        count = families["repro_optimizer_history_pass_seconds_count"][0][1]
        assert inf == [count]
        passes = registry.snapshot()["counters"]["optimizer.cse_passes"]
        assert count == passes > 0
