"""Unit tests for the storage engine (tables, indexes, work tables, DB)."""

import numpy as np
import pytest

from repro.catalog.schema import ColumnSchema, TableSchema
from repro.errors import CatalogError, StorageError
from repro.storage.database import Database
from repro.storage.index import RangeIndex
from repro.storage.table import Table
from repro.storage.worktable import WorkTable
from repro.types import DataType


def _schema():
    return TableSchema(
        "t",
        [
            ColumnSchema("k", DataType.INT),
            ColumnSchema("v", DataType.FLOAT),
            ColumnSchema("s", DataType.STRING),
        ],
        primary_key=("k",),
    )


def _data(n=5):
    return {
        "k": np.arange(n, dtype=np.int64),
        "v": np.arange(n, dtype=np.float64) * 1.5,
        "s": np.array([f"row{i}" for i in range(n)], dtype=object),
    }


class TestTable:
    def test_create_empty(self):
        table = Table(_schema())
        assert table.row_count == 0

    def test_create_with_data(self):
        table = Table(_schema(), _data())
        assert len(table) == 5
        assert table.column("k").tolist() == [0, 1, 2, 3, 4]

    def test_missing_column_rejected(self):
        data = _data()
        del data["s"]
        with pytest.raises(StorageError):
            Table(_schema(), data)

    def test_ragged_rejected(self):
        data = _data()
        data["v"] = data["v"][:3]
        with pytest.raises(StorageError):
            Table(_schema(), data)

    def test_row_access(self):
        table = Table(_schema(), _data())
        assert table.row(2) == (2, 3.0, "row2")
        with pytest.raises(StorageError):
            table.row(99)

    def test_rows(self):
        table = Table(_schema(), _data(2))
        assert table.rows() == [(0, 0.0, "row0"), (1, 1.5, "row1")]

    def test_select_mask(self):
        table = Table(_schema(), _data())
        subset = table.select(table.column("k") >= 3)
        assert subset.row_count == 2
        assert subset.column("k").tolist() == [3, 4]

    def test_append_rows(self):
        table = Table(_schema(), _data(2))
        appended = table.append_rows([(10, 1.0, "x"), (11, 2.0, "y")])
        assert appended == 2
        assert table.row_count == 4

    def test_append_bad_arity(self):
        table = Table(_schema(), _data(1))
        with pytest.raises(StorageError):
            table.append_rows([(1, 2.0)])

    def test_size_accounting(self):
        table = Table(_schema(), _data())
        assert table.row_width() == 8 + 8 + 25
        assert table.size_bytes() == 5 * 41


class TestRangeIndex:
    def test_lookup_range(self):
        table = Table(_schema(), _data(100))
        index = RangeIndex("ix", table, "k")
        positions = index.lookup_range(10, 19)
        assert sorted(table.column("k")[positions].tolist()) == list(range(10, 20))

    def test_exclusive_bounds(self):
        table = Table(_schema(), _data(10))
        index = RangeIndex("ix", table, "k")
        got = index.lookup_range(2, 5, low_inclusive=False, high_inclusive=False)
        assert sorted(table.column("k")[got].tolist()) == [3, 4]

    def test_open_ranges(self):
        table = Table(_schema(), _data(10))
        index = RangeIndex("ix", table, "k")
        assert len(index.lookup_range(None, None)) == 10
        assert len(index.lookup_range(low=7)) == 3
        assert len(index.lookup_range(high=2)) == 3

    def test_lookup_equal(self):
        table = Table(_schema(), _data(10))
        index = RangeIndex("ix", table, "k")
        assert table.column("k")[index.lookup_equal(4)].tolist() == [4]

    def test_empty_result(self):
        table = Table(_schema(), _data(10))
        index = RangeIndex("ix", table, "k")
        assert len(index.lookup_range(100, 200)) == 0
        assert len(index.lookup_range(5, 2)) == 0

    def test_string_column_rejected(self):
        table = Table(_schema(), _data(3))
        with pytest.raises(StorageError):
            RangeIndex("bad", table, "s")

    def test_refresh_after_append(self):
        table = Table(_schema(), _data(3))
        index = RangeIndex("ix", table, "k")
        table.append_rows([(100, 0.0, "z")])
        index.refresh()
        assert len(index.lookup_equal(100)) == 1


class TestWorkTable:
    def test_load_and_read(self):
        wt = WorkTable("w", ["a", "b"], [DataType.INT, DataType.FLOAT])
        wt.load({"a": np.array([1, 2]), "b": np.array([0.5, 1.5])})
        assert wt.row_count == 2
        assert wt.column("a").tolist() == [1, 2]
        assert wt.column_type("b") is DataType.FLOAT

    def test_signature_name_plain_and_delta(self):
        plain = WorkTable("w", ["a"], [DataType.INT])
        delta = WorkTable("w", ["a"], [DataType.INT], delta_of="customer")
        assert plain.signature_name == "w"
        assert delta.signature_name == "delta(customer)"

    def test_mismatched_load_rejected(self):
        wt = WorkTable("w", ["a"], [DataType.INT])
        with pytest.raises(StorageError):
            wt.load({"b": np.array([1])})

    def test_ragged_load_rejected(self):
        wt = WorkTable("w", ["a", "b"], [DataType.INT, DataType.INT])
        with pytest.raises(StorageError):
            wt.load({"a": np.array([1]), "b": np.array([1, 2])})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            WorkTable("w", ["a", "a"], [DataType.INT, DataType.INT])

    def test_missing_column_read(self):
        wt = WorkTable("w", ["a"], [DataType.INT])
        with pytest.raises(StorageError):
            wt.column("zz")


class TestDatabase:
    def test_create_and_query(self):
        db = Database()
        db.create_table(_schema(), _data())
        assert db.table("t").row_count == 5
        assert db.has_table("T")

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(_schema())
        with pytest.raises(CatalogError):
            db.create_table(_schema())

    def test_insert_refreshes_indexes_and_stats(self):
        db = Database()
        db.create_table(_schema(), _data())
        db.create_index("ix_k", "t", "k")
        db.analyze()
        assert db.statistics("t").row_count == 5
        db.insert("t", [(50, 1.0, "new")])
        # stats were invalidated: falls back to bare row count
        assert db.statistics("t").row_count == 6
        assert len(db.index("ix_k").lookup_equal(50)) == 1

    def test_index_for(self):
        db = Database()
        db.create_table(_schema(), _data())
        db.create_index("ix_k", "t", "k")
        assert db.index_for("t", "k") is not None
        assert db.index_for("t", "v") is None

    def test_drop_table_cleans_up(self):
        db = Database()
        db.create_table(_schema(), _data())
        db.create_index("ix_k", "t", "k")
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(CatalogError):
            db.index("ix_k")

    def test_analyze_collects_column_stats(self):
        db = Database()
        db.create_table(_schema(), _data(50))
        db.analyze()
        stats = db.statistics("t")
        assert stats.column("k").ndv == 50
        assert stats.column("k").min_value == 0.0

    def test_statistics_missing_table(self):
        with pytest.raises(CatalogError):
            Database().statistics("ghost")

    def test_load_replaces(self):
        db = Database()
        db.create_table(_schema(), _data(5))
        db.load("t", _data(2))
        assert db.table("t").row_count == 2
