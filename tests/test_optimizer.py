"""End-to-end optimizer tests: plan shapes, costing, CSE decisions."""

import pytest

from repro import OptimizerOptions, Session
from repro.optimizer.engine import Optimizer
from repro.optimizer.physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSpoolDef,
    PhysSpoolRead,
)
from repro.sql.binder import bind_batch
from repro.workloads import example1_batch


def nodes_of(plan, node_type):
    return [n for n in plan.walk() if isinstance(n, node_type)]


class TestSingleQueryPlans:
    def test_simple_scan_plan(self, tiny_session):
        result = tiny_session.optimize("select c_name from customer")
        plan = result.bundle.queries[0].plan
        assert nodes_of(plan, PhysScan)
        assert isinstance(plan, PhysProject)

    def test_filter_pushed_into_scan(self, tiny_session):
        result = tiny_session.optimize(
            "select c_name from customer where c_nationkey = 3"
        )
        scan = nodes_of(result.bundle.queries[0].plan, PhysScan)[0]
        assert len(scan.conjuncts) == 1

    def test_join_plan_builds_on_smaller_side(self, tiny_session):
        result = tiny_session.optimize(
            "select c_name, o_totalprice from customer, orders "
            "where c_custkey = o_custkey"
        )
        join = nodes_of(result.bundle.queries[0].plan, PhysHashJoin)[0]
        assert join.left.est_rows <= join.right.est_rows

    def test_aggregation_plan(self, tiny_session):
        result = tiny_session.optimize(
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey"
        )
        assert nodes_of(result.bundle.queries[0].plan, PhysHashAgg)

    def test_index_scan_chosen_for_selective_date(self, tiny_session):
        """orders has an index on o_orderdate; a narrow range should use it
        (the capability Heuristic 3's Example 7 relies on)."""
        result = tiny_session.optimize(
            "select o_orderkey from orders "
            "where o_orderdate = '1995-01-01'"
        )
        assert nodes_of(result.bundle.queries[0].plan, PhysIndexScan)

    def test_full_scan_for_wide_range(self, tiny_session):
        result = tiny_session.optimize(
            "select o_orderkey from orders where o_orderdate > '1970-01-01'"
        )
        assert not nodes_of(result.bundle.queries[0].plan, PhysIndexScan)

    def test_estimated_cost_positive_and_ordering(self, tiny_session):
        cheap = tiny_session.optimize("select r_name from region")
        pricey = tiny_session.optimize(
            "select c_nationkey, sum(l_extendedprice) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_nationkey"
        )
        assert 0 < cheap.est_cost < pricey.est_cost


class TestCseDecisions:
    def test_example1_single_candidate_with_heuristics(self, small_session):
        result = small_session.optimize(example1_batch())
        stats = result.stats
        assert len(stats.candidate_ids) == 1
        assert stats.used_cses == stats.candidate_ids
        assert stats.cse_optimizations == 1
        candidate = result.candidates[0]
        assert candidate.definition.signature.has_groupby
        assert candidate.definition.signature.tables == (
            "customer", "lineitem", "orders",
        )

    def test_example1_five_candidates_without_heuristics(self, no_heuristics_session):
        result = no_heuristics_session.optimize(example1_batch())
        signatures = {
            (c.definition.signature.has_groupby, c.definition.signature.tables)
            for c in result.candidates
        }
        assert signatures == {
            (False, ("customer", "orders")),
            (False, ("lineitem", "orders")),
            (False, ("customer", "lineitem", "orders")),
            (True, ("lineitem", "orders")),
            (True, ("customer", "lineitem", "orders")),
        }

    def test_cse_reduces_estimated_cost(self, small_session):
        result = small_session.optimize(example1_batch())
        assert result.est_cost < result.stats.est_cost_no_cse
        # Table 1's shape: roughly 3x.
        assert result.stats.est_cost_no_cse / result.est_cost > 2.0

    def test_same_final_plan_with_and_without_pruning(
        self, small_session, no_heuristics_session
    ):
        """The paper's §6.1 check: heuristic pruning must not lose the
        optimal candidate (both modes choose the same CSE and cost)."""
        pruned = small_session.optimize(example1_batch())
        unpruned = no_heuristics_session.optimize(example1_batch())
        assert pruned.est_cost == pytest.approx(unpruned.est_cost, rel=1e-6)

    def test_no_cse_mode(self, no_cse_session):
        result = no_cse_session.optimize(example1_batch())
        assert result.stats.candidate_ids == []
        assert not result.bundle.root_spools

    def test_spool_emitted_at_root_for_cross_query_cse(self, small_session):
        result = small_session.optimize(example1_batch())
        assert len(result.bundle.root_spools) == 1
        cse_id, body = result.bundle.root_spools[0]
        assert isinstance(body, PhysProject)
        reads = [
            n
            for q in result.bundle.queries
            for n in q.plan.walk()
            if isinstance(n, PhysSpoolRead)
        ]
        assert len(reads) == 3  # every query consumes the spool

    def test_compensation_nodes_present(self, small_session):
        result = small_session.optimize(example1_batch())
        q1 = result.bundle.queries[0].plan
        read = nodes_of(q1, PhysSpoolRead)
        assert read
        # The residual nationkey range survives as a filter node, or as a
        # filter stage after the fusion pass collapsed the chain.
        from repro.optimizer.physical import PhysFusedPipeline

        fused_filters = [
            stage
            for node in nodes_of(q1, PhysFusedPipeline)
            for stage in node.stages
            if stage.kind == "filter"
        ]
        assert nodes_of(q1, PhysFilter) or fused_filters

    def test_signature_overhead_counted(self, small_session):
        result = small_session.optimize(example1_batch())
        assert result.stats.signature_registrations > 0

    def test_no_sharing_no_candidates(self, small_session):
        result = small_session.optimize(
            "select r_name from region;"
            "select n_name from nation"
        )
        assert result.stats.candidates_generated == 0
        assert result.est_cost == result.stats.est_cost_no_cse

    def test_cheap_batch_skipped_by_threshold(self, small_db):
        session = Session(
            small_db, OptimizerOptions(cse_cost_threshold=1e12)
        )
        result = session.optimize(example1_batch())
        assert result.stats.cse_optimizations == 0

    def test_naive_split_mode_differs(self, small_db):
        correct = Session(small_db, OptimizerOptions()).optimize(example1_batch())
        naive = Session(
            small_db, OptimizerOptions(cost_mode="naive_split")
        ).optimize(example1_batch())
        # Both run; the naive mode mis-accounts shared costs so its estimate
        # need not match the profile mode's.
        assert naive.bundle is not None
        assert correct.stats.cse_optimizations >= 1

    def test_used_cses_listed(self, small_session):
        result = small_session.optimize(example1_batch())
        assert result.stats.used_cses == [result.candidates[0].cse_id]


class TestSubqueryOptimization:
    def test_nested_query_shares_with_subquery(self, small_session):
        from repro.workloads import nested_query

        result = small_session.optimize(nested_query())
        assert len(result.stats.candidate_ids) == 1
        assert result.stats.used_cses == result.stats.candidate_ids
        # The spool settles at the batch root (consumers live in different
        # parts: the main block and the scalar subquery).
        assert len(result.bundle.root_spools) == 1
        query = result.bundle.queries[0]
        assert query.subquery_plans
        sub_plan = next(iter(query.subquery_plans.values()))
        reads_in_sub = [
            n for n in sub_plan.walk() if isinstance(n, PhysSpoolRead)
        ]
        assert reads_in_sub


class TestHistoryReuse:
    def test_plan_cache_shared_across_passes(self, small_db):
        optimizer = Optimizer(
            small_db, OptimizerOptions(enable_heuristics=False)
        )
        batch = bind_batch(small_db.catalog, example1_batch())
        optimizer.optimize(batch)
        # Groups relevant to no candidate were optimized exactly once: their
        # cache key is (gid, empty set).
        base_keys = [k for k in optimizer._plan_cache if k[1] == frozenset()]
        assert base_keys
