"""Property: governor degradation never changes results.

For random SPJG batches, an execute whose spool budget forces the
no-sharing fallback must return exactly the rows of an ``enable_cse=False``
session (the same baseline plan, byte-identical) and — normalized — the
rows of the reference oracle. This is the operational form of the paper's
guarantee that the no-sharing plan is always a valid plan.
"""

from hypothesis import HealthCheck, given, settings

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.serve import QueryBudget

from .test_prop_end_to_end import DB, normalize, random_batch


class TestGovernorFallback:
    @given(random_batch())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_forced_fallback_matches_baseline_and_oracle(self, sql):
        session = Session(DB, OptimizerOptions())
        batch = session.bind(sql)
        outcome = session.execute(
            batch, budget=QueryBudget(max_spool_rows=0)
        )
        # Whenever the plan would have materialized a spool, the zero
        # budget forces the baseline; either way no sharing happened.
        assert outcome.execution.metrics.spools_materialized == 0
        baseline = Session(
            DB, OptimizerOptions(enable_cse=False)
        ).execute(batch)
        for query in batch.queries:
            got = outcome.execution.query(query.name)
            want = baseline.execution.query(query.name)
            # Byte-identical to the no-sharing plan's execution.
            assert (got.columns, got.rows) == (want.columns, want.rows), (
                f"{query.name} differs from the no-CSE baseline for:\n{sql}"
            )
        oracle = evaluate_batch(DB, batch)
        for query in batch.queries:
            got = normalize(outcome.execution.query(query.name).rows)
            assert got == normalize(oracle[query.name]), (
                f"{query.name} mismatch vs oracle for:\n{sql}"
            )

    @given(random_batch())
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_optimizer_deadline_fallback_matches_oracle(self, sql):
        session = Session(DB, OptimizerOptions(), plan_cache_size=0)
        batch = session.bind(sql)
        outcome = session.execute(
            batch, budget=QueryBudget(optimizer_deadline_ms=1e-6)
        )
        assert outcome.degraded
        assert outcome.fallback_reason == "optimizer_deadline"
        oracle = evaluate_batch(DB, batch)
        for query in batch.queries:
            got = normalize(outcome.execution.query(query.name).rows)
            assert got == normalize(oracle[query.name])
