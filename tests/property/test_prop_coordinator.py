"""Property suite: cross-session merging is invisible except for speed.

For 100 seed-determined pairs of random SPJG queries, run twice (once per
Step-3 strategy — 200 cases total), each query submitted from its *own*
session through a shared coordinator whose window is long enough that the
pair always meets in one group. Three results must agree row-for-row (up
to float rounding and row order, the repo's standard equality):

* the coordinator-merged execution of each query,
* the same query executed on an isolated session (no coordinator),
* the reference evaluator's oracle rows.

Merging is opportunistic — pairs with disjoint table signatures run solo
by design — so the suite also asserts the coordinator actually merged a
healthy fraction of the pairs, and that every published spool was freed.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch
from repro.obs import MetricsRegistry
from repro.serve import SharedBatchCoordinator
from repro.workloads.generator import random_spjg_query

#: read-only database shared by every seed.
DB = build_tpch_database(scale_factor=0.0005)

SEEDS = range(100)
STRATEGIES = ("paper", "greedy")

#: merged windows observed per strategy, asserted non-trivial at the end.
_MERGED = {strategy: 0 for strategy in STRATEGIES}


def _norm(rows):
    return sorted(
        [
            tuple(round(v, 4) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


def _pair(seed):
    rng = random.Random(seed)
    return random_spjg_query(rng), random_spjg_query(rng)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_merged_equals_isolated_equals_oracle(seed, strategy):
    sql_a, sql_b = _pair(seed)
    options = OptimizerOptions(cse_strategy=strategy)
    registry = MetricsRegistry()
    # max_group=2 closes an overlapping pair's window the moment both have
    # arrived (the barrier makes that near-instant); only disjoint pairs —
    # two solo leaders — wait out the 400 ms.
    coordinator = SharedBatchCoordinator(
        window_ms=400.0, max_group=2, registry=registry
    )
    s1 = Session(DB, options, coordinator=coordinator, registry=registry)
    s2 = Session(DB, options, coordinator=coordinator, registry=registry)

    outcomes = {}
    arrival = threading.Barrier(2)

    def run(name, session, sql):
        arrival.wait()
        outcomes[name] = session.execute(sql)

    threads = [
        threading.Thread(target=run, args=("a", s1, sql_a), daemon=True),
        threading.Thread(target=run, args=("b", s2, sql_b), daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)
    assert not any(t.is_alive() for t in threads), "coordinator deadlocked"

    iso = Session(DB, options)
    for name, sql in (("a", sql_a), ("b", sql_b)):
        shared_rows = _norm(outcomes[name].execution.results[0].rows)
        isolated = iso.execute(sql)
        assert shared_rows == _norm(isolated.execution.results[0].rows)
        batch = iso.bind(sql)
        oracle = evaluate_batch(DB, batch)
        assert shared_rows == _norm(oracle[batch.queries[0].name])

    counters = registry.snapshot()["counters"]
    # Refcount hygiene on every seed: published spools all freed.
    assert counters.get("coordinator.spools_freed", 0) == counters.get(
        "coordinator.spools_published", 0
    )
    _MERGED[strategy] += int(counters.get("coordinator.merged_batches", 0))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_merging_happened_for_a_healthy_fraction(strategy):
    # Runs after the parametrized sweep (pytest collection order): random
    # SPJG pairs draw from three overlapping join chains, so well over
    # half the seeds must have produced an actual merge.
    assert _MERGED[strategy] >= len(SEEDS) // 2
