"""Property-based tests for the predicate/equivalence-class algebra that
join compatibility and CSE construction build on."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.cse.construct import weakened_covering
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    TableRef,
)
from repro.expr.predicates import EquivalenceClasses, range_implies
from repro.types import DataType

T = TableRef("t", 1)
COLUMNS = [ColumnRef(T, name, DataType.INT) for name in "abcdef"]

pairs = st.tuples(
    st.sampled_from(COLUMNS), st.sampled_from(COLUMNS)
).filter(lambda p: p[0] != p[1])


def classes_from(pair_list):
    classes = EquivalenceClasses()
    for left, right in pair_list:
        classes.add_equality(left, right)
    return classes


class TestEquivalenceClassProperties:
    @given(st.lists(pairs, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_classes_partition(self, pair_list):
        classes = classes_from(pair_list)
        members = [m for cls in classes.classes() for m in cls]
        assert len(members) == len(set(members))  # disjoint classes

    @given(st.lists(pairs, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_transitive_closure(self, pair_list):
        classes = classes_from(pair_list)
        # same_class is an equivalence relation: symmetric + transitive.
        for a in COLUMNS:
            for b in COLUMNS:
                assert classes.same_class(a, b) == classes.same_class(b, a)

    @given(st.lists(pairs, max_size=6), st.lists(pairs, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_intersection_soundness(self, first, second):
        """Members equal in the intersection are equal in both inputs."""
        c1 = classes_from(first)
        c2 = classes_from(second)
        inter = c1.intersect(c2)
        for cls in inter.classes():
            members = sorted(cls, key=repr)
            for a, b in zip(members, members[1:]):
                assert c1.same_class(a, b)
                assert c2.same_class(a, b)

    @given(st.lists(pairs, max_size=6), st.lists(pairs, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_intersection_commutative(self, first, second):
        c1 = classes_from(first)
        c2 = classes_from(second)
        left = {frozenset(c) for c in c1.intersect(c2).classes()}
        right = {frozenset(c) for c in c2.intersect(c1).classes()}
        assert left == right

    @given(st.lists(pairs, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_intersection_idempotent(self, pair_list):
        classes = classes_from(pair_list)
        self_inter = classes.intersect(classes)
        assert {frozenset(c) for c in self_inter.classes()} == {
            frozenset(c) for c in classes.classes()
        }


OPS = [
    ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT,
    ComparisonOp.GE, ComparisonOp.EQ,
]


def satisfies(value, op, bound):
    if op is ComparisonOp.LT:
        return value < bound
    if op is ComparisonOp.LE:
        return value <= bound
    if op is ComparisonOp.GT:
        return value > bound
    if op is ComparisonOp.GE:
        return value >= bound
    if op is ComparisonOp.EQ:
        return value == bound
    raise AssertionError(op)


class TestRangeImplication:
    @given(
        st.sampled_from(OPS),
        st.integers(-50, 50),
        st.sampled_from(OPS),
        st.integers(-50, 50),
        st.integers(-60, 60),
    )
    @settings(max_examples=300, deadline=None)
    def test_implication_is_sound(self, op1, bound1, op2, bound2, value):
        """If range_implies says A ⇒ B then every value satisfying A
        satisfies B."""
        column = COLUMNS[0]
        specific = Comparison(op1, column, Literal(bound1))
        general = Comparison(op2, column, Literal(bound2))
        if range_implies(specific, general):
            if satisfies(value, op1, bound1):
                assert satisfies(value, op2, bound2)


class TestCoveringSoundness:
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(-20, 20)).map(
                lambda p: (min(p), max(p) + 1)
            ),
            min_size=2,
            max_size=5,
        ),
        st.integers(-25, 25),
    )
    @settings(max_examples=200, deadline=None)
    def test_hull_contains_every_consumer(self, ranges, value):
        """Any value satisfying some consumer's range satisfies every
        covering conjunct (the CSE is a superset of each consumer)."""
        column = COLUMNS[0]
        consumer_conjuncts = [
            [
                Comparison(ComparisonOp.GT, column, Literal(low)),
                Comparison(ComparisonOp.LT, column, Literal(high)),
            ]
            for low, high in ranges
        ]
        covering, residuals = weakened_covering(consumer_conjuncts)
        for conjuncts in consumer_conjuncts:
            row_satisfies = all(
                satisfies(value, c.op, c.right.value) for c in conjuncts
            )
            if row_satisfies:
                for cover in covering:
                    assert satisfies(value, cover.op, cover.right.value)

    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(-20, 20)).map(
                lambda p: (min(p), max(p) + 1)
            ),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_residuals_restore_exactness(self, ranges):
        """covering ∧ residual_i ≡ consumer_i's original predicate."""
        column = COLUMNS[0]
        consumer_conjuncts = [
            [
                Comparison(ComparisonOp.GT, column, Literal(low)),
                Comparison(ComparisonOp.LT, column, Literal(high)),
            ]
            for low, high in ranges
        ]
        covering, residuals = weakened_covering(consumer_conjuncts)
        for original, residual in zip(consumer_conjuncts, residuals):
            for value in range(-25, 26):
                orig = all(
                    satisfies(value, c.op, c.right.value) for c in original
                )
                rebuilt = all(
                    satisfies(value, c.op, c.right.value) for c in covering
                ) and all(
                    satisfies(value, c.op, c.right.value) for c in residual
                )
                assert orig == rebuilt
