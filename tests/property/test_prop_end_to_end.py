"""Property-based end-to-end test: for random SPJG query batches, every
optimizer configuration produces plans whose results equal the oracle's.

This is the library's strongest invariant: exploiting similar
subexpressions — with any combination of heuristics, stacking, cost modes —
must never change query results.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch

DB = build_tpch_database(scale_factor=0.0005)

#: join chains over the TPC-H schema: (tables, join predicates)
CHAINS = [
    (
        ["customer", "orders", "lineitem"],
        ["c_custkey = o_custkey", "o_orderkey = l_orderkey"],
    ),
    (
        ["nation", "customer", "orders"],
        ["n_nationkey = c_nationkey", "c_custkey = o_custkey"],
    ),
    (
        ["orders", "lineitem", "part"],
        ["o_orderkey = l_orderkey", "l_partkey = p_partkey"],
    ),
]

#: (column, low domain, high domain) for range predicates.
RANGES = {
    "customer": ("c_nationkey", 0, 25),
    "orders": ("o_totalprice", 1000, 400000),
    "lineitem": ("l_quantity", 1, 50),
    "nation": ("n_regionkey", 0, 5),
    "part": ("p_size", 1, 50),
}

GROUPINGS = {
    "customer": ["c_nationkey", "c_mktsegment"],
    "orders": ["o_orderstatus", "o_orderpriority"],
    "lineitem": ["l_returnflag"],
    "nation": ["n_regionkey"],
    "part": ["p_size"],
}

AGGREGATES = {
    "customer": "c_acctbal",
    "orders": "o_totalprice",
    "lineitem": "l_extendedprice",
    "nation": "n_nationkey",
    "part": "p_retailprice",
}


@st.composite
def random_query(draw):
    chain_index = draw(st.integers(0, len(CHAINS) - 1))
    tables, joins = CHAINS[chain_index]
    length = draw(st.integers(2, len(tables)))
    used = tables[:length]
    conjuncts = list(joins[: length - 1])
    # Random range predicates.
    for table in used:
        if draw(st.booleans()):
            column, low, high = RANGES[table]
            bound = draw(st.integers(low, high))
            op = draw(st.sampled_from(["<", ">", "<=", ">="]))
            conjuncts.append(f"{column} {op} {bound}")
    group_table = used[draw(st.integers(0, length - 1))]
    group_col = draw(st.sampled_from(GROUPINGS[group_table]))
    agg_table = used[draw(st.integers(0, length - 1))]
    agg_col = AGGREGATES[agg_table]
    agg = draw(st.sampled_from(["sum", "min", "max", "count"]))
    agg_sql = f"{agg}({agg_col})" if agg != "count" else "count(*)"
    return (
        f"select {group_col}, {agg_sql} as v from {', '.join(used)} "
        f"where {' and '.join(conjuncts)} group by {group_col}"
    )


@st.composite
def random_batch(draw):
    count = draw(st.integers(2, 4))
    return ";".join(draw(random_query()) for _ in range(count))


OPTION_SETS = [
    OptimizerOptions(),
    OptimizerOptions(enable_cse=False),
    OptimizerOptions(enable_heuristics=False, max_cse_optimizations=8),
    OptimizerOptions(cost_mode="naive_split"),
]


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestRandomBatches:
    @given(random_batch())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_all_modes_match_oracle(self, sql):
        reference = None
        for options in OPTION_SETS:
            session = Session(DB, options)
            batch = session.bind(sql)
            outcome = session.execute(batch)
            if reference is None:
                reference = evaluate_batch(session.database, batch)
            for query in batch.queries:
                got = normalize(outcome.execution.query(query.name).rows)
                want = normalize(reference[query.name])
                assert got == want, (
                    f"{query.name} mismatch under {options} for:\n{sql}"
                )

    @given(random_query())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_identical_twin_queries_share(self, sql):
        """A batch of two identical queries must produce identical results
        twice — and the CSE plan may serve both from one spool."""
        session = Session(DB)
        batch = session.bind(sql + ";" + sql)
        outcome = session.execute(batch)
        first = normalize(outcome.execution.results[0].rows)
        second = normalize(outcome.execution.results[1].rows)
        assert first == second
        oracle = evaluate_batch(session.database, batch)
        assert first == normalize(oracle["Q1"])
