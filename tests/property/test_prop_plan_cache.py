"""Property suite: the plan cache is invisible except for speed.

For 100 seed-determined random SPJG batches (the same generator the other
property suites use), three invariants must hold on every workload:

* a warm (cache-hit) ``execute`` returns exactly the rows of the cold
  optimize-and-execute that populated the cache;
* every lookup lands in exactly one of ``plan_cache.hit`` /
  ``plan_cache.miss`` — the counters account for all lookups;
* mutating a table the batch reads invalidates the entry, and the
  re-optimized plan agrees with an uncached oracle session on the
  mutated database.
"""

from __future__ import annotations

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.obs import MetricsRegistry
from repro.serve import batch_tables
from repro.workloads import random_spjg_batch

#: read-only database shared by the hit/miss seeds.
DB = build_tpch_database(scale_factor=0.0005)

SEEDS = range(100)
#: every SPJG join chain includes orders, so inserting there always
#: intersects the batch's table set.
MUTATED_TABLE = "orders"
MUTATION_SEEDS = range(0, 100, 10)


def _rows(execution):
    return [(r.name, r.columns, r.rows) for r in execution.results]


def _duplicate_first_row(database, table_name):
    table = database.table(table_name)
    names = [c.name for c in table.schema.columns]
    row = tuple(
        value.item() if hasattr(value, "item") else value
        for value in (table.column(name)[0] for name in names)
    )
    database.insert(table_name, [row])


@pytest.mark.parametrize("seed", SEEDS)
def test_cache_hit_rows_equal_cold_rows(seed):
    sql = random_spjg_batch(seed)
    registry = MetricsRegistry()
    session = Session(DB, OptimizerOptions(), registry=registry)
    cold = session.execute(sql)
    warm = session.execute(sql)
    assert not cold.plan_cache_hit
    assert warm.plan_cache_hit
    assert _rows(warm.execution) == _rows(cold.execution)
    # Counters account for every lookup: two lookups, one each way.
    counters = registry.snapshot()["counters"]
    assert counters["plan_cache.miss"] == 1
    assert counters["plan_cache.hit"] == 1
    assert session.plan_cache.hits + session.plan_cache.misses == 2


@pytest.mark.parametrize("seed", MUTATION_SEEDS)
def test_mutation_invalidates_and_recomputes(seed):
    # A private database: the insert must not leak into other tests.
    database = build_tpch_database(scale_factor=0.0005)
    sql = random_spjg_batch(seed)
    registry = MetricsRegistry()
    session = Session(database, OptimizerOptions(), registry=registry)
    assert MUTATED_TABLE in batch_tables(session.bind(sql))

    session.execute(sql)
    assert session.execute(sql).plan_cache_hit

    _duplicate_first_row(database, MUTATED_TABLE)
    after = session.execute(sql)
    assert not after.plan_cache_hit, "mutation must drop the cached plan"
    counters = registry.snapshot()["counters"]
    assert counters["plan_cache.invalidation"] >= 1
    assert counters["plan_cache.miss"] == 2
    assert counters["plan_cache.hit"] == 1

    # The re-optimized plan sees the mutation, like an uncached session.
    oracle = Session(database, OptimizerOptions(), plan_cache_size=0)
    assert oracle.plan_cache is None
    assert _rows(after.execution) == _rows(oracle.execute(sql).execution)


def test_unrelated_table_mutation_keeps_entries():
    database = build_tpch_database(scale_factor=0.0005)
    session = Session(database, OptimizerOptions())
    sql = "select r_name from region"
    session.execute(sql)
    _duplicate_first_row(database, "supplier")  # region plan unaffected
    assert session.execute(sql).plan_cache_hit
