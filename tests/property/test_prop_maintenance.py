"""Property-based test: materialized views stay equal to from-scratch
recomputation under random sequences of inserts and deletes."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.catalog.tpch import build_tpch_database
from repro.views.maintenance import MaintenancePlanner
from repro.views.materialized import ViewManager

VIEW_SQL = (
    "select c_nationkey, sum(o_totalprice) as total, count(*) as n "
    "from customer, orders where c_custkey = o_custkey "
    "group by c_nationkey"
)

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]


def _view_dict(view):
    table = view.contents
    rows = list(zip(*[table.column(n).tolist() for n in table.column_names]))
    return {
        r[0]: tuple(round(v, 4) if isinstance(v, float) else v for v in r[1:])
        for r in rows
    }


@st.composite
def operations(draw):
    """A short random program of inserts/deletes of customer rows."""
    steps = []
    next_key = 90_000_000
    live = []
    for _ in range(draw(st.integers(1, 4))):
        if live and draw(st.booleans()):
            count = draw(st.integers(1, min(3, len(live))))
            victims = live[:count]
            live = live[count:]
            steps.append(("delete", victims))
        else:
            count = draw(st.integers(1, 4))
            rows = []
            for _ in range(count):
                rows.append(
                    (
                        next_key,
                        f"Customer#{next_key}",
                        draw(st.integers(0, 24)),
                        SEGMENTS[draw(st.integers(0, 4))],
                        float(draw(st.integers(0, 1000))),
                    )
                )
                next_key += 1
            live.extend(rows)
            steps.append(("insert", rows))
    return steps


class TestMaintenanceRoundtrip:
    @given(operations())
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_incremental_equals_recompute(self, steps):
        db = build_tpch_database(scale_factor=0.0005)
        manager = ViewManager(db)
        manager.create_view("v", VIEW_SQL)
        manager.refresh("v")
        planner = MaintenancePlanner(db, manager)
        for op, rows in steps:
            if op == "insert":
                planner.apply_insert("customer", rows)
            else:
                planner.apply_delete("customer", rows)
        incremental = _view_dict(manager.view("v"))
        fresh = ViewManager(db)
        fresh.create_view("f", VIEW_SQL)
        fresh.refresh("f")
        assert incremental == _view_dict(fresh.view("f"))
