"""Property-based optimizer invariants on random workloads.

* CSE exploitation never *increases* the estimated cost (it may always fall
  back to the base plan).
* Every mode returns exactly the oracle's rows (richer query shapes than
  test_prop_end_to_end: OR/IN/BETWEEN predicates, min/max/count).
* Executed cost of the chosen CSE plan is never worse than the no-CSE plan
  by more than the estimation error allows (soft check via estimates).
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch

DB = build_tpch_database(scale_factor=0.0005)

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]


@st.composite
def predicate(draw, table):
    kind = draw(st.integers(0, 3))
    if table == "customer":
        if kind == 0:
            low = draw(st.integers(0, 20))
            return f"c_nationkey between {low} and {low + draw(st.integers(0, 10))}"
        if kind == 1:
            seg1, seg2 = draw(st.sampled_from(SEGMENTS)), draw(st.sampled_from(SEGMENTS))
            return f"c_mktsegment in ('{seg1}', '{seg2}')"
        if kind == 2:
            return (
                f"(c_nationkey < {draw(st.integers(5, 15))} "
                f"or c_nationkey > {draw(st.integers(16, 24))})"
            )
        return f"c_acctbal > {draw(st.integers(-500, 500))}"
    if table == "orders":
        if kind in (0, 1):
            return f"o_totalprice < {draw(st.integers(50_000, 450_000))}"
        return f"o_orderdate < '199{draw(st.integers(3, 8))}-06-01'"
    # lineitem
    if kind in (0, 1):
        return f"l_quantity <= {draw(st.integers(5, 45))}"
    return f"l_discount < 0.0{draw(st.integers(2, 9))}"


@st.composite
def rich_query(draw):
    tables = ["customer", "orders", "lineitem"][: draw(st.integers(2, 3))]
    joins = ["c_custkey = o_custkey", "o_orderkey = l_orderkey"][: len(tables) - 1]
    conjuncts = list(joins)
    for table in tables:
        if draw(st.booleans()):
            conjuncts.append(draw(predicate(table)))
    group = draw(
        st.sampled_from(
            ["c_nationkey", "c_mktsegment"]
            if "customer" in tables
            else ["o_orderstatus", "o_orderpriority"]
        )
    )
    agg = draw(
        st.sampled_from(
            [
                "sum(o_totalprice)",
                "count(*)",
                "min(o_totalprice)",
                "max(o_totalprice)",
                "sum(l_extendedprice)" if "lineitem" in tables else "count(*)",
            ]
        )
    )
    return (
        f"select {group}, {agg} as v from {', '.join(tables)} "
        f"where {' and '.join(conjuncts)} group by {group}"
    )


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestOptimizerInvariants:
    @given(rich_query(), rich_query())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cse_never_increases_estimate(self, q1, q2):
        sql = q1 + ";" + q2
        base = Session(DB, OptimizerOptions(enable_cse=False)).optimize(sql)
        shared = Session(DB, OptimizerOptions()).optimize(sql)
        assert shared.est_cost <= base.est_cost + 1e-6

    @given(rich_query(), rich_query())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rich_predicates_match_oracle(self, q1, q2):
        sql = q1 + ";" + q2
        session = Session(DB, OptimizerOptions())
        batch = session.bind(sql)
        outcome = session.execute(batch)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = normalize(outcome.execution.query(query.name).rows)
            want = normalize(oracle[query.name])
            assert got == want, sql

    @given(rich_query())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimate_and_measurement_use_same_units(self, q):
        """Estimated and measured cost of the same plan stay within a broad
        band of each other (they share formulas; only cardinality estimation
        separates them)."""
        session = Session(DB, OptimizerOptions(enable_cse=False))
        outcome = session.execute(q)
        est = outcome.est_cost
        measured = outcome.execution.metrics.cost_units
        assert measured <= est * 50 + 100
        assert est <= measured * 50 + 100
