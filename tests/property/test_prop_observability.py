"""Property suite for the observability layer: differential correctness
plus metrics invariants over generated SPJG batches.

For 200 seed-determined batches from :func:`repro.workloads.generator.
random_spjg_batch`, executing with CSEs enabled must (a) return exactly
the reference executor's rows and (b) produce spool/registry accounting
consistent with the paper's sharing rules:

* a spool is only ever materialized for a *kept* CSE — plans discarded by
  the single-consumer rule (§5.2) never execute a spool write;
* every kept CSE is read at least twice per materialization (sharing needs
  at least two consumers to pay for the spool);
* the producer's row count equals the rows delivered to *each* consumer
  read (spools never truncate or duplicate);
* the registry's ``executor.*`` counters mirror the execution metrics.
"""

import pytest

from repro import MetricsRegistry, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch
from repro.workloads.generator import random_spjg_batch

DB = build_tpch_database(scale_factor=0.0005)

BATCH_COUNT = 200
CHUNK = 10


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


def check_batch(seed: int) -> int:
    """Run one generated batch and assert every invariant; returns the
    number of kept CSEs it exercised."""
    sql = random_spjg_batch(seed)
    registry = MetricsRegistry()
    session = Session(DB, registry=registry)
    batch = session.bind(sql)
    outcome = session.execute(batch)

    # Differential correctness: CSE-on execution equals the oracle.
    reference = evaluate_batch(DB, batch)
    for query in batch.queries:
        got = normalize(outcome.execution.query(query.name).rows)
        want = normalize(reference[query.name])
        assert got == want, f"{query.name} mismatch for seed {seed}:\n{sql}"

    metrics = outcome.execution.metrics
    used = set(outcome.optimization.stats.used_cses)
    materialized = {
        cse_id for cse_id, s in metrics.spool_stats.items() if s.writes
    }
    # Discarded single-consumer plans never execute a spool write.
    assert materialized <= used, (
        f"seed {seed}: spools {materialized - used} materialized but "
        f"not kept (used: {used})"
    )

    kept = 0
    for cse_id, spool in metrics.spool_stats.items():
        if spool.writes == 0:
            continue
        kept += 1
        # A kept CSE must be consumed >= 2x per materialization.
        assert spool.reads >= 2 * spool.writes, (
            f"seed {seed}: {cse_id} read {spool.reads}x for "
            f"{spool.writes} materialization(s)"
        )
        # Producer rows == rows delivered to each consumer read.
        assert all(
            rows == spool.rows_written for rows in spool.read_row_counts
        ), (
            f"seed {seed}: {cse_id} wrote {spool.rows_written} rows but "
            f"reads returned {spool.read_row_counts}"
        )
        assert spool.rows_read == sum(spool.read_row_counts)

    # The registry mirrors the execution metrics.
    counters = registry.snapshot()["counters"]
    assert (
        counters.get("executor.spools_materialized", 0)
        == metrics.spools_materialized
    )
    assert counters.get("executor.spool_reads", 0) == sum(
        s.reads for s in metrics.spool_stats.values()
    )
    assert counters.get("executor.rows_output", 0) == metrics.rows_output
    return kept


@pytest.mark.parametrize("chunk", range(0, BATCH_COUNT, CHUNK))
def test_observability_invariants(chunk):
    for seed in range(chunk, chunk + CHUNK):
        check_batch(seed)


def test_generator_exercises_sharing():
    """The seed range must actually cover the interesting case: a healthy
    number of batches keep at least one CSE (guards against a generator
    regression quietly turning the suite into a no-op)."""
    kept = sum(check_batch(seed) for seed in range(0, 60))
    assert kept >= 5
