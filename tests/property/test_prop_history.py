"""Property suite: §5.4 optimization-history reuse is invisible except
for speed.

For 200 seed-determined random SPJG batches (the same generator the plan
cache suite uses), optimizing with history reuse on and off must agree on
everything observable:

* identical final estimated cost;
* identical chosen candidate set (``used_cses``) and a byte-identical
  plan bundle (same :meth:`PlanBundle.fingerprint`);
* identical executed rows — and both match the reference-executor
  oracle, so reuse cannot hide a shared wrong answer.

The history cache may only change *how much work* Step 3 does, never
*which plans* it finds: both modes run the same deterministic DP, and a
cache hit returns a result the off mode would recompute identically.
"""

from __future__ import annotations

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch
from repro.workloads import random_spjg_batch

#: read-only database shared by all seeds.
DB = build_tpch_database(scale_factor=0.0005)

SEEDS = range(200)
#: full end-to-end execution + oracle comparison on a spread of seeds
#: (execution is the expensive part; plan identity already covers the
#: rest, since identical bundles execute identically).
EXECUTION_SEEDS = range(0, 200, 5)


def _session(reuse: bool) -> Session:
    return Session(DB, OptimizerOptions(reuse_history=reuse))


def _normalize(rows):
    return sorted(
        [
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_history_reuse_plans_identical(seed):
    sql = random_spjg_batch(seed)
    on = _session(True).optimize(sql)
    off = _session(False).optimize(sql)
    assert on.stats.est_cost_final == off.stats.est_cost_final
    assert on.stats.used_cses == off.stats.used_cses
    assert on.bundle.fingerprint() == off.bundle.fingerprint()
    assert on.bundle.describe() == off.bundle.describe()
    # Off mode never carries group results across passes, by construction.
    assert off.stats.history_groups_reused == 0


@pytest.mark.parametrize("seed", EXECUTION_SEEDS)
def test_history_reuse_rows_match_oracle(seed):
    sql = random_spjg_batch(seed)
    results = {}
    for reuse in (True, False):
        session = _session(reuse)
        batch = session.bind(sql)
        outcome = session.execute(batch)
        results[reuse] = {
            query.name: _normalize(outcome.execution.query(query.name).rows)
            for query in batch.queries
        }
    assert results[True] == results[False]
    session = _session(True)
    batch = session.bind(sql)
    oracle = evaluate_batch(session.database, batch)
    for name, rows in results[True].items():
        assert rows == _normalize(oracle[name]), (
            f"{name} diverges from the reference executor for:\n{sql}"
        )
