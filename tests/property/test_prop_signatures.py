"""Property-based tests for table signatures (Figure 2's algebra).

The key invariant: composing Figure 2's rules incrementally over any
SPJG-shaped operator tree yields exactly the signature of the whole tree —
the property that lets the optimizer maintain signatures per memo group.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cse.signature import TableSignature, signature_of_tree
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
)
from repro.logical.operators import Get, GroupBy, Join, Project, Select
from repro.types import DataType

TABLE_NAMES = ["A", "B", "C", "D"]

_instance_counter = [0]


def fresh_table(name):
    _instance_counter[0] += 1
    return TableRef(name, _instance_counter[0])


def col(tref, name="x"):
    return ColumnRef(tref, name, DataType.INT)


@st.composite
def spj_trees(draw, depth=0):
    """Random SPJ trees (no group-by); returns (tree, table multiset)."""
    if depth >= 3 or draw(st.booleans()):
        name = draw(st.sampled_from(TABLE_NAMES))
        tref = fresh_table(name)
        tree = Get(tref)
        tables = [name]
    else:
        left, left_tables = draw(spj_trees(depth=depth + 1))
        right, right_tables = draw(spj_trees(depth=depth + 1))
        tree = Join(None, left, right)
        tables = left_tables + right_tables
    # Optional select / project wrappers.
    if draw(st.booleans()):
        some_table = next(
            node.table_ref for node in tree.walk() if isinstance(node, Get)
        )
        tree = Select(gt(col(some_table), Literal(draw(st.integers(0, 9)))), tree)
    if draw(st.booleans()):
        some_table = next(
            node.table_ref for node in tree.walk() if isinstance(node, Get)
        )
        tree = Project((col(some_table),), tree)
    return tree, tables


class TestSignatureProperties:
    @given(spj_trees())
    @settings(max_examples=100, deadline=None)
    def test_spj_signature_is_table_multiset(self, tree_tables):
        tree, tables = tree_tables
        signature = signature_of_tree(tree)
        assert signature == TableSignature(False, tuple(tables))

    @given(spj_trees())
    @settings(max_examples=100, deadline=None)
    def test_groupby_sets_flag_keeps_tables(self, tree_tables):
        tree, tables = tree_tables
        some_table = next(
            node.table_ref for node in tree.walk() if isinstance(node, Get)
        )
        grouped = GroupBy(
            (col(some_table),), (AggExpr(AggFunc.COUNT, None),), tree
        )
        signature = signature_of_tree(grouped)
        assert signature == TableSignature(True, tuple(tables))

    @given(spj_trees(), spj_trees())
    @settings(max_examples=100, deadline=None)
    def test_join_rule_is_compositional(self, left_pair, right_pair):
        left, _ = left_pair
        right, _ = right_pair
        whole = signature_of_tree(Join(None, left, right))
        composed = signature_of_tree(left).joined_with(signature_of_tree(right))
        assert whole == composed

    @given(spj_trees())
    @settings(max_examples=100, deadline=None)
    def test_select_above_groupby_never_signed(self, tree_tables):
        tree, _ = tree_tables
        some_table = next(
            node.table_ref for node in tree.walk() if isinstance(node, Get)
        )
        grouped = GroupBy((col(some_table),), (), tree)
        filtered = Select(gt(col(some_table), Literal(1)), grouped)
        assert signature_of_tree(filtered) is None

    @given(spj_trees(), spj_trees())
    @settings(max_examples=50, deadline=None)
    def test_different_multisets_different_signatures(self, first, second):
        tree1, tables1 = first
        tree2, tables2 = second
        sig1 = signature_of_tree(tree1)
        sig2 = signature_of_tree(tree2)
        if sorted(tables1) != sorted(tables2):
            assert sig1 != sig2
        else:
            assert sig1 == sig2
