"""200-seed differential suite: fused/streamed execution must be
frame-identical to the materializing path and to the reference oracle.

Every seed-determined SPJG batch runs three ways — fused morsel streaming
(the default), the legacy materializing path (``enable_fusion=False``, scan
sharing identical on both sides), and the row-at-a-time oracle — and all
three must produce identical frames, with identical deterministic cost
units between the two engine paths. The full 200 seeds run at the production morsel size
(4096); a seed subset plus handcrafted NULL-extension/empty-result
scenarios re-run at morsel sizes 1 and 7, where off-by-one slicing,
empty-morsel dtype degradation, and per-morsel governor checkpoints live.
"""

from __future__ import annotations

import math

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database
from repro.executor.reference import evaluate_batch
from repro.workloads import random_spjg_batch

#: read-only database shared by all seeds.
DB = build_tpch_database(scale_factor=0.0005)

SEED_COUNT = 200
CHUNK = 25
#: seeds re-run at the stress morsel sizes.
SMALL_MORSEL_SEEDS = range(0, SEED_COUNT, 10)

#: handcrafted shapes the generator rarely produces: empty results,
#: single-row results, NULL-extended outer-join columns, and an ORDER BY
#: over a NULL-extended key.
HANDCRAFTED = [
    "select c_nationkey, count(*) as n from customer "
    "where c_nationkey < -1 group by c_nationkey",
    "select n_name, c_acctbal from nation "
    "left join customer on n_nationkey = c_nationkey "
    "and c_acctbal > 9000 order by c_acctbal desc, n_name",
    "select c_nationkey, sum(c_acctbal) as v from customer "
    "where c_custkey <= 1 group by c_nationkey;"
    "select c_nationkey, count(*) as n from customer "
    "where c_custkey <= 1 group by c_nationkey",
]


def _null(v) -> bool:
    return v is None or (isinstance(v, float) and v != v)


def _sort_key(row):
    # Floats are compared with a tolerance, so they cannot participate in
    # the sort key; group-by keys (and any shared ORDER BY order) keep
    # matching rows aligned under the stable sort.
    return repr(
        tuple(
            "NULL" if _null(v) else (0.0 if isinstance(v, float) else v)
            for v in row
        )
    )


def _assert_rows_match(got, want, msg: str) -> None:
    # Vectorized (pairwise) and row-at-a-time summation accumulate in
    # different orders, so large aggregates agree only to relative
    # precision — compare floats with a tolerance, everything else exactly.
    assert len(got) == len(want), msg
    for g, w in zip(sorted(got, key=_sort_key), sorted(want, key=_sort_key)):
        assert len(g) == len(w), msg
        for a, b in zip(g, w):
            if _null(a) or _null(b):
                assert _null(a) and _null(b), msg
            elif isinstance(a, float) or isinstance(b, float):
                assert math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-6), msg
            else:
                assert a == b, msg


def check_batch(sql: str, morsel: int) -> None:
    fused_session = Session(DB, morsel_rows=morsel)
    batch = fused_session.bind(sql)
    fused = fused_session.execute(batch)
    # The materializing path differs ONLY in fusion, so cost units must
    # match exactly; scan sharing stays on in both (its own equivalence
    # and accounting invariants live in test_shared_scans.py).
    legacy = Session(
        DB, OptimizerOptions(enable_fusion=False)
    ).execute(batch)
    oracle = evaluate_batch(DB, batch)
    for query in batch.queries:
        want = oracle[query.name]
        _assert_rows_match(
            fused.execution.query(query.name).rows,
            want,
            f"fused != oracle for {query.name} (morsel {morsel}):\n{sql}",
        )
        _assert_rows_match(
            legacy.execution.query(query.name).rows,
            want,
            f"legacy != oracle for {query.name}:\n{sql}",
        )
    assert fused.execution.metrics.cost_units == pytest.approx(
        legacy.execution.metrics.cost_units, rel=1e-9
    ), f"cost units diverged (morsel {morsel}):\n{sql}"


@pytest.mark.parametrize("chunk", range(0, SEED_COUNT, CHUNK))
def test_differential_at_production_morsel(chunk):
    for seed in range(chunk, chunk + CHUNK):
        check_batch(random_spjg_batch(seed), morsel=4096)


@pytest.mark.parametrize("morsel", [1, 7])
def test_differential_at_stress_morsels(morsel):
    for seed in SMALL_MORSEL_SEEDS:
        check_batch(random_spjg_batch(seed), morsel=morsel)


@pytest.mark.parametrize("morsel", [1, 7, 4096])
@pytest.mark.parametrize("sql", HANDCRAFTED)
def test_handcrafted_scenarios(sql, morsel):
    check_batch(sql, morsel=morsel)
