"""Property suite for the widened SQL surface (outer / semi / anti joins).

200 deterministic seeds of :func:`repro.workloads.generator.random_sql_batch`
— LEFT OUTER JOIN, EXISTS / NOT EXISTS, IN / NOT IN, NULL-heavy projections,
mixed with plain SPJG queries — are run under every optimizer configuration
and compared against the reference oracle, plus sharing invariants on the
spools the default configuration materializes. Two deterministic batches pin
the headline sharing scenarios: a shared semi-join build side across two
EXISTS consumers, and a reduced outer join sharing a plain inner-join spool.

Failing seeds are written (one repr per file) to the directory named by the
``REPRO_PROP_FAILURE_DIR`` environment variable when it is set, so CI can
upload them as artifacts.
"""

import math
import os

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.workloads.generator import random_sql_batch

from .test_prop_end_to_end import DB

SEEDS = 200
CHUNK = 20

OPTION_SETS = [
    OptimizerOptions(),
    OptimizerOptions(enable_cse=False),
    OptimizerOptions(enable_heuristics=False, max_cse_optimizations=8),
]


def normalize(rows):
    """Engine/oracle-comparable rows: NaN → None (the engine's NULL is NaN
    in float64 columns, the oracle's is None), ints coerced to floats (the
    executor's null-extension widens INT columns to float64), floats
    rounded to absorb summation-order noise."""
    out = []
    for row in rows:
        values = []
        for value in row:
            if value is None or (
                isinstance(value, float) and math.isnan(value)
            ):
                values.append(None)
            elif isinstance(value, (int, float)):
                values.append(round(float(value), 3))
            else:
                values.append(value)
        out.append(tuple(values))
    return sorted(out, key=repr)


def _record_failure(seed, sql, detail):
    directory = os.environ.get("REPRO_PROP_FAILURE_DIR")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"widened_seed_{seed}.txt")
    with open(path, "w") as handle:
        handle.write(f"seed: {seed}\nsql:\n{sql}\n\n{detail}\n")


def _chunk_seeds(chunk):
    return range(chunk * CHUNK, (chunk + 1) * CHUNK)


class TestWidenedDifferential:
    @pytest.mark.parametrize("chunk", range(SEEDS // CHUNK))
    def test_all_modes_match_oracle(self, chunk):
        for seed in _chunk_seeds(chunk):
            sql = random_sql_batch(seed)
            session = Session(DB, OPTION_SETS[0])
            batch = session.bind(sql)
            oracle = evaluate_batch(session.database, batch)
            for options in OPTION_SETS:
                outcome = Session(DB, options).execute(batch)
                for query in batch.queries:
                    got = normalize(outcome.execution.query(query.name).rows)
                    want = normalize(oracle[query.name])
                    if got != want:
                        detail = (
                            f"{query.name} under {options}\n"
                            f"got:  {got}\nwant: {want}"
                        )
                        _record_failure(seed, sql, detail)
                        raise AssertionError(
                            f"seed {seed}: {detail}\nfor:\n{sql}"
                        )


class TestWidenedSharingInvariants:
    @pytest.mark.parametrize("chunk", range(SEEDS // CHUNK))
    def test_spool_reads_match_writes(self, chunk):
        """Every spool read returns exactly the rows the producer wrote,
        and sharing never changes results vs the no-CSE baseline."""
        for seed in _chunk_seeds(chunk):
            sql = random_sql_batch(seed)
            session = Session(DB, OptimizerOptions())
            batch = session.bind(sql)
            outcome = session.execute(batch)
            baseline = Session(DB, OptimizerOptions(enable_cse=False)).execute(
                batch
            )
            for cse_id, stats in outcome.execution.metrics.spool_stats.items():
                for count in stats.read_row_counts:
                    if count != stats.rows_written:
                        detail = (
                            f"spool {cse_id}: read {count} rows, "
                            f"wrote {stats.rows_written}"
                        )
                        _record_failure(seed, sql, detail)
                        raise AssertionError(f"seed {seed}: {detail}")
            for query in batch.queries:
                got = normalize(outcome.execution.query(query.name).rows)
                want = normalize(baseline.execution.query(query.name).rows)
                if got != want:
                    detail = f"{query.name} shared ≠ baseline"
                    _record_failure(seed, sql, detail)
                    raise AssertionError(
                        f"seed {seed}: {detail}\nfor:\n{sql}"
                    )


#: two EXISTS consumers with identical correlation signatures over the same
#: orders ⋈ lineitem inner chain — the decorrelated semi-join build side is
#: a two-table block, so it clears min_cse_tables and must be shared.
EXISTS_PAIR = (
    "select c_nationkey, count(*) as v from customer where exists "
    "(select * from orders, lineitem where o_custkey = c_custkey and "
    "o_orderkey = l_orderkey and l_quantity < 30) group by c_nationkey;"
    "select c_mktsegment, count(*) as v from customer where exists "
    "(select * from orders, lineitem where o_custkey = c_custkey and "
    "o_orderkey = l_orderkey and l_quantity < 30) group by c_mktsegment"
)

#: an outer join whose WHERE is null-rejecting on the null-extended side —
#: the simplifier reduces it to an inner join, which then shares a spool
#: with the plain inner-join query alongside it.
REDUCED_PAIR = (
    "select c_nationkey, sum(o_totalprice) as v from customer "
    "left join orders on c_custkey = o_custkey "
    "where o_totalprice > 0 group by c_nationkey;"
    "select c_mktsegment, sum(o_totalprice) as v from customer, orders "
    "where c_custkey = o_custkey and o_totalprice > 0 group by c_mktsegment"
)


class TestWidenedSharingScenarios:
    @pytest.mark.parametrize(
        "sql", [EXISTS_PAIR, REDUCED_PAIR], ids=["exists-pair", "reduced-pair"]
    )
    def test_batch_shares_one_spool_across_consumers(self, sql):
        session = Session(DB, OptimizerOptions())
        batch = session.bind(sql)
        outcome = session.execute(batch)
        metrics = outcome.execution.metrics
        assert metrics.spools_materialized >= 1
        assert any(
            stats.reads >= 2 for stats in metrics.spool_stats.values()
        ), "expected a multi-consumer spool"
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = normalize(outcome.execution.query(query.name).rows)
            assert got == normalize(oracle[query.name])
