"""Unit tests for optimizer-engine internals: usage profiles, planset caps,
spool topological ordering, bundle utilities."""

import pytest

from repro.errors import OptimizerError
from repro.logical.blocks import OutputColumn
from repro.optimizer.engine import (
    EMPTY_PROFILE,
    PlanChoice,
    _cap_planset,
    _profile_add,
    _profile_get,
    _profile_merge,
    _profile_support,
    _profile_without,
    _toposort_spools,
)
from repro.optimizer.physical import (
    PhysProject,
    PhysScan,
    PhysSpoolRead,
    PhysicalPlan,
)
from repro.expr.expressions import TableRef


class TestProfiles:
    def test_empty(self):
        assert _profile_get(EMPTY_PROFILE, "E1") == 0
        assert _profile_support(EMPTY_PROFILE) == frozenset()

    def test_add_and_get(self):
        profile = _profile_add(EMPTY_PROFILE, "E1")
        assert _profile_get(profile, "E1") == 1
        assert _profile_get(profile, "E2") == 0

    def test_add_caps_at_two(self):
        profile = EMPTY_PROFILE
        for _ in range(5):
            profile = _profile_add(profile, "E1")
        assert _profile_get(profile, "E1") == 2

    def test_merge_sums_and_caps(self):
        left = _profile_add(EMPTY_PROFILE, "E1")
        right = _profile_add(_profile_add(EMPTY_PROFILE, "E1"), "E2")
        merged = _profile_merge(left, right)
        assert _profile_get(merged, "E1") == 2
        assert _profile_get(merged, "E2") == 1

    def test_merge_identity(self):
        profile = _profile_add(EMPTY_PROFILE, "E1")
        assert _profile_merge(profile, EMPTY_PROFILE) == profile
        assert _profile_merge(EMPTY_PROFILE, profile) == profile

    def test_without(self):
        profile = _profile_add(_profile_add(EMPTY_PROFILE, "E1"), "E2")
        stripped = _profile_without(profile, "E1")
        assert _profile_get(stripped, "E1") == 0
        assert _profile_get(stripped, "E2") == 1

    def test_canonical_ordering(self):
        a = _profile_add(_profile_add(EMPTY_PROFILE, "E2"), "E1")
        b = _profile_add(_profile_add(EMPTY_PROFILE, "E1"), "E2")
        assert a == b  # sorted tuples: order of insertion irrelevant

    def test_support(self):
        profile = _profile_add(_profile_add(EMPTY_PROFILE, "E1"), "E2")
        assert _profile_support(profile) == frozenset({"E1", "E2"})


class TestCapPlanset:
    def _plans(self, count):
        plans = {}
        for i in range(count):
            profile = _profile_add(EMPTY_PROFILE, f"E{i}")
            plans[profile] = PlanChoice(float(i), PhysicalPlan())
        plans[EMPTY_PROFILE] = PlanChoice(999.0, PhysicalPlan())
        return plans

    def test_under_limit_unchanged(self):
        plans = self._plans(5)
        assert _cap_planset(plans, 100) is plans

    def test_over_limit_keeps_cheapest(self):
        plans = self._plans(50)
        capped = _cap_planset(plans, 10)
        assert len(capped) <= 10
        cheapest = _profile_add(EMPTY_PROFILE, "E0")
        assert cheapest in capped

    def test_base_plan_always_survives(self):
        plans = self._plans(50)  # EMPTY is the most expensive
        capped = _cap_planset(plans, 10)
        assert EMPTY_PROFILE in capped


class TestToposortSpools:
    def _body(self, reads=()):
        table = TableRef("region", 1)
        child: PhysicalPlan = PhysScan(table, (), ())
        for cse_id in reads:
            child = PhysSpoolRead(cse_id, ())
        return PhysProject(child, ())

    def test_independent_order_preserved(self):
        spools = (("A", self._body()), ("B", self._body()))
        assert [c for c, _ in _toposort_spools(spools)] == ["A", "B"]

    def test_dependency_ordering(self):
        spools = (("outer", self._body(reads=["inner"])), ("inner", self._body()))
        ordered = [c for c, _ in _toposort_spools(spools)]
        assert ordered.index("inner") < ordered.index("outer")

    def test_external_reads_ignored(self):
        # Reading a spool that is not among the definitions is fine.
        spools = (("A", self._body(reads=["zzz"])),)
        assert [c for c, _ in _toposort_spools(spools)] == ["A"]

    def test_cycle_detected(self):
        spools = (
            ("A", self._body(reads=["B"])),
            ("B", self._body(reads=["A"])),
        )
        with pytest.raises(OptimizerError):
            _toposort_spools(spools)


class TestBundleUtilities:
    def test_used_cses_dedup_and_order(self, small_session):
        from repro.workloads import example1_batch

        result = small_session.optimize(example1_batch())
        used = result.bundle.used_cses()
        assert used == sorted(set(used), key=used.index)

    def test_describe_contains_all_queries(self, small_session):
        from repro.workloads import example1_batch

        result = small_session.optimize(example1_batch())
        text = result.bundle.describe()
        for query in result.bundle.queries:
            assert f"{query.name}:" in text
