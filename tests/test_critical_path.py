"""Unit tests for the critical-path analyzer and the Chrome exporter,
over hand-built traces with known CPM answers."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    analyze,
    find_orphans,
    load_trace,
    operator_attribution,
    render_chrome_trace,
    render_critical_path,
    render_summary,
    to_chrome_trace,
)
from repro.obs.critical import TraceData, find_roots


def _span(name, span_id, parent, start, duration, /, thread="MainThread",
          **attrs):
    event = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent,
        "start": start,
        "duration": duration,
        "thread": thread,
    }
    if attrs:
        event["attrs"] = attrs
    return event


def _point(name, span_id, parent, start, /, thread="MainThread", **attrs):
    event = {
        "name": name,
        "span_id": span_id,
        "parent_id": parent,
        "start": start,
        "thread": thread,
    }
    if attrs:
        event["attrs"] = attrs
    return event


@pytest.fixture()
def diamond_trace():
    """batch → spool E1 (2s) feeding QA (1s) and QB (3s).

    Earliest finishes: E1=2, QA=3, QB=5 → critical path E1→QB (5s);
    QA has 2s of slack.
    """
    return [
        _span("batch", 1, None, 0.0, 5.2),
        _span("spool_materialize", 2, 1, 0.0, 2.0, spool="E1"),
        _span("query", 3, 1, 2.0, 1.0, thread="repro-worker_0", name="QA"),
        _point("spool_flow", 4, 3, 2.1, thread="repro-worker_0",
               spool="E1", from_span=2, rows=10),
        _span("query", 5, 1, 2.0, 3.0, thread="repro-worker_1", name="QB"),
        _point("spool_flow", 6, 5, 2.2, thread="repro-worker_1",
               spool="E1", from_span=2, rows=10),
    ]


class TestAnalyze:
    def test_critical_path_and_slack(self, diamond_trace):
        report = analyze(diamond_trace)
        assert report.critical_path == ["spool:E1", "query:QB"]
        assert report.path_seconds == pytest.approx(5.0)
        assert report.batch_seconds == pytest.approx(5.2)
        assert report.task("query:QA").slack == pytest.approx(2.0)
        assert report.task("query:QB").slack == pytest.approx(0.0)
        assert report.task("spool:E1").slack == pytest.approx(0.0)
        assert report.task("spool:E1").on_critical_path
        assert not report.task("query:QA").on_critical_path

    def test_flow_edges_are_per_read(self, diamond_trace):
        report = analyze(diamond_trace)
        assert sorted(report.flow_edges) == [
            ("spool:E1", "query:QA"),
            ("spool:E1", "query:QB"),
        ]
        assert report.task("query:QA").deps == {"spool:E1"}

    def test_flow_event_finds_consumer_through_nested_spans(self):
        # The spool read happens inside an op:* span inside the query
        # span; the consumer is found by walking the parent chain.
        events = [
            _span("spool_materialize", 1, None, 0.0, 1.0, spool="E1"),
            _span("query", 2, None, 1.0, 1.0, name="Q"),
            _span("op:HashJoin", 3, 2, 1.0, 0.5),
            _point("spool_flow", 4, 3, 1.1, spool="E1", from_span=1),
        ]
        report = analyze(events)
        assert report.flow_edges == [("spool:E1", "query:Q")]

    def test_empty_trace(self):
        report = analyze([])
        assert report.tasks == []
        assert report.critical_path == []
        assert "nothing to analyze" in render_critical_path(report)


class TestOrphans:
    def test_detached_span_is_an_orphan(self, diamond_trace):
        stray = _span("query", 99, 98, 0.0, 1.0, name="stray")
        events = diamond_trace + [stray]
        orphans = find_orphans(events, root_span_id=1)
        assert orphans == [stray]
        assert find_orphans(diamond_trace, root_span_id=1) == []

    def test_roots(self, diamond_trace):
        assert [e["span_id"] for e in find_roots(diamond_trace)] == [1]


class TestAttribution:
    def test_self_time_subtracts_children(self):
        events = [
            _span("query", 1, None, 0.0, 4.0, name="Q"),
            _span("op:Scan", 2, 1, 0.0, 1.5),
            _span("op:Scan", 3, 1, 1.5, 1.5),
        ]
        by_name = {a.name: a for a in operator_attribution(events)}
        assert by_name["query"].self_time == pytest.approx(1.0)
        assert by_name["query"].total == pytest.approx(4.0)
        assert by_name["op:Scan"].count == 2
        assert by_name["op:Scan"].self_time == pytest.approx(3.0)

    def test_sorted_by_self_time_descending(self):
        events = [
            _span("slow", 1, None, 0.0, 5.0),
            _span("fast", 2, None, 0.0, 1.0),
        ]
        assert [a.name for a in operator_attribution(events)] == [
            "slow", "fast",
        ]


class TestRendering:
    def test_critical_path_report_text(self, diamond_trace):
        text = render_critical_path(analyze(diamond_trace))
        assert "Critical path (2 task(s), 5000.00ms of 5200.00ms batch" in text
        assert "* spool:E1" in text
        assert "deps [spool:E1]" in text

    def test_summary_text(self, diamond_trace):
        trace = TraceData(header=None, events=diamond_trace)
        text = render_summary(trace)
        assert "6 event(s), 4 span(s), 3 thread(s)" in text
        assert "spool:E1 -> query:QB" in text
        assert "Span self-time attribution:" in text


class TestChromeExport:
    def test_slices_instants_lanes_and_flows(self, diamond_trace):
        header = {"type": "trace_header", "version": 1, "pid": 42,
                  "wall_time_unix": 1.0, "perf_counter_epoch": 2.0}
        payload = to_chrome_trace(diamond_trace, header)
        events = payload["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # 1 process_name + 3 thread lanes; 4 slices; 2 instants; 2 flows.
        assert len(by_ph["M"]) == 4
        assert len(by_ph["X"]) == 4
        assert len(by_ph["i"]) == 2
        assert len(by_ph["s"]) == len(by_ph["f"]) == 2
        assert all(e["pid"] == 42 for e in events)
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in by_ph["M"]
            if e["name"] == "thread_name"
        }
        assert lanes["MainThread"] == 1  # first speaker claims lane 1
        assert set(lanes) == {
            "MainThread", "repro-worker_0", "repro-worker_1",
        }
        assert payload["otherData"] == {
            "version": 1, "pid": 42, "wall_time_unix": 1.0,
            "perf_counter_epoch": 2.0,
        }

    def test_flow_arrow_spans_producer_to_consumer_lane(self, diamond_trace):
        payload = to_chrome_trace(diamond_trace)
        flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], {})[event["ph"]] = event
        for pair in by_id.values():
            start, finish = pair["s"], pair["f"]
            assert start["name"] == finish["name"] == "spool E1"
            # Leaves the producer slice's end on the producer's lane.
            assert start["tid"] == 1
            assert start["ts"] == pytest.approx(2.0 * 1e6)
            assert finish["bp"] == "e"
            assert finish["tid"] in (2, 3)
            assert finish["ts"] > start["ts"]

    def test_render_round_trips_as_json(self, diamond_trace):
        parsed = json.loads(render_chrome_trace(diamond_trace))
        assert parsed["displayTimeUnit"] == "ms"
        assert "otherData" not in parsed


class TestLoadTrace:
    def test_header_and_events_split(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps({"type": "trace_header", "version": 1}),
            json.dumps(_span("batch", 1, None, 0.0, 1.0)),
            "",
            json.dumps(_point("mark", 2, 1, 0.5)),
        ]
        path.write_text("\n".join(lines) + "\n")
        trace = load_trace(str(path))
        assert trace.header == {"type": "trace_header", "version": 1}
        assert [e["name"] for e in trace.events] == ["batch", "mark"]

    def test_headerless_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_span("batch", 1, None, 0.0, 1.0)) + "\n")
        trace = load_trace(str(path))
        assert trace.header is None
        assert len(trace.events) == 1
