"""Delete maintenance: subtracting deltas from materialized views."""

import numpy as np
import pytest

from repro import OptimizerOptions
from repro.catalog.tpch import build_tpch_database
from repro.errors import CatalogError, UnsupportedFeatureError
from repro.views.maintenance import MaintenancePlanner
from repro.views.materialized import ViewManager

SUM_VIEW = (
    "select c_nationkey, sum(l_extendedprice) as le, count(*) as n "
    "from customer, orders, lineitem "
    "where c_custkey = o_custkey and o_orderkey = l_orderkey "
    "group by c_nationkey"
)

MINMAX_VIEW = (
    "select c_nationkey, max(o_totalprice) as hi "
    "from customer, orders where c_custkey = o_custkey "
    "group by c_nationkey"
)

SPJ_VIEW = "select c_custkey, c_nationkey from customer where c_nationkey < 5"


@pytest.fixture()
def db():
    return build_tpch_database(scale_factor=0.001)


def _existing_customers(db, count=20):
    table = db.table("customer")
    return [table.row(i) for i in range(count)]


def _view_dict(view):
    table = view.contents
    rows = list(zip(*[table.column(n).tolist() for n in table.column_names]))
    key_count = sum(
        1 for o in view.query.block.output if not o.expr.contains_aggregate()
    )
    return {
        tuple(r[:key_count]): tuple(
            round(v, 4) if isinstance(v, float) else v for v in r[key_count:]
        )
        for r in rows
    }


class TestDeleteMaintenance:
    def test_delete_equals_recompute(self, db):
        manager = ViewManager(db)
        manager.create_view("v", SUM_VIEW)
        manager.refresh("v")
        rows = _existing_customers(db, 25)
        planner = MaintenancePlanner(db, manager)
        outcome = planner.apply_delete("customer", rows)
        assert outcome.delta_rows == 25
        incremental = _view_dict(manager.view("v"))
        fresh = ViewManager(db)
        fresh.create_view("f", SUM_VIEW)
        fresh.refresh("f")
        assert incremental == _view_dict(fresh.view("f"))

    def test_base_table_shrinks(self, db):
        manager = ViewManager(db)
        manager.create_view("v", SUM_VIEW)
        manager.refresh("v")
        before = db.table("customer").row_count
        MaintenancePlanner(db, manager).apply_delete(
            "customer", _existing_customers(db, 10)
        )
        assert db.table("customer").row_count == before - 10

    def test_insert_then_delete_roundtrip(self, db):
        manager = ViewManager(db)
        manager.create_view("v", SUM_VIEW)
        manager.refresh("v")
        baseline = _view_dict(manager.view("v"))
        planner = MaintenancePlanner(db, manager)
        new_rows = [
            (10_000_000 + i, f"Customer#{i}", i % 25, "BUILDING", 10.0)
            for i in range(15)
        ]
        planner.apply_insert("customer", new_rows)
        planner.apply_delete("customer", new_rows)
        assert _view_dict(manager.view("v")) == baseline

    def test_minmax_view_rejected(self, db):
        manager = ViewManager(db)
        manager.create_view("v", MINMAX_VIEW)
        manager.refresh("v")
        with pytest.raises(UnsupportedFeatureError):
            MaintenancePlanner(db, manager).apply_delete(
                "customer", _existing_customers(db, 1)
            )

    def test_spj_view_delete(self, db):
        manager = ViewManager(db)
        manager.create_view("flat", SPJ_VIEW)
        manager.refresh("flat")
        before = manager.view("flat").contents.row_count
        rows = _existing_customers(db, 30)
        matching = sum(1 for r in rows if r[2] < 5)
        assert matching > 0
        MaintenancePlanner(db, manager).apply_delete("customer", rows)
        assert manager.view("flat").contents.row_count == before - matching

    def test_groups_vanish_at_zero_count(self, db):
        manager = ViewManager(db)
        manager.create_view(
            "v",
            "select c_custkey, sum(o_totalprice) as t, count(*) as n "
            "from customer, orders where c_custkey = o_custkey "
            "group by c_custkey",
        )
        manager.refresh("v")
        table = db.table("customer")
        victim = table.row(0)
        groups_before = _view_dict(manager.view("v"))
        MaintenancePlanner(db, manager).apply_delete("customer", [victim])
        groups_after = _view_dict(manager.view("v"))
        if (victim[0],) in groups_before:
            assert (victim[0],) not in groups_after

    def test_delete_shares_cse_across_views(self, db):
        manager = ViewManager(db)
        manager.create_view("v1", SUM_VIEW)
        manager.create_view(
            "v2", SUM_VIEW.replace("c_nationkey", "c_mktsegment")
        )
        manager.refresh_all()
        planner = MaintenancePlanner(db, manager)
        outcome = planner.apply_delete("customer", _existing_customers(db, 40))
        assert outcome.optimization.stats.used_cses
