"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


SF = "0.001"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_flags(self):
        args = build_parser().parse_args(
            ["--sf", "0.02", "query", "--no-cse", "select 1 from region"]
        )
        assert args.sf == 0.02
        assert args.no_cse is True

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "bogus"])


class TestQueryCommand:
    def test_simple_query(self):
        code, output = run_cli(
            "--sf", SF, "query", "select r_name from region"
        )
        assert code == 0
        assert "AFRICA" in output
        assert "estimated cost" in output

    def test_batch_with_sharing(self):
        sql = (
            "select c_nationkey, sum(l_extendedprice) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_nationkey;"
            "select c_mktsegment, sum(l_quantity) as v "
            "from customer, orders, lineitem "
            "where c_custkey = o_custkey and o_orderkey = l_orderkey "
            "group by c_mktsegment"
        )
        code, output = run_cli("--sf", SF, "query", sql)
        assert code == 0
        assert "CSEs used: ['E" in output
        assert "spool(s)" in output

    def test_row_limit(self):
        code, output = run_cli(
            "--sf", SF, "query", "--rows", "2", "select n_name from nation"
        )
        assert code == 0
        assert "... 23 more" in output

    def test_no_cse_flag(self):
        code, output = run_cli(
            "--sf", SF, "query", "--no-cse", "select r_name from region"
        )
        assert code == 0
        assert "CSEs used: none" in output

    def test_compare(self):
        code, output = run_cli(
            "--sf", SF, "query", "--compare",
            "select c_nationkey, sum(c_acctbal) as v from customer "
            "group by c_nationkey",
        )
        assert code == 0
        assert "No CSE" in output and "Using CSEs" in output

    def test_bad_sql_reports_error(self, capsys):
        code, _ = run_cli("--sf", SF, "query", "selecct nonsense")
        assert code == 1


class TestExplainCommand:
    def test_explain(self):
        code, output = run_cli(
            "--sf", SF, "explain",
            "select c_nationkey, sum(c_acctbal) as v from customer "
            "group by c_nationkey",
        )
        assert code == 0
        assert "HashAgg" in output and "Scan customer" in output


class TestBenchCommand:
    def test_table1(self):
        code, output = run_cli("--sf", SF, "bench", "table1")
        assert code == 0
        assert "Table 1" in output and "# of CSEs" in output

    def test_fig8(self):
        code, output = run_cli("--sf", SF, "bench", "fig8")
        assert code == 0
        assert output.count("\n") >= 5


class TestBenchAll:
    def test_report(self):
        code, output = run_cli("--sf", SF, "bench", "all")
        assert code == 0
        assert "# Experiment report" in output
        assert "Table 1" in output and "Figure 8" in output
        assert "View maintenance" in output


class TestParallelFlag:
    def test_parallel_query_matches_serial(self):
        from repro.workloads import example1_batch

        sql = example1_batch()
        code_serial, serial = run_cli("--sf", SF, "query", sql)
        code_parallel, parallel = run_cli(
            "--sf", SF, "query", "--parallel", "4", sql
        )
        assert code_serial == code_parallel == 0
        assert parallel == serial  # byte-identical report

    def test_parallel_metrics_counters(self):
        code, output = run_cli(
            "--sf", SF, "query", "--parallel", "2", "--metrics",
            "select r_name from region",
        )
        assert code == 0
        assert "executor.parallel_batches = 1" in output
