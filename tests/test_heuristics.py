"""Unit tests for the pruning heuristics (paper §4.3, Examples 5-9)."""

import itertools

import pytest

from repro.cse.construct import construct_cse
from repro.cse.heuristics import (
    candidate_total_cost,
    cse_usage_cost,
    heuristic1_keep,
    heuristic2_filter,
    heuristic4_filter,
    is_contained,
    merge_benefit,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.engine import Optimizer
from repro.optimizer.memo import Group, Memo
from repro.optimizer.options import OptimizerOptions
from repro.sql.binder import bind_batch
from repro.workloads import example1_batch


def _group(gid, rows, width, lower, upper=None):
    group = Group(
        gid=gid, kind="join", block=None, part_id="x",
        items=frozenset(), tables=frozenset(),
    )
    group.est_rows = rows
    group.row_width = width
    group.lower_bound = lower
    group.upper_bound = upper if upper is not None else lower
    return group


class TestHeuristic1:
    def test_cheap_consumers_pruned(self):
        consumers = [_group(1, 100, 8, 1.0), _group(2, 100, 8, 1.5)]
        assert not heuristic1_keep(consumers, batch_cost=1000.0, alpha=0.10)

    def test_expensive_consumers_kept(self):
        consumers = [_group(1, 100, 8, 60.0), _group(2, 100, 8, 55.0)]
        assert heuristic1_keep(consumers, batch_cost=1000.0, alpha=0.10)

    def test_boundary_inclusive(self):
        consumers = [_group(1, 100, 8, 50.0), _group(2, 100, 8, 50.0)]
        assert heuristic1_keep(consumers, batch_cost=1000.0, alpha=0.10)

    def test_alpha_zero_keeps_everything(self):
        consumers = [_group(1, 100, 8, 0.0)]
        assert heuristic1_keep(consumers, batch_cost=1000.0, alpha=0.0)


class TestHeuristic2:
    def test_huge_cheap_result_excluded(self):
        """Example 6's Q4: 'select *' — cheap to compute, huge to spool."""
        cost_model = CostModel()
        # Very wide result, cheap upper bound.
        huge = _group(1, 100_000, 400, lower=10.0, upper=10.0)
        kept = heuristic2_filter([huge, huge], cost_model)
        assert kept == []

    def test_expensive_small_result_kept(self):
        cost_model = CostModel()
        good = _group(1, 100, 24, lower=500.0, upper=500.0)
        kept = heuristic2_filter([good, good], cost_model)
        assert len(kept) == 2

    def test_mixed(self):
        cost_model = CostModel()
        good = _group(1, 100, 24, lower=500.0, upper=500.0)
        bad = _group(2, 200_000, 400, lower=5.0, upper=5.0)
        kept = heuristic2_filter([good, bad, good], cost_model)
        assert all(g.est_rows == 100 for g in kept)

    def test_empty_input(self):
        assert heuristic2_filter([], CostModel()) == []


class TestMergeBenefit:
    """Heuristic 3 (§4.3.3, Example 7)."""

    @pytest.fixture()
    def example1_memo(self, small_db):
        memo = Memo(CardinalityEstimator(small_db), OptimizerOptions())
        batch = bind_batch(small_db.catalog, example1_batch())
        tops = [memo.build_block(q.block, q.name) for q in batch.queries]
        memo.build_root(tops)
        # Populate bounds the way normal optimization would.
        optimizer = Optimizer(small_db)
        optimizer.optimize(bind_batch(small_db.catalog, example1_batch()))
        for g in memo.groups:
            if g.kind != "root":
                g.lower_bound = g.upper_bound = g.est_rows * 0.1 + 10.0
        return memo, tops

    def test_merging_similar_consumers_beneficial(self, example1_memo, small_db):
        memo, tops = example1_memo
        counter = itertools.count(5000)
        alloc = lambda: next(counter)
        estimator = CardinalityEstimator(small_db)
        cost_model = CostModel()
        single_a = construct_cse("A", [tops[0]], memo.block_infos, alloc, estimator)
        single_b = construct_cse("B", [tops[1]], memo.block_infos, alloc, estimator)
        merged = construct_cse(
            "M", [tops[0], tops[1]], memo.block_infos, alloc, estimator
        )
        delta = merge_benefit(merged, [single_a, single_b], cost_model)
        assert delta > 0  # sharing one evaluation of the same join pays off

    def test_usage_cost_components(self, example1_memo, small_db):
        memo, tops = example1_memo
        counter = itertools.count(6000)
        estimator = CardinalityEstimator(small_db)
        definition = construct_cse(
            "C", [tops[0], tops[1]], memo.block_infos,
            lambda: next(counter), estimator,
        )
        c_e, c_w, c_r = cse_usage_cost(definition, CostModel())
        assert c_e == max(g.lower_bound for g in definition.consumer_groups)
        assert c_w > 0 and c_r > 0
        total = candidate_total_cost(definition, CostModel())
        assert total == pytest.approx(c_e + c_w + 2 * c_r)


class TestHeuristic4:
    """Containment checking (Definition 4.2, Examples 8/9)."""

    @pytest.fixture()
    def candidates(self, small_db):
        optimizer = Optimizer(
            small_db, OptimizerOptions(enable_heuristics=False)
        )
        batch = bind_batch(small_db.catalog, example1_batch())
        result = optimizer.optimize(batch)
        memo = optimizer._memo
        return memo, {c.cse_id: c.definition for c in result.candidates}

    def test_join_contained_in_aggregation(self, candidates):
        """Example 9: the 3-way join candidate is contained by the
        aggregated candidate over the same tables."""
        memo, defs = candidates
        join3 = next(
            d for d in defs.values()
            if not d.has_groupby and d.signature.table_count == 3
        )
        agg3 = next(
            d for d in defs.values()
            if d.has_groupby and d.signature.table_count == 3
        )
        assert is_contained(join3, agg3, memo)
        assert not is_contained(agg3, join3, memo)

    def test_narrow_join_contained_in_wide(self, candidates):
        memo, defs = candidates
        join2 = next(
            d for d in defs.values()
            if not d.has_groupby and d.signature.table_count == 2
        )
        join3 = next(
            d for d in defs.values()
            if not d.has_groupby and d.signature.table_count == 3
        )
        assert is_contained(join2, join3, memo)

    def test_not_contained_by_itself(self, candidates):
        memo, defs = candidates
        any_def = next(iter(defs.values()))
        assert not is_contained(any_def, any_def, memo)

    def test_filter_prunes_to_aggregated_candidate(self, candidates):
        """With β=90% only the small aggregated candidate survives
        containment (the paper's Figure 6 outcome before Heuristic 1)."""
        memo, defs = candidates
        survivors = heuristic4_filter(list(defs.values()), memo, beta=0.90)
        assert len(survivors) < len(defs)
        agg3 = next(
            d for d in defs.values()
            if d.has_groupby and d.signature.table_count == 3
        )
        assert agg3 in survivors
        join3 = next(
            d for d in defs.values()
            if not d.has_groupby and d.signature.table_count == 3
        )
        assert join3 not in survivors

    def test_beta_huge_keeps_contained(self, candidates):
        memo, defs = candidates
        survivors = heuristic4_filter(
            list(defs.values()), memo, beta=1e9
        )
        assert len(survivors) == len(defs)
