"""Unit tests for the binder (SQL ASTs → bound query blocks)."""

import pytest

from repro.errors import BindError, UnsupportedFeatureError
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    Arithmetic,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.logical.blocks import ScalarSubquery
from repro.sql.binder import bind_batch, bind_sql
from repro.types import DataType, date_to_int


@pytest.fixture()
def catalog(tiny_db):
    return tiny_db.catalog


class TestNameResolution:
    def test_qualified_columns(self, catalog):
        query = bind_sql(
            catalog,
            "select c.c_custkey from customer c where c.c_nationkey = 3",
        )
        out = query.block.output[0]
        assert out.name == "c_custkey"
        assert isinstance(out.expr, ColumnRef)
        assert out.expr.data_type is DataType.INT

    def test_unqualified_unique(self, catalog):
        query = bind_sql(
            catalog, "select c_name from customer, orders where c_custkey = o_custkey"
        )
        assert query.block.output[0].expr.column == "c_name"

    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select nope from customer")

    def test_unknown_table(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select 1 from ghost_table")

    def test_duplicate_alias(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select 1 from customer c, orders c")

    def test_instances_unique_per_reference(self, catalog):
        batch = bind_batch(
            catalog,
            "select c_custkey from customer; select c_name from customer",
        )
        t1 = batch.queries[0].block.tables[0]
        t2 = batch.queries[1].block.tables[0]
        assert t1.table == t2.table == "customer"
        assert t1.instance != t2.instance

    def test_star_expansion(self, catalog):
        query = bind_sql(catalog, "select * from region")
        assert query.block.output_names() == [
            "r_regionkey", "r_name", "r_comment",
        ]

    def test_qualified_star(self, catalog):
        query = bind_sql(
            catalog,
            "select n.* from nation n, region r where n_regionkey = r_regionkey",
        )
        assert query.block.output_names() == [
            "n_nationkey", "n_name", "n_regionkey", "n_comment",
        ]


class TestPredicates:
    def test_date_coercion(self, catalog):
        query = bind_sql(
            catalog,
            "select o_orderkey from orders where o_orderdate < '1996-07-01'",
        )
        conjunct = query.block.conjuncts[0]
        assert isinstance(conjunct, Comparison)
        assert conjunct.right == Literal(date_to_int("1996-07-01"), DataType.DATE)
        assert conjunct.right.data_type is DataType.DATE

    def test_type_mismatch_rejected(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select 1 from customer where c_name > 5")

    def test_malformed_date_literal_is_a_bind_error(self, catalog):
        """A bad ISO string fails coercion, falls through to the
        comparability check, and surfaces as BindError — not as a raw
        ValueError from date parsing."""
        with pytest.raises(BindError, match="cannot compare"):
            bind_sql(
                catalog,
                "select o_orderkey from orders "
                "where o_orderdate < 'not-a-date'",
            )

    def test_unexpected_coercion_failure_propagates(
        self, catalog, monkeypatch
    ):
        """Only the expected conversion errors are swallowed during date
        coercion; a genuine defect (here an injected KeyError) must
        propagate instead of being masked as a type error."""
        from repro.sql import binder as binder_module

        def broken(value):
            raise KeyError("injected defect in date conversion")

        monkeypatch.setattr(binder_module, "date_to_int", broken)
        with pytest.raises(KeyError, match="injected defect"):
            bind_sql(
                catalog,
                "select o_orderkey from orders "
                "where o_orderdate < '1996-07-01'",
            )

    def test_between_expansion(self, catalog):
        query = bind_sql(
            catalog,
            "select c_custkey from customer where c_nationkey between 3 and 7",
        )
        assert len(query.block.conjuncts) == 2

    def test_in_expansion(self, catalog):
        query = bind_sql(
            catalog,
            "select c_custkey from customer where c_mktsegment in "
            "('BUILDING', 'MACHINERY')",
        )
        assert len(query.block.conjuncts) == 1  # a single OR conjunct

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select 1 from customer where sum(c_acctbal) > 5")


class TestAggregation:
    def test_aggregates_collected(self, catalog):
        query = bind_sql(
            catalog,
            "select c_nationkey, sum(c_acctbal) as total, count(*) as n "
            "from customer group by c_nationkey",
        )
        block = query.block
        assert block.group_keys[0].column == "c_nationkey"
        assert AggExpr(AggFunc.SUM, block.output[1].expr.arg) in block.aggregates
        assert AggExpr(AggFunc.COUNT, None) in block.aggregates

    def test_count_column_normalized_to_count_star(self, catalog):
        query = bind_sql(
            catalog, "select count(c_custkey) as n from customer"
        )
        assert query.block.output[0].expr == AggExpr(AggFunc.COUNT, None)

    def test_avg_rewritten(self, catalog):
        query = bind_sql(catalog, "select avg(c_acctbal) as a from customer")
        out = query.block.output[0].expr
        assert isinstance(out, Arithmetic)
        aggs = set(query.block.aggregates)
        assert AggExpr(AggFunc.COUNT, None) in aggs
        assert any(a.func is AggFunc.SUM for a in aggs)

    def test_ungrouped_column_rejected(self, catalog):
        with pytest.raises(BindError):
            bind_sql(
                catalog,
                "select c_name, sum(c_acctbal) from customer group by c_nationkey",
            )

    def test_scalar_aggregate_block(self, catalog):
        query = bind_sql(catalog, "select sum(c_acctbal) as t from customer")
        assert query.block.group_keys == ()
        assert query.block.has_groupby

    def test_having_over_aggregate(self, catalog):
        query = bind_sql(
            catalog,
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey having sum(c_acctbal) > 100",
        )
        assert len(query.block.having) == 1

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            bind_sql(catalog, "select sum(sum(c_acctbal)) from customer")

    def test_distinct_rejected(self, catalog):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(catalog, "select count(distinct c_custkey) from customer")


class TestSubqueries:
    def test_scalar_subquery_in_having(self, catalog):
        query = bind_sql(
            catalog,
            "select c_nationkey, sum(c_acctbal) as t from customer "
            "group by c_nationkey "
            "having sum(c_acctbal) > (select sum(o_totalprice) / 25 from orders)",
        )
        assert len(query.subqueries) == 1
        sid, block = next(iter(query.subqueries.items()))
        assert block.has_groupby and not block.group_keys
        having = query.block.having[0]
        assert any(isinstance(n, ScalarSubquery) for n in having.walk())

    def test_non_scalar_subquery_rejected(self, catalog):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                catalog,
                "select c_custkey from customer where c_nationkey > "
                "(select n_nationkey from nation group by n_nationkey)",
            )

    def test_non_aggregated_subquery_rejected(self, catalog):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                catalog,
                "select c_custkey from customer where c_nationkey > "
                "(select n_nationkey from nation)",
            )


class TestWithClause:
    def test_spj_cte_inlined(self, catalog):
        query = bind_sql(
            catalog,
            "with co as (select c_nationkey, o_orderkey from customer, orders "
            "where c_custkey = o_custkey) "
            "select co.c_nationkey, sum(l_extendedprice) as le "
            "from co, lineitem where co.o_orderkey = l_orderkey "
            "group by co.c_nationkey",
        )
        tables = sorted(t.table for t in query.block.tables)
        assert tables == ["customer", "lineitem", "orders"]
        # The CTE's join predicate travelled into the block.
        assert any(
            getattr(c, "is_column_equality", False) for c in query.block.conjuncts
        )

    def test_cte_referenced_twice_duplicates_instances(self, catalog):
        query = bind_sql(
            catalog,
            "with co as (select c_custkey as k from customer) "
            "select a.k from co a, co b where a.k = b.k",
        )
        tables = [t.table for t in query.block.tables]
        assert tables == ["customer", "customer"]
        assert query.block.tables[0].instance != query.block.tables[1].instance

    def test_grouped_cte_rejected(self, catalog):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(
                catalog,
                "with v as (select c_nationkey, sum(c_acctbal) as t "
                "from customer group by c_nationkey) select v.t from v",
            )


class TestOrderBy:
    def test_order_by_alias(self, catalog):
        query = bind_sql(
            catalog,
            "select c_nationkey, sum(c_acctbal) as total from customer "
            "group by c_nationkey order by total desc",
        )
        expr, descending = query.order_by[0]
        assert descending
        assert expr == query.block.output[1].expr

    def test_order_by_output_column(self, catalog):
        query = bind_sql(
            catalog, "select c_custkey from customer order by c_custkey"
        )
        assert query.order_by[0][0] == query.block.output[0].expr

    def test_order_by_non_output_rejected(self, catalog):
        with pytest.raises(UnsupportedFeatureError):
            bind_sql(catalog, "select c_custkey from customer order by c_name")
