"""The adapted TPC-H queries: they bind, optimize, execute, and match the
oracle — individually and as sharing batches."""

import pytest

from repro import OptimizerOptions, Session
from repro.executor.reference import evaluate_batch
from repro.workloads.tpch_queries import (
    ADAPTED_QUERIES,
    SHARING_PAIRS,
    adapted_batch,
    adapted_query,
)


def normalize(rows):
    return sorted(
        [
            tuple(round(v, 3) if isinstance(v, float) else v for v in row)
            for row in rows
        ],
        key=repr,
    )


class TestIndividualQueries:
    @pytest.mark.parametrize("name", sorted(ADAPTED_QUERIES))
    def test_matches_oracle(self, tiny_db, name):
        session = Session(tiny_db)
        batch = session.bind(adapted_query(name))
        outcome = session.execute(batch)
        oracle = evaluate_batch(session.database, batch)
        got = normalize(outcome.execution.results[0].rows)
        want = normalize(oracle["Q1"])
        assert got == want, name

    @pytest.mark.parametrize("name", sorted(ADAPTED_QUERIES))
    def test_positive_costs(self, tiny_db, name):
        result = Session(tiny_db).optimize(adapted_query(name))
        assert result.est_cost > 0

    def test_q1_order_by_returnflag(self, tiny_db):
        outcome = Session(tiny_db).execute(adapted_query("Q1"))
        flags = [row[0] for row in outcome.execution.results[0].rows]
        assert flags == sorted(flags)

    def test_q6_is_scalar(self, tiny_db):
        outcome = Session(tiny_db).execute(adapted_query("Q6"))
        assert outcome.execution.results[0].row_count == 1

    def test_q19_disjunction(self, tiny_db):
        outcome = Session(tiny_db).execute(adapted_query("Q19"))
        assert outcome.execution.results[0].row_count == 1


class TestSharingBatches:
    @pytest.mark.parametrize("pair", SHARING_PAIRS, ids=lambda p: "+".join(p))
    def test_pairs_share_and_match_oracle(self, small_db, pair):
        sql = adapted_batch(*pair)
        session = Session(small_db)
        batch = session.bind(sql)
        result = session.optimize(batch)
        # The pairs are chosen to present sharable signatures.
        assert result.stats.sharable_buckets >= 1
        outcome = session.execute_bundle(result)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = normalize(outcome.query(query.name).rows)
            want = normalize(oracle[query.name])
            assert got == want

    def test_full_suite_batch_runs(self, tiny_db):
        session = Session(tiny_db)
        batch = session.bind(adapted_batch())
        outcome = session.execute(batch)
        assert len(outcome.execution.results) == len(ADAPTED_QUERIES)
        oracle = evaluate_batch(session.database, batch)
        for query in batch.queries:
            got = normalize(outcome.execution.query(query.name).rows)
            want = normalize(oracle[query.name])
            assert got == want

    def test_q3_q10_sharing_reduces_cost(self, small_db):
        sql = adapted_batch("Q3", "Q10")
        shared = Session(small_db).optimize(sql)
        base = Session(small_db, OptimizerOptions(enable_cse=False)).optimize(sql)
        # The optimizer may or may not find sharing beneficial here; it must
        # never be worse, and candidates must exist.
        assert shared.est_cost <= base.est_cost + 1e-6
