"""Executor tests: operator semantics and full-bundle execution vs oracle."""

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.errors import ExecutionError
from repro.executor.executor import Executor, bind_scalars
from repro.executor.iterators import execute_node, materialize_spool
from repro.executor.reference import evaluate_batch, evaluate_query
from repro.executor.runtime import ExecutionContext
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.logical.blocks import OutputColumn, ScalarSubquery
from repro.optimizer.aggs import AggCompute
from repro.optimizer.physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
)
from repro.types import DataType


def ctx_for(db):
    return ExecutionContext(database=db)


def cust_ref():
    return TableRef("customer", 1, alias="c")


def ccol(name, dtype=DataType.INT):
    return ColumnRef(cust_ref(), name, dtype)


class TestOperators:
    def test_scan_outputs_and_filter(self, tiny_db):
        key = ccol("c_custkey")
        nation = ccol("c_nationkey")
        scan = PhysScan(
            table_ref=cust_ref(),
            conjuncts=(eq(nation, Literal(3)),),
            outputs=(key,),
            est_rows=10,
        )
        frame = execute_node(scan, ctx_for(tiny_db))
        assert set(frame) == {key}
        expected = np.count_nonzero(
            tiny_db.table("customer").column("c_nationkey") == 3
        )
        assert len(frame[key]) == expected

    def test_scan_filter_column_not_in_outputs(self, tiny_db):
        # The filter references a column that is not produced.
        key = ccol("c_custkey")
        scan = PhysScan(
            table_ref=cust_ref(),
            conjuncts=(gt(ccol("c_acctbal", DataType.FLOAT), Literal(0.0)),),
            outputs=(key,),
        )
        frame = execute_node(scan, ctx_for(tiny_db))
        assert set(frame) == {key}

    def test_index_scan_matches_filter_scan(self, tiny_db):
        orders = TableRef("orders", 2, alias="o")
        okey = ColumnRef(orders, "o_orderkey", DataType.INT)
        odate = ColumnRef(orders, "o_orderdate", DataType.DATE)
        from repro.types import date_to_int

        cut = date_to_int("1993-01-01")
        index_scan = PhysIndexScan(
            table_ref=orders,
            column=odate,
            low=None,
            high=float(cut),
            low_inclusive=True,
            high_inclusive=False,
            residual=(),
            outputs=(okey,),
        )
        plain = PhysScan(
            table_ref=orders,
            conjuncts=(lt(odate, Literal(cut, DataType.DATE)),),
            outputs=(okey,),
        )
        via_index = execute_node(index_scan, ctx_for(tiny_db))
        via_scan = execute_node(plain, ctx_for(tiny_db))
        assert sorted(via_index[okey].tolist()) == sorted(via_scan[okey].tolist())

    def test_hash_join_and_cross_join(self, tiny_db):
        nation = TableRef("nation", 3)
        region = TableRef("region", 4)
        nkey = ColumnRef(nation, "n_regionkey", DataType.INT)
        nname = ColumnRef(nation, "n_name", DataType.STRING)
        rkey = ColumnRef(region, "r_regionkey", DataType.INT)
        rname = ColumnRef(region, "r_name", DataType.STRING)
        left = PhysScan(region, (), (rkey, rname), est_rows=5)
        right = PhysScan(nation, (), (nkey, nname), est_rows=25)
        join = PhysHashJoin(
            left=left, right=right, keys=((rkey, nkey),),
            residual=(), outputs=(rname, nname),
        )
        frame = execute_node(join, ctx_for(tiny_db))
        assert len(frame[nname]) == 25  # every nation matches one region
        cross = PhysHashJoin(
            left=left, right=right, keys=(), residual=(),
            outputs=(rname, nname),
        )
        frame = execute_node(cross, ctx_for(tiny_db))
        assert len(frame[nname]) == 125

    def test_join_residual(self, tiny_db):
        nation = TableRef("nation", 3)
        region = TableRef("region", 4)
        nkey = ColumnRef(nation, "n_regionkey", DataType.INT)
        rkey = ColumnRef(region, "r_regionkey", DataType.INT)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        join = PhysHashJoin(
            left=PhysScan(region, (), (rkey,)),
            right=PhysScan(nation, (), (nkey, nid)),
            keys=((rkey, nkey),),
            residual=(gt(nid, Literal(10)),),
            outputs=(nid,),
        )
        frame = execute_node(join, ctx_for(tiny_db))
        assert (frame[nid] > 10).all()

    def test_hash_agg_sums(self, tiny_db):
        nation = TableRef("nation", 3)
        nreg = ColumnRef(nation, "n_regionkey", DataType.INT)
        count = AggExpr(AggFunc.COUNT, None)
        agg = PhysHashAgg(
            child=PhysScan(nation, (), (nreg,)),
            keys=(nreg,),
            computes=(AggCompute(out=count, func=AggFunc.COUNT, arg=None),),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert int(frame[count].sum()) == 25
        assert len(frame[nreg]) == 5

    def test_scalar_agg_over_empty_input(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        count = AggExpr(AggFunc.COUNT, None)
        agg = PhysHashAgg(
            child=PhysScan(nation, (eq(nid, Literal(-1)),), (nid,)),
            keys=(),
            computes=(AggCompute(out=count, func=AggFunc.COUNT, arg=None),),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert frame[count].tolist() == [0]

    def test_min_max_aggregates(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        mn = AggExpr(AggFunc.MIN, nid)
        mx = AggExpr(AggFunc.MAX, nid)
        agg = PhysHashAgg(
            child=PhysScan(nation, (), (nid,)),
            keys=(),
            computes=(
                AggCompute(out=mn, func=AggFunc.MIN, arg=nid),
                AggCompute(out=mx, func=AggFunc.MAX, arg=nid),
            ),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert frame[mn].tolist() == [0]
        assert frame[mx].tolist() == [24]

    def test_filter_node(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        plan = PhysFilter(
            child=PhysScan(nation, (), (nid,)),
            conjuncts=(lt(nid, Literal(5)),),
        )
        frame = execute_node(plan, ctx_for(tiny_db))
        assert sorted(frame[nid].tolist()) == [0, 1, 2, 3, 4]

    def test_spool_materialize_and_read(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        body = PhysProject(
            child=PhysScan(nation, (lt(nid, Literal(3)),), (nid,)),
            outputs=(OutputColumn("k0", nid),),
        )
        ctx = ctx_for(tiny_db)
        worktable = materialize_spool("E1", body, ctx)
        assert worktable.row_count == 3
        assert ctx.metrics.spools_materialized == 1
        from repro.optimizer.physical import PhysSpoolRead

        ctx.spools["E1"] = worktable
        read = PhysSpoolRead("E1", (("k0", nid),))
        frame = execute_node(read, ctx)
        assert sorted(frame[nid].tolist()) == [0, 1, 2]

    def test_spool_read_before_materialize_fails(self, tiny_db):
        from repro.optimizer.physical import PhysSpoolRead

        read = PhysSpoolRead("ghost", ())
        with pytest.raises(ExecutionError):
            execute_node(read, ctx_for(tiny_db))


class TestBindScalars:
    def test_filter_rebound(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        sub = ScalarSubquery("sq1", DataType.INT)
        plan = PhysProject(
            child=PhysFilter(
                child=PhysScan(nation, (), (nid,)),
                conjuncts=(lt(nid, sub),),
            ),
            outputs=(OutputColumn("n", nid),),
        )
        bound = bind_scalars(plan, {sub: Literal(4)})
        frame = execute_node(bound.child, ctx_for(tiny_db))
        assert sorted(frame[nid].tolist()) == [0, 1, 2, 3]


class TestFullExecution:
    SQL = (
        "select c_nationkey, sum(l_extendedprice) as le "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "  and o_orderdate < '1996-07-01' "
        "group by c_nationkey;"
        "select c_mktsegment, sum(l_quantity) as lq "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "  and o_orderdate < '1996-07-01' "
        "group by c_mktsegment"
    )

    @staticmethod
    def _norm(rows):
        return sorted(
            [
                tuple(round(v, 4) if isinstance(v, float) else v for v in row)
                for row in rows
            ],
            key=repr,
        )

    def test_matches_oracle_with_cse(self, small_session):
        batch = small_session.bind(self.SQL)
        outcome = small_session.execute(batch)
        oracle = evaluate_batch(small_session.database, batch)
        for query in batch.queries:
            got = self._norm(outcome.execution.query(query.name).rows)
            want = self._norm(oracle[query.name])
            assert got == want

    def test_matches_oracle_without_cse(self, no_cse_session):
        batch = no_cse_session.bind(self.SQL)
        outcome = no_cse_session.execute(batch)
        oracle = evaluate_batch(no_cse_session.database, batch)
        for query in batch.queries:
            got = self._norm(outcome.execution.query(query.name).rows)
            want = self._norm(oracle[query.name])
            assert got == want

    def test_order_by_respected(self, small_session):
        outcome = small_session.execute(
            "select c_nationkey, sum(c_acctbal) as total from customer "
            "group by c_nationkey order by total desc"
        )
        totals = [row[1] for row in outcome.execution.results[0].rows]
        assert totals == sorted(totals, reverse=True)

    def test_metrics_accumulated(self, small_session):
        outcome = small_session.execute(self.SQL)
        metrics = outcome.execution.metrics
        assert metrics.cost_units > 0
        assert metrics.rows_scanned > 0
        assert metrics.spools_materialized == 1
        assert metrics.spool_rows_read >= 2 * metrics.spool_rows_written

    def test_spool_sharing_cheaper_than_recompute(self, small_db):
        with_cse = Session(small_db, OptimizerOptions()).execute(self.SQL)
        without = Session(
            small_db, OptimizerOptions(enable_cse=False)
        ).execute(self.SQL)
        assert (
            with_cse.execution.metrics.cost_units
            < without.execution.metrics.cost_units
        )

    def test_missing_query_name(self, small_session):
        outcome = small_session.execute("select r_name from region")
        with pytest.raises(ExecutionError):
            outcome.execution.query("nope")


# ---------------------------------------------------------------------------
# Key-factorization memoization
# ---------------------------------------------------------------------------


class TestKeyFactorCache:
    def _frames(self, seed):
        """Random left/right frames with int, NaN-bearing float, and
        string key columns (the three dtype regimes np.unique handles
        differently), plus payloads."""
        from repro.expr.expressions import ColumnRef, TableRef
        from repro.types import DataType

        rng = np.random.default_rng(seed)
        n_left, n_right = int(rng.integers(1, 60)), int(rng.integers(1, 60))
        lref, rref = TableRef("l", 1), TableRef("r", 2)

        def cols(ref, n):
            ints = rng.integers(0, 8, size=n).astype(np.int64)
            floats = rng.choice(
                [0.5, 1.5, np.nan, 2.5], size=n
            ).astype(np.float64)
            strs = rng.choice(
                np.array(["a", "b", "c"], dtype=object), size=n
            )
            return {
                ColumnRef(ref, "k1", DataType.INT): ints,
                ColumnRef(ref, "k2", DataType.FLOAT): floats,
                ColumnRef(ref, "k3", DataType.STRING): strs,
                ColumnRef(ref, "pay", DataType.INT): np.arange(
                    n, dtype=np.int64
                ),
            }

        left = cols(lref, n_left)
        right = cols(rref, n_right)
        keys = tuple(
            (lk, rk)
            for lk, rk in zip(list(left)[:3], list(right)[:3])
        )
        return left, right, keys

    def _reference_indices(self, keys, left, right):
        """The pre-cache implementation: factorize the *concatenated*
        columns directly (no per-side split, no memo)."""
        from repro.executor.iterators import _mix_codes
        from repro.expr.evaluator import evaluate, frame_length

        n_left = frame_length(left)
        n_right = frame_length(right)
        codes = None
        for l_expr, r_expr in keys:
            combined = np.concatenate(
                [evaluate(l_expr, left), evaluate(r_expr, right)]
            )
            _, inverse = np.unique(combined, return_inverse=True)
            codes = _mix_codes(codes, inverse.astype(np.int64, copy=False))
        left_codes, right_codes = codes[:n_left], codes[n_left:]
        order = np.argsort(left_codes, kind="stable")
        sorted_codes = left_codes[order]
        lo = np.searchsorted(sorted_codes, right_codes, side="left")
        hi = np.searchsorted(sorted_codes, right_codes, side="right")
        counts = hi - lo
        total = int(counts.sum())
        right_idx = np.repeat(np.arange(n_right, dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        run_offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - run_offsets
        return order[starts + within].astype(np.int64, copy=False), right_idx

    @pytest.mark.parametrize("seed", range(25))
    def test_split_factorization_matches_direct(self, seed, tiny_db):
        """The merged-uniques join path (with and without the cache)
        produces exactly the indices of the direct concatenated-unique
        factorization, over all key-column arities and dtypes."""
        from repro.executor.iterators import _equi_join_indices
        from repro.executor.runtime import KeyFactorCache

        left, right, keys = self._frames(seed)
        for arity in (1, 2, 3):
            want = self._reference_indices(keys[:arity], left, right)
            bare = _equi_join_indices(keys[:arity], left, right, None)
            ctx = ExecutionContext(
                database=tiny_db, factor_cache=KeyFactorCache()
            )
            cached = _equi_join_indices(keys[:arity], left, right, ctx)
            cached_again = _equi_join_indices(keys[:arity], left, right, ctx)
            for got in (bare, cached, cached_again):
                np.testing.assert_array_equal(got[0], want[0])
                np.testing.assert_array_equal(got[1], want[1])
            # The repeat served every per-column unique from the memo.
            assert ctx.factor_cache.reuses >= 2 * arity

    def test_cache_keys_on_identity_not_value(self):
        from repro.executor.runtime import KeyFactorCache

        cache = KeyFactorCache()
        col = np.array([3, 1, 3, 2], dtype=np.int64)
        twin = col.copy()
        u1, inv1 = cache.factorize(col)
        u2, inv2 = cache.factorize(col)
        assert u1 is u2 and inv1 is inv2
        cache.factorize(twin)  # equal values, different array: a miss
        assert cache.factorizations == 2
        assert cache.reuses == 1
        np.testing.assert_array_equal(u1, [1, 2, 3])
        np.testing.assert_array_equal(inv1, [2, 0, 2, 1])

    #: two queries over the same *unfiltered* join: both sides' key
    #: columns alias the base table arrays (``table.column`` returns the
    #: same ndarray; shared scans preserve that), so the second query's
    #: join factorizes exactly the arrays the first already memoized.
    #: CSE is off so the queries execute independently — the reuse comes
    #: purely from the batch-wide factor cache.
    SHARED_KEY_SQL = (
        "select o_orderpriority, sum(l_extendedprice) as le "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "group by o_orderpriority;"
        "select l_returnflag, max(l_discount) as md "
        "from orders, lineitem where o_orderkey = l_orderkey "
        "group by l_returnflag"
    )

    def test_shared_join_keys_hit_cache_end_to_end(self, small_db):
        """Two queries joining the same unfiltered tables on the same keys
        record factorization reuses — and rows match the oracle."""
        session = Session(small_db, OptimizerOptions(enable_cse=False))
        batch = session.bind(self.SHARED_KEY_SQL)
        outcome = session.execute(batch)
        metrics = outcome.execution.metrics
        assert metrics.key_factorizations > 0
        # Both join key columns (orders.o_orderkey, lineitem.l_orderkey)
        # were served from the memo on the second query.
        assert metrics.key_factor_reuses >= 2
        oracle = evaluate_batch(small_db, batch)
        for query in batch.queries:
            got = TestFullExecution._norm(
                outcome.execution.query(query.name).rows
            )
            assert got == TestFullExecution._norm(oracle[query.name])

    def test_parallel_matches_serial_with_cache(self, small_db):
        serial = Session(small_db, OptimizerOptions()).execute(
            TestFullExecution.SQL
        )
        parallel = Session(small_db, OptimizerOptions(), workers=4).execute(
            TestFullExecution.SQL, parallel=True
        )
        assert [
            (r.name, r.columns, r.rows) for r in serial.execution.results
        ] == [
            (r.name, r.columns, r.rows) for r in parallel.execution.results
        ]
        # The shared batch-wide cache records activity in the merged
        # metrics exactly once.
        assert parallel.execution.metrics.key_factorizations > 0
