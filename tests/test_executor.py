"""Executor tests: operator semantics and full-bundle execution vs oracle."""

import numpy as np
import pytest

from repro import OptimizerOptions, Session
from repro.errors import ExecutionError
from repro.executor.executor import Executor, bind_scalars
from repro.executor.iterators import execute_node, materialize_spool
from repro.executor.reference import evaluate_batch, evaluate_query
from repro.executor.runtime import ExecutionContext
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
    lt,
)
from repro.logical.blocks import OutputColumn, ScalarSubquery
from repro.optimizer.aggs import AggCompute
from repro.optimizer.physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
)
from repro.types import DataType


def ctx_for(db):
    return ExecutionContext(database=db)


def cust_ref():
    return TableRef("customer", 1, alias="c")


def ccol(name, dtype=DataType.INT):
    return ColumnRef(cust_ref(), name, dtype)


class TestOperators:
    def test_scan_outputs_and_filter(self, tiny_db):
        key = ccol("c_custkey")
        nation = ccol("c_nationkey")
        scan = PhysScan(
            table_ref=cust_ref(),
            conjuncts=(eq(nation, Literal(3)),),
            outputs=(key,),
            est_rows=10,
        )
        frame = execute_node(scan, ctx_for(tiny_db))
        assert set(frame) == {key}
        expected = np.count_nonzero(
            tiny_db.table("customer").column("c_nationkey") == 3
        )
        assert len(frame[key]) == expected

    def test_scan_filter_column_not_in_outputs(self, tiny_db):
        # The filter references a column that is not produced.
        key = ccol("c_custkey")
        scan = PhysScan(
            table_ref=cust_ref(),
            conjuncts=(gt(ccol("c_acctbal", DataType.FLOAT), Literal(0.0)),),
            outputs=(key,),
        )
        frame = execute_node(scan, ctx_for(tiny_db))
        assert set(frame) == {key}

    def test_index_scan_matches_filter_scan(self, tiny_db):
        orders = TableRef("orders", 2, alias="o")
        okey = ColumnRef(orders, "o_orderkey", DataType.INT)
        odate = ColumnRef(orders, "o_orderdate", DataType.DATE)
        from repro.types import date_to_int

        cut = date_to_int("1993-01-01")
        index_scan = PhysIndexScan(
            table_ref=orders,
            column=odate,
            low=None,
            high=float(cut),
            low_inclusive=True,
            high_inclusive=False,
            residual=(),
            outputs=(okey,),
        )
        plain = PhysScan(
            table_ref=orders,
            conjuncts=(lt(odate, Literal(cut, DataType.DATE)),),
            outputs=(okey,),
        )
        via_index = execute_node(index_scan, ctx_for(tiny_db))
        via_scan = execute_node(plain, ctx_for(tiny_db))
        assert sorted(via_index[okey].tolist()) == sorted(via_scan[okey].tolist())

    def test_hash_join_and_cross_join(self, tiny_db):
        nation = TableRef("nation", 3)
        region = TableRef("region", 4)
        nkey = ColumnRef(nation, "n_regionkey", DataType.INT)
        nname = ColumnRef(nation, "n_name", DataType.STRING)
        rkey = ColumnRef(region, "r_regionkey", DataType.INT)
        rname = ColumnRef(region, "r_name", DataType.STRING)
        left = PhysScan(region, (), (rkey, rname), est_rows=5)
        right = PhysScan(nation, (), (nkey, nname), est_rows=25)
        join = PhysHashJoin(
            left=left, right=right, keys=((rkey, nkey),),
            residual=(), outputs=(rname, nname),
        )
        frame = execute_node(join, ctx_for(tiny_db))
        assert len(frame[nname]) == 25  # every nation matches one region
        cross = PhysHashJoin(
            left=left, right=right, keys=(), residual=(),
            outputs=(rname, nname),
        )
        frame = execute_node(cross, ctx_for(tiny_db))
        assert len(frame[nname]) == 125

    def test_join_residual(self, tiny_db):
        nation = TableRef("nation", 3)
        region = TableRef("region", 4)
        nkey = ColumnRef(nation, "n_regionkey", DataType.INT)
        rkey = ColumnRef(region, "r_regionkey", DataType.INT)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        join = PhysHashJoin(
            left=PhysScan(region, (), (rkey,)),
            right=PhysScan(nation, (), (nkey, nid)),
            keys=((rkey, nkey),),
            residual=(gt(nid, Literal(10)),),
            outputs=(nid,),
        )
        frame = execute_node(join, ctx_for(tiny_db))
        assert (frame[nid] > 10).all()

    def test_hash_agg_sums(self, tiny_db):
        nation = TableRef("nation", 3)
        nreg = ColumnRef(nation, "n_regionkey", DataType.INT)
        count = AggExpr(AggFunc.COUNT, None)
        agg = PhysHashAgg(
            child=PhysScan(nation, (), (nreg,)),
            keys=(nreg,),
            computes=(AggCompute(out=count, func=AggFunc.COUNT, arg=None),),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert int(frame[count].sum()) == 25
        assert len(frame[nreg]) == 5

    def test_scalar_agg_over_empty_input(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        count = AggExpr(AggFunc.COUNT, None)
        agg = PhysHashAgg(
            child=PhysScan(nation, (eq(nid, Literal(-1)),), (nid,)),
            keys=(),
            computes=(AggCompute(out=count, func=AggFunc.COUNT, arg=None),),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert frame[count].tolist() == [0]

    def test_min_max_aggregates(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        mn = AggExpr(AggFunc.MIN, nid)
        mx = AggExpr(AggFunc.MAX, nid)
        agg = PhysHashAgg(
            child=PhysScan(nation, (), (nid,)),
            keys=(),
            computes=(
                AggCompute(out=mn, func=AggFunc.MIN, arg=nid),
                AggCompute(out=mx, func=AggFunc.MAX, arg=nid),
            ),
        )
        frame = execute_node(agg, ctx_for(tiny_db))
        assert frame[mn].tolist() == [0]
        assert frame[mx].tolist() == [24]

    def test_filter_node(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        plan = PhysFilter(
            child=PhysScan(nation, (), (nid,)),
            conjuncts=(lt(nid, Literal(5)),),
        )
        frame = execute_node(plan, ctx_for(tiny_db))
        assert sorted(frame[nid].tolist()) == [0, 1, 2, 3, 4]

    def test_spool_materialize_and_read(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        body = PhysProject(
            child=PhysScan(nation, (lt(nid, Literal(3)),), (nid,)),
            outputs=(OutputColumn("k0", nid),),
        )
        ctx = ctx_for(tiny_db)
        worktable = materialize_spool("E1", body, ctx)
        assert worktable.row_count == 3
        assert ctx.metrics.spools_materialized == 1
        from repro.optimizer.physical import PhysSpoolRead

        ctx.spools["E1"] = worktable
        read = PhysSpoolRead("E1", (("k0", nid),))
        frame = execute_node(read, ctx)
        assert sorted(frame[nid].tolist()) == [0, 1, 2]

    def test_spool_read_before_materialize_fails(self, tiny_db):
        from repro.optimizer.physical import PhysSpoolRead

        read = PhysSpoolRead("ghost", ())
        with pytest.raises(ExecutionError):
            execute_node(read, ctx_for(tiny_db))


class TestBindScalars:
    def test_filter_rebound(self, tiny_db):
        nation = TableRef("nation", 3)
        nid = ColumnRef(nation, "n_nationkey", DataType.INT)
        sub = ScalarSubquery("sq1", DataType.INT)
        plan = PhysProject(
            child=PhysFilter(
                child=PhysScan(nation, (), (nid,)),
                conjuncts=(lt(nid, sub),),
            ),
            outputs=(OutputColumn("n", nid),),
        )
        bound = bind_scalars(plan, {sub: Literal(4)})
        frame = execute_node(bound.child, ctx_for(tiny_db))
        assert sorted(frame[nid].tolist()) == [0, 1, 2, 3]


class TestFullExecution:
    SQL = (
        "select c_nationkey, sum(l_extendedprice) as le "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "  and o_orderdate < '1996-07-01' "
        "group by c_nationkey;"
        "select c_mktsegment, sum(l_quantity) as lq "
        "from customer, orders, lineitem "
        "where c_custkey = o_custkey and o_orderkey = l_orderkey "
        "  and o_orderdate < '1996-07-01' "
        "group by c_mktsegment"
    )

    @staticmethod
    def _norm(rows):
        return sorted(
            [
                tuple(round(v, 4) if isinstance(v, float) else v for v in row)
                for row in rows
            ],
            key=repr,
        )

    def test_matches_oracle_with_cse(self, small_session):
        batch = small_session.bind(self.SQL)
        outcome = small_session.execute(batch)
        oracle = evaluate_batch(small_session.database, batch)
        for query in batch.queries:
            got = self._norm(outcome.execution.query(query.name).rows)
            want = self._norm(oracle[query.name])
            assert got == want

    def test_matches_oracle_without_cse(self, no_cse_session):
        batch = no_cse_session.bind(self.SQL)
        outcome = no_cse_session.execute(batch)
        oracle = evaluate_batch(no_cse_session.database, batch)
        for query in batch.queries:
            got = self._norm(outcome.execution.query(query.name).rows)
            want = self._norm(oracle[query.name])
            assert got == want

    def test_order_by_respected(self, small_session):
        outcome = small_session.execute(
            "select c_nationkey, sum(c_acctbal) as total from customer "
            "group by c_nationkey order by total desc"
        )
        totals = [row[1] for row in outcome.execution.results[0].rows]
        assert totals == sorted(totals, reverse=True)

    def test_metrics_accumulated(self, small_session):
        outcome = small_session.execute(self.SQL)
        metrics = outcome.execution.metrics
        assert metrics.cost_units > 0
        assert metrics.rows_scanned > 0
        assert metrics.spools_materialized == 1
        assert metrics.spool_rows_read >= 2 * metrics.spool_rows_written

    def test_spool_sharing_cheaper_than_recompute(self, small_db):
        with_cse = Session(small_db, OptimizerOptions()).execute(self.SQL)
        without = Session(
            small_db, OptimizerOptions(enable_cse=False)
        ).execute(self.SQL)
        assert (
            with_cse.execution.metrics.cost_units
            < without.execution.metrics.cost_units
        )

    def test_missing_query_name(self, small_session):
        outcome = small_session.execute("select r_name from region")
        with pytest.raises(ExecutionError):
            outcome.execution.query("nope")
