"""Three-valued logic tests: NULL comparisons, Kleene connectives, NULL-
skipping aggregation.

The widened surface introduces NULLs (outer-join null extension) into an
engine that was previously NULL-free. Numeric NULLs are NaN in float64
columns, string NULLs are None entries in object arrays; the vectorized
evaluator (:func:`repro.expr.evaluator.evaluate3`) and the row-at-a-time
oracle (``_eval_scalar``) must agree on Kleene semantics exactly, and
aggregates must skip NULLs (with SQL's one wart: COUNT(*) counts them).
"""

import math

import numpy as np

from repro.executor.reference import _eval_scalar, evaluate_batch
from repro.expr.evaluator import evaluate3, null_mask
from repro.expr.expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
    Not,
    Or,
    TableRef,
    eq,
    gt,
)
from repro.types import DataType

T = TableRef("t", 1)
P = ColumnRef(T, "p", DataType.FLOAT)
Q = ColumnRef(T, "q", DataType.FLOAT)
S = ColumnRef(T, "s", DataType.STRING)

#: encode a Kleene truth value as a float column entry: the predicate
#: ``col > 0`` then evaluates to that truth value.
_ENCODE = {"T": 1.0, "F": -1.0, "N": float("nan")}
_VALUES = ["T", "F", "N"]

_AND = {  # Kleene AND truth table
    ("T", "T"): "T", ("T", "F"): "F", ("T", "N"): "N",
    ("F", "T"): "F", ("F", "F"): "F", ("F", "N"): "F",
    ("N", "T"): "N", ("N", "F"): "F", ("N", "N"): "N",
}
_OR = {  # Kleene OR truth table
    ("T", "T"): "T", ("T", "F"): "T", ("T", "N"): "T",
    ("F", "T"): "T", ("F", "F"): "F", ("F", "N"): "N",
    ("N", "T"): "T", ("N", "F"): "N", ("N", "N"): "N",
}
_NOT = {"T": "F", "F": "T", "N": "N"}


def _decode(true_mask, nulls, index):
    if nulls is not None and nulls[index]:
        return "N"
    return "T" if true_mask[index] else "F"


def _pair_frame():
    pairs = [(a, b) for a in _VALUES for b in _VALUES]
    return pairs, {
        P: np.array([_ENCODE[a] for a, _ in pairs]),
        Q: np.array([_ENCODE[b] for _, b in pairs]),
    }


class TestNullMask:
    def test_int_columns_have_no_nulls(self):
        assert null_mask(np.array([1, 2, 3], dtype=np.int64)) is None

    def test_float_without_nan(self):
        assert null_mask(np.array([1.0, 2.0])) is None

    def test_float_with_nan(self):
        mask = null_mask(np.array([1.0, float("nan")]))
        assert mask.tolist() == [False, True]

    def test_object_with_none(self):
        mask = null_mask(np.array(["a", None, "b"], dtype=object))
        assert mask.tolist() == [False, True, False]


class TestEvaluate3:
    def test_comparison_with_nan_is_null(self):
        frame = {P: np.array([1.0, float("nan"), -1.0])}
        true, nulls = evaluate3(gt(P, Literal(0)), frame)
        assert true.tolist() == [True, False, False]
        assert nulls.tolist() == [False, True, False]

    def test_comparison_with_none_string_is_null(self):
        frame = {S: np.array(["a", None, "b"], dtype=object)}
        true, nulls = evaluate3(eq(S, Literal("b")), frame)
        assert true.tolist() == [False, False, True]
        assert nulls.tolist() == [False, True, False]

    def test_null_free_frame_has_no_null_mask(self):
        frame = {P: np.array([1.0, -1.0])}
        true, nulls = evaluate3(gt(P, Literal(0)), frame)
        assert nulls is None
        assert true.tolist() == [True, False]

    def test_and_truth_table(self):
        pairs, frame = _pair_frame()
        expr = And((gt(P, Literal(0)), gt(Q, Literal(0))))
        true, nulls = evaluate3(expr, frame)
        for index, pair in enumerate(pairs):
            assert _decode(true, nulls, index) == _AND[pair], pair

    def test_or_truth_table(self):
        pairs, frame = _pair_frame()
        expr = Or((gt(P, Literal(0)), gt(Q, Literal(0))))
        true, nulls = evaluate3(expr, frame)
        for index, pair in enumerate(pairs):
            assert _decode(true, nulls, index) == _OR[pair], pair

    def test_not_truth_table(self):
        frame = {P: np.array([_ENCODE[v] for v in _VALUES])}
        true, nulls = evaluate3(Not(gt(P, Literal(0))), frame)
        for index, value in enumerate(_VALUES):
            assert _decode(true, nulls, index) == _NOT[value], value

    def test_nested_connectives(self):
        # (p > 0 AND NOT(q > 0)) OR (q > 0): exercises null propagation
        # through a nested expression on all nine input combinations.
        pairs, frame = _pair_frame()
        p3 = gt(P, Literal(0))
        q3 = gt(Q, Literal(0))
        expr = Or((And((p3, Not(q3))), q3))
        true, nulls = evaluate3(expr, frame)
        for index, (a, b) in enumerate(pairs):
            want = _OR[(_AND[(a, _NOT[b])], b)]
            assert _decode(true, nulls, index) == want, (a, b)


class TestOracleKleene:
    @staticmethod
    def _scalar(value):
        return {"T": True, "F": False, "N": None}[value]

    def test_comparison_with_null_operand(self):
        row = {P: None, Q: 1.0}
        assert _eval_scalar(gt(P, Literal(0)), row) is None
        assert _eval_scalar(eq(P, Q), row) is None
        ne = Comparison(ComparisonOp.NE, P, Q)
        assert _eval_scalar(ne, row) is None

    def test_and_or_not_truth_tables(self):
        for a in _VALUES:
            for b in _VALUES:
                row = {P: _ENCODE[a] if a != "N" else None,
                       Q: _ENCODE[b] if b != "N" else None}
                p3 = gt(P, Literal(0))
                q3 = gt(Q, Literal(0))
                got_and = _eval_scalar(And((p3, q3)), row)
                got_or = _eval_scalar(Or((p3, q3)), row)
                assert got_and == self._scalar(_AND[(a, b)]), (a, b)
                assert got_or == self._scalar(_OR[(a, b)]), (a, b)
            row = {P: _ENCODE[a] if a != "N" else None, Q: 1.0}
            got_not = _eval_scalar(Not(gt(P, Literal(0))), row)
            assert got_not == self._scalar(_NOT[a]), a

    def test_oracle_matches_vectorized_evaluator(self):
        """Differential: the oracle's scalar Kleene evaluation and the
        vectorized evaluate3 agree on every nine-way combination."""
        pairs, frame = _pair_frame()
        p3 = gt(P, Literal(0))
        q3 = gt(Q, Literal(0))
        for expr in [And((p3, q3)), Or((p3, q3)), Not(p3),
                     Or((And((p3, Not(q3))), q3))]:
            true, nulls = evaluate3(expr, frame)
            for index, (a, b) in enumerate(pairs):
                row = {P: _ENCODE[a] if a != "N" else None,
                       Q: _ENCODE[b] if b != "N" else None}
                scalar = _eval_scalar(expr, row)
                vector = _decode(true, nulls, index)
                assert scalar == self._scalar(vector), (expr, a, b)


class TestNullSkippingAggregation:
    def test_all_null_groups(self, tiny_session):
        """Customers with no order under an impossible ON filter: SUM over
        an all-NULL group is 0 in this engine (documented divergence from
        SQL's NULL — both engine and oracle agree), MIN/MAX are NULL,
        COUNT(*) still counts the null-extended rows."""
        batch = tiny_session.bind(
            "select c_custkey, sum(o_totalprice) as s, "
            "min(o_totalprice) as lo, max(o_totalprice) as hi, "
            "count(*) as n from customer "
            "left join orders on c_custkey = o_custkey "
            "and o_totalprice < 0 group by c_custkey"
        )
        outcome = tiny_session.execute(batch)
        rows = outcome.execution.query("Q1").rows
        assert rows, "expected one row per customer"
        for _, total, lo, hi, count in rows:
            assert total == 0
            assert math.isnan(lo) and math.isnan(hi)
            assert count >= 1
        oracle = evaluate_batch(tiny_session.database, batch)
        want = {
            row[0]: row[1:] for row in oracle["Q1"]
        }
        for key, total, lo, hi, count in rows:
            o_total, o_lo, o_hi, o_count = want[key]
            assert total == o_total
            assert o_lo is None and o_hi is None
            assert count == o_count

    def test_partial_null_groups(self, tiny_session):
        """Groups mixing matched and null-extended rows aggregate only the
        matched values — engine and oracle agree row for row."""
        batch = tiny_session.bind(
            "select c_nationkey, sum(o_totalprice) as s, "
            "max(o_totalprice) as hi, count(*) as n from customer "
            "left join orders on c_custkey = o_custkey "
            "and o_totalprice < 150000 group by c_nationkey"
        )
        outcome = tiny_session.execute(batch)
        oracle = evaluate_batch(tiny_session.database, batch)
        got = {}
        for key, total, hi, count in outcome.execution.query("Q1").rows:
            hi_norm = None if isinstance(hi, float) and math.isnan(hi) else hi
            got[key] = (round(float(total), 6), hi_norm, count)
        want = {}
        for key, total, hi, count in oracle["Q1"]:
            want[key] = (
                round(float(total), 6),
                None if hi is None else hi,
                count,
            )
        assert got == want
