"""Unit tests for table signatures (paper §3, Definition 3.1, Figure 2)."""

import pytest

from repro.cse.signature import TableSignature, signature_of_tree
from repro.expr.expressions import (
    AggExpr,
    AggFunc,
    ColumnRef,
    Literal,
    TableRef,
    eq,
    gt,
)
from repro.logical.operators import Get, GroupBy, Join, Project, Select, Spool
from repro.types import DataType

A = TableRef("A", 1)
B = TableRef("B", 2)
C = TableRef("C", 3)
D = TableRef("D", 4)


def col(table, name):
    return ColumnRef(table, name, DataType.INT)


class TestTableSignature:
    def test_tables_sorted(self):
        sig = TableSignature(False, ("B", "A"))
        assert sig.tables == ("A", "B")

    def test_equality(self):
        assert TableSignature(True, ("A", "B")) == TableSignature(True, ("B", "A"))
        assert TableSignature(True, ("A",)) != TableSignature(False, ("A",))

    def test_multiset_semantics(self):
        """Self-join A ⋈ A is distinct from a single reference to A."""
        assert TableSignature(False, ("A", "A")) != TableSignature(False, ("A",))

    def test_join_rule(self):
        left = TableSignature(False, ("A",))
        right = TableSignature(False, ("B",))
        assert left.joined_with(right) == TableSignature(False, ("A", "B"))

    def test_join_rule_undefined_over_groupby(self):
        """Figure 2: the join signature exists only when G = F on both sides."""
        grouped = TableSignature(True, ("A",))
        plain = TableSignature(False, ("B",))
        assert grouped.joined_with(plain) is None
        assert plain.joined_with(grouped) is None

    def test_groupby_rule(self):
        sig = TableSignature(False, ("A", "B"))
        assert sig.grouped() == TableSignature(True, ("A", "B"))
        assert sig.grouped().grouped() is None  # only one γ allowed

    def test_covers_tables_of(self):
        wide = TableSignature(False, ("A", "B", "C"))
        narrow = TableSignature(True, ("A", "B"))
        assert wide.covers_tables_of(narrow)
        assert not narrow.covers_tables_of(wide)
        # multiset inclusion: {A,A} not covered by {A,B}
        double = TableSignature(False, ("A", "A"))
        assert not wide.covers_tables_of(double)
        assert TableSignature(False, ("A", "A", "B")).covers_tables_of(double)

    def test_of_tables_uses_signature_names(self):
        delta = TableRef("customer", 5, is_delta=True)
        sig = TableSignature.of_tables([delta, A])
        assert sig.tables == ("A", "delta(customer)")


class TestSignatureOfTree:
    """The rules of Figure 2 applied to operator trees."""

    def test_get(self):
        assert signature_of_tree(Get(A)) == TableSignature(False, ("A",))

    def test_select_preserves(self):
        tree = Select(gt(col(A, "x"), Literal(1)), Get(A))
        assert signature_of_tree(tree) == TableSignature(False, ("A",))

    def test_project_preserves(self):
        tree = Project((col(A, "x"),), Get(A))
        assert signature_of_tree(tree) == TableSignature(False, ("A",))

    def test_join(self):
        tree = Join(eq(col(A, "x"), col(B, "y")), Get(A), Get(B))
        assert signature_of_tree(tree) == TableSignature(False, ("A", "B"))

    def test_groupby(self):
        join = Join(eq(col(A, "x"), col(B, "y")), Get(A), Get(B))
        tree = GroupBy((col(A, "x"),), (AggExpr(AggFunc.SUM, col(B, "z")),), join)
        assert signature_of_tree(tree) == TableSignature(True, ("A", "B"))

    def test_paper_example_same_signature(self):
        """π γ (σ(A) ⋈ σ(B)) and π min (σ'(A) ⋈ σ'(B)) share [T; {A,B}]
        despite different predicates and column lists (§3)."""
        first = Project(
            (col(A, "c1"),),
            GroupBy(
                (col(A, "c1"), col(A, "c2")),
                (AggExpr(AggFunc.SUM, col(B, "c5")),),
                Join(
                    eq(col(A, "k"), col(B, "k")),
                    Select(gt(col(A, "p"), Literal(0)), Get(A)),
                    Select(gt(col(B, "q"), Literal(5)), Get(B)),
                ),
            ),
        )
        second = Project(
            (col(A, "c3"),),
            GroupBy(
                (col(A, "c3"),),
                (AggExpr(AggFunc.MIN, col(B, "c6")),),
                Join(
                    eq(col(A, "k"), col(B, "k")),
                    Select(gt(col(A, "r"), Literal(9)), Get(A)),
                    Get(B),
                ),
            ),
        )
        sig1 = signature_of_tree(first)
        sig2 = signature_of_tree(second)
        assert sig1 == sig2 == TableSignature(True, ("A", "B"))
        # ...but not with γ(σ(C) ⋈ σ(D)).
        third = GroupBy(
            (col(C, "x"),),
            (AggExpr(AggFunc.SUM, col(D, "y")),),
            Join(eq(col(C, "k"), col(D, "k")), Get(C), Get(D)),
        )
        assert signature_of_tree(third) != sig1

    def test_select_above_groupby_has_no_signature(self):
        """Figure 2's 'other cases': σ above γ yields no signature."""
        grouped = GroupBy((col(A, "x"),), (AggExpr(AggFunc.COUNT, None),), Get(A))
        tree = Select(gt(col(A, "x"), Literal(1)), grouped)
        assert signature_of_tree(tree) is None

    def test_join_above_groupby_has_no_signature(self):
        grouped = GroupBy((col(A, "x"),), (AggExpr(AggFunc.COUNT, None),), Get(A))
        tree = Join(None, grouped, Get(B))
        assert signature_of_tree(tree) is None

    def test_double_groupby_has_no_signature(self):
        grouped = GroupBy((col(A, "x"),), (AggExpr(AggFunc.COUNT, None),), Get(A))
        assert signature_of_tree(GroupBy((), (), grouped)) is None

    def test_spool_transparent(self):
        assert signature_of_tree(Spool(Get(A))) == TableSignature(False, ("A",))

    def test_self_join_multiset(self):
        a2 = TableRef("A", 99)
        tree = Join(eq(col(A, "x"), col(a2, "x")), Get(A), Get(a2))
        assert signature_of_tree(tree) == TableSignature(False, ("A", "A"))

    def test_incremental_matches_whole_tree(self):
        """Composing Figure 2's rules bottom-up equals computing the
        signature of the whole tree (the incremental property §3 relies on)."""
        left = Select(gt(col(A, "x"), Literal(1)), Get(A))
        right = Get(B)
        join = Join(eq(col(A, "k"), col(B, "k")), left, right)
        composed = signature_of_tree(left).joined_with(signature_of_tree(right))
        assert composed == signature_of_tree(join)
        assert composed.grouped() == signature_of_tree(
            GroupBy((col(A, "x"),), (AggExpr(AggFunc.COUNT, None),), join)
        )
