"""Shared fixtures: small TPC-H databases and sessions.

The tiny scale factor keeps every test fast while preserving the TPC-H
cardinality ratios the optimizer's decisions depend on. Databases are built
once per session and shared; tests that mutate data build their own.
"""

from __future__ import annotations

import pytest

from repro import OptimizerOptions, Session
from repro.catalog.tpch import build_tpch_database

TINY_SF = 0.001
SMALL_SF = 0.002


@pytest.fixture(scope="session")
def tiny_db():
    """A shared, read-only TPC-H database at SF=0.001."""
    return build_tpch_database(scale_factor=TINY_SF)


@pytest.fixture(scope="session")
def small_db():
    """A shared, read-only TPC-H database at SF=0.002."""
    return build_tpch_database(scale_factor=SMALL_SF)


@pytest.fixture()
def tiny_session(tiny_db):
    return Session(tiny_db, OptimizerOptions())


@pytest.fixture()
def small_session(small_db):
    return Session(small_db, OptimizerOptions())


@pytest.fixture()
def no_cse_session(small_db):
    return Session(small_db, OptimizerOptions(enable_cse=False))


@pytest.fixture()
def no_heuristics_session(small_db):
    return Session(small_db, OptimizerOptions(enable_heuristics=False))
