"""Resource governor tests: budgets, cooperative cancellation, admission
control, and graceful degradation to the paper's no-sharing baseline.

The contract under test: governance is an *overlay* — an ungoverned run is
untouched; a governed run either completes normally, degrades to the
always-valid no-CSE plan (optimizer failure, spool-budget bust), or fails
fast with a typed error (deadline expiry, admission rejection) without
leaving partial state behind.
"""

from __future__ import annotations

import threading
import time
from time import monotonic, perf_counter

import pytest

from repro import OptimizerOptions, Session
from repro.errors import (
    AdmissionError,
    BudgetExceededError,
    GovernorError,
    OptimizerError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.obs import DecisionJournal, MetricsRegistry
from repro.serve import ParallelExecutor, QueryBudget, ResourceGovernor
from repro.serve.governor import CancellationToken
from repro.serve.schedule import build_schedule
from repro.workloads import example1_batch, scaleup_batch


# ---------------------------------------------------------------------------
# QueryBudget / CancellationToken units
# ---------------------------------------------------------------------------


class TestQueryBudget:
    def test_validation(self):
        with pytest.raises(GovernorError):
            QueryBudget(deadline_ms=0)
        with pytest.raises(GovernorError):
            QueryBudget(optimizer_deadline_ms=-1)
        with pytest.raises(GovernorError):
            QueryBudget(max_spool_rows=-1)
        # Zero row/byte caps are valid (force-fallback knob).
        QueryBudget(max_spool_rows=0, max_spool_bytes=0, max_rows=0)

    def test_start_arms_deadline(self):
        token = QueryBudget(deadline_ms=10_000).start()
        assert token.deadline is not None
        assert 9.0 < token.remaining_seconds() <= 10.0
        assert QueryBudget().start().deadline is None

    def test_optimizer_deadline_is_earlier_bound(self):
        budget = QueryBudget(deadline_ms=10_000, optimizer_deadline_ms=50)
        token = budget.start()
        deadline = budget.optimizer_deadline(token)
        assert deadline is not None
        assert deadline < token.deadline
        # Without an optimizer allowance the overall deadline applies.
        overall = QueryBudget(deadline_ms=10_000)
        assert overall.optimizer_deadline(overall.start()) is not None
        assert QueryBudget().optimizer_deadline(None) is None


class TestCancellationToken:
    def test_check_raises_after_cancel(self):
        token = CancellationToken()
        token.check()  # live token is a no-op
        token.cancel("stop now")
        with pytest.raises(QueryCancelledError, match="stop now"):
            token.check()

    def test_first_cancellation_wins(self):
        token = CancellationToken()
        token.cancel("first", error_type=BudgetExceededError)
        token.cancel("second", error_type=QueryTimeoutError)
        assert token.reason == "first"
        with pytest.raises(BudgetExceededError, match="first"):
            token.check()

    def test_expired_deadline_raises_timeout(self):
        token = CancellationToken(deadline=monotonic() - 1.0)
        with pytest.raises(QueryTimeoutError):
            token.check()
        assert token.cancelled
        assert token.remaining_seconds() == 0.0

    def test_row_budget_trips_and_cancels(self):
        token = QueryBudget(max_rows=100).start()
        assert token.charges_rows
        token.charge_rows(60)
        with pytest.raises(BudgetExceededError, match="max_rows=100"):
            token.charge_rows(60)
        assert token.cancelled
        with pytest.raises(BudgetExceededError):
            token.check()

    def test_spool_budget_trips_on_rows_and_bytes(self):
        token = QueryBudget(max_spool_rows=10).start()
        token.charge_spool(10, 80.0)
        with pytest.raises(BudgetExceededError, match="max_spool_rows"):
            token.charge_spool(1, 8.0)
        token = QueryBudget(max_spool_bytes=100.0).start()
        with pytest.raises(BudgetExceededError, match="max_spool_bytes"):
            token.charge_spool(100, 800.0)

    def test_unbudgeted_charges_are_noops(self):
        token = CancellationToken()
        assert not token.charges_rows
        token.charge_rows(10**9)
        token.charge_spool(10**9, 1e18)
        token.check()

    def test_for_retry_keeps_deadline_drops_budget(self):
        budget = QueryBudget(deadline_ms=10_000, max_spool_rows=0)
        token = budget.start()
        with pytest.raises(BudgetExceededError):
            token.charge_spool(1, 8.0)
        retry = token.for_retry()
        assert not retry.cancelled
        assert retry.budget is None
        assert retry.deadline == token.deadline
        retry.charge_spool(10**9, 1e18)  # no budget on the retry
        retry.check()


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestResourceGovernor:
    def test_validation(self):
        with pytest.raises(GovernorError):
            ResourceGovernor(max_concurrent=0)
        with pytest.raises(GovernorError):
            ResourceGovernor(max_queue=-1)
        with pytest.raises(GovernorError):
            ResourceGovernor(queue_timeout_ms=0)

    def test_serial_admissions_never_queue(self):
        registry = MetricsRegistry()
        governor = ResourceGovernor(max_concurrent=1, registry=registry)
        for _ in range(3):
            with governor.admit():
                assert governor.active == 1
        assert governor.active == 0
        counters = registry.snapshot()["counters"]
        assert counters["governor.admitted"] == 3
        assert "governor.rejected" not in counters
        assert registry.histogram("governor.queue_wait_seconds").count == 3

    def test_queue_full_rejects(self):
        registry = MetricsRegistry()
        governor = ResourceGovernor(
            max_concurrent=1, max_queue=0, registry=registry
        )
        with governor.admit():
            with pytest.raises(AdmissionError, match="queue full"):
                with governor.admit():
                    pass  # pragma: no cover - never admitted
        assert registry.snapshot()["counters"]["governor.rejected"] == 1
        # The slot freed correctly after the rejection.
        with governor.admit():
            assert governor.active == 1

    def test_wait_timeout_rejects(self):
        governor = ResourceGovernor(
            max_concurrent=1, max_queue=4, queue_timeout_ms=30
        )
        release = threading.Event()
        admitted = threading.Event()

        def hold():
            with governor.admit():
                admitted.set()
                release.wait(timeout=10)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert admitted.wait(timeout=5)
            start = perf_counter()
            with pytest.raises(AdmissionError, match="wait exceeded"):
                with governor.admit():
                    pass  # pragma: no cover - never admitted
            assert perf_counter() - start < 5.0
        finally:
            release.set()
            holder.join(timeout=10)
        assert governor.active == 0 and governor.waiting == 0

    def test_waiter_admitted_when_slot_frees(self):
        governor = ResourceGovernor(max_concurrent=1, max_queue=4)
        release = threading.Event()
        admitted = threading.Event()
        results = []

        def hold():
            with governor.admit():
                admitted.set()
                release.wait(timeout=10)

        def waiter():
            with governor.admit():
                results.append("ran")

        holder = threading.Thread(target=hold)
        holder.start()
        assert admitted.wait(timeout=5)
        queued = threading.Thread(target=waiter)
        queued.start()
        deadline = monotonic() + 5
        while governor.waiting == 0 and monotonic() < deadline:
            time.sleep(0.005)
        assert governor.waiting == 1
        release.set()
        queued.join(timeout=10)
        holder.join(timeout=10)
        assert results == ["ran"]

    def test_admission_order_is_fifo(self):
        """Under contention, waiters are admitted in strict arrival order.

        Regression test for the semaphore-based governor: a bare
        ``Semaphore`` wakes an arbitrary waiter, so under contention the
        admission order was scheduler-dependent. The ticket queue makes it
        deterministic — required for reproducible coordinator windows."""
        governor = ResourceGovernor(max_concurrent=1, max_queue=16)
        for _round in range(3):
            release = threading.Event()
            holding = threading.Event()
            order = []
            order_lock = threading.Lock()

            def hold():
                with governor.admit():
                    holding.set()
                    release.wait(timeout=10)

            def waiter(rank):
                with governor.admit():
                    with order_lock:
                        order.append(rank)

            holder = threading.Thread(target=hold)
            holder.start()
            assert holding.wait(timeout=5)
            waiters = []
            for rank in range(8):
                thread = threading.Thread(target=waiter, args=(rank,))
                thread.start()
                waiters.append(thread)
                # Confirm this waiter is queued before launching the next,
                # so arrival order is exactly 0..7.
                deadline = monotonic() + 5
                while governor.waiting <= rank and monotonic() < deadline:
                    time.sleep(0.001)
                assert governor.waiting == rank + 1
            release.set()
            holder.join(timeout=10)
            for thread in waiters:
                thread.join(timeout=10)
            assert order == list(range(8))
        assert governor.active == 0 and governor.waiting == 0

    def test_arrival_cannot_barge_past_waiters(self):
        """A new arrival with a momentarily free slot still queues behind
        existing waiters instead of stealing the slot."""
        governor = ResourceGovernor(max_concurrent=1, max_queue=4)
        release = threading.Event()
        holding = threading.Event()
        order = []

        def hold():
            with governor.admit():
                holding.set()
                release.wait(timeout=10)

        def waiter(tag):
            with governor.admit():
                order.append(tag)
                # Keep the slot briefly so the queue stays contended.
                time.sleep(0.01)

        holder = threading.Thread(target=hold)
        holder.start()
        assert holding.wait(timeout=5)
        first = threading.Thread(target=waiter, args=("first",))
        first.start()
        deadline = monotonic() + 5
        while governor.waiting < 1 and monotonic() < deadline:
            time.sleep(0.001)
        assert governor.waiting == 1
        release.set()
        holder.join(timeout=10)
        # Race a late arrival against the queued waiter: it must append
        # behind "first" even if the slot looks free at its arrival.
        second = threading.Thread(target=waiter, args=("second",))
        second.start()
        first.join(timeout=10)
        second.join(timeout=10)
        assert order == ["first", "second"]

    def test_session_admission_rejection(self, small_db):
        governor = ResourceGovernor(max_concurrent=1, max_queue=0)
        session = Session(small_db, OptimizerOptions(), governor=governor)
        with governor.admit():  # saturate from outside
            with pytest.raises(AdmissionError):
                session.execute(example1_batch())
        # After the slot frees, the session executes normally.
        assert session.execute(example1_batch()).execution.results

    def test_governor_inherits_session_registry(self, small_db):
        registry = MetricsRegistry()
        governor = ResourceGovernor(max_concurrent=2)
        session = Session(
            small_db, OptimizerOptions(), registry=registry,
            governor=governor,
        )
        session.execute(example1_batch())
        assert registry.snapshot()["counters"]["governor.admitted"] == 1


# ---------------------------------------------------------------------------
# Cooperative cancellation through the executor
# ---------------------------------------------------------------------------


class TestCancellationPropagation:
    def test_expired_deadline_kills_whole_dag(self, small_db):
        """An already-expired token aborts every task of a workers=4 DAG
        with QueryTimeoutError — none of the queries produce results."""
        session = Session(small_db, OptimizerOptions())
        result = session.optimize(scaleup_batch(6))
        assert result.bundle.root_spools  # the DAG really shares spools
        executor = ParallelExecutor(
            small_db, session.cost_model, workers=4
        )
        token = CancellationToken(deadline=monotonic() - 1.0)
        with pytest.raises(QueryTimeoutError):
            executor.execute(result.bundle, token=token)

    def test_serial_executor_honours_token(self, small_db):
        session = Session(small_db, OptimizerOptions())
        result = session.optimize(example1_batch())
        token = CancellationToken(deadline=monotonic() - 1.0)
        with pytest.raises(QueryTimeoutError):
            session.execute_bundle(result, token=token)

    def test_budget_bust_leaves_no_partial_spools(self, small_db):
        """A spool-budget bust mid-DAG never publishes the violating spool:
        the shared map contains only fully materialized, fully charged
        spools afterwards."""
        session = Session(small_db, OptimizerOptions())
        result = session.optimize(example1_batch())
        assert result.bundle.root_spools
        executor = ParallelExecutor(
            small_db, session.cost_model, workers=4
        )
        token = QueryBudget(max_spool_rows=0).start()
        schedule = build_schedule(result.bundle)
        spools = {}
        with pytest.raises(BudgetExceededError):
            executor._run_schedule(
                schedule,
                result.bundle,
                dict(result.bundle.root_spools),
                spools,
                {},
                False,
                token,
            )
        assert spools == {}

    def test_deadline_mid_execution_aborts_within_2x(
        self, small_db, monkeypatch
    ):
        """With every operator slowed to ~10ms, a deadline expiring mid-DAG
        (workers=4) aborts within 2x the deadline: expiry is noticed at the
        next per-operator checkpoint and in-flight siblings drain via the
        shared token instead of running to completion."""
        from repro.executor import iterators

        real_dispatch = iterators._dispatch

        def slow_dispatch(plan, ctx):
            time.sleep(0.01)
            return real_dispatch(plan, ctx)

        monkeypatch.setattr(iterators, "_dispatch", slow_dispatch)
        session = Session(small_db, OptimizerOptions())
        result = session.optimize(scaleup_batch(6))
        executor = ParallelExecutor(
            small_db, session.cost_model, workers=4
        )
        deadline_s = 0.08
        token = CancellationToken(deadline=monotonic() + deadline_s)
        start = perf_counter()
        with pytest.raises(QueryTimeoutError):
            executor.execute(result.bundle, token=token)
        elapsed = perf_counter() - start
        assert elapsed < 2 * deadline_s, (
            f"abort took {elapsed:.3f}s for a {deadline_s:.3f}s deadline"
        )


# ---------------------------------------------------------------------------
# Graceful degradation through the Session
# ---------------------------------------------------------------------------


class TestFallback:
    SQL = example1_batch()

    def _governed_session(self, db, **kwargs):
        kwargs.setdefault("registry", MetricsRegistry())
        kwargs.setdefault("journal", DecisionJournal())
        return Session(db, OptimizerOptions(), **kwargs)

    def test_spool_budget_falls_back_to_baseline(self, small_db):
        session = self._governed_session(small_db)
        out = session.execute(
            self.SQL, budget=QueryBudget(max_spool_rows=0)
        )
        assert out.degraded and out.fallback_reason == "spool_budget"
        # The fallback executed the no-sharing plan: byte-identical rows
        # to an enable_cse=False session over the same database.
        baseline = Session(
            small_db, OptimizerOptions(enable_cse=False)
        ).execute(self.SQL)
        assert [
            (r.name, r.columns, r.rows) for r in out.execution.results
        ] == [
            (r.name, r.columns, r.rows) for r in baseline.execution.results
        ]
        assert out.execution.metrics.spools_materialized == 0
        counters = session.registry.snapshot()["counters"]
        assert counters["governor.fallbacks"] == 1
        assert counters["governor.fallback.spool_budget"] == 1
        events = session.journal.events("fallback")
        assert len(events) == 1
        assert events[0]["stage"] == "execution"
        assert events[0]["reason"] == "spool_budget"
        assert (
            session.registry.histogram(
                "governor.fallback_retry_seconds"
            ).count == 1
        )

    def test_spool_budget_fallback_parallel(self, small_db):
        session = self._governed_session(small_db, workers=4)
        out = session.execute(
            self.SQL, budget=QueryBudget(max_spool_rows=0)
        )
        assert out.degraded and out.fallback_reason == "spool_budget"
        reference = Session(small_db, OptimizerOptions()).execute(self.SQL)
        assert [r.row_count for r in out.execution.results] == [
            r.row_count for r in reference.execution.results
        ]

    def test_optimizer_deadline_falls_back(self, small_db):
        session = self._governed_session(small_db, plan_cache_size=0)
        out = session.execute(
            self.SQL,
            budget=QueryBudget(optimizer_deadline_ms=1e-6),
        )
        assert out.degraded and out.fallback_reason == "optimizer_deadline"
        # The degraded plan is the no-CSE baseline.
        assert not out.optimization.stats.used_cses
        assert out.execution.metrics.spools_materialized == 0
        counters = session.registry.snapshot()["counters"]
        assert counters["governor.fallback.optimizer_deadline"] == 1
        events = session.journal.events("fallback")
        assert events and events[0]["stage"] == "optimizer"

    def test_optimizer_error_falls_back(self, small_db, monkeypatch):
        session = self._governed_session(small_db, plan_cache_size=0)
        from repro.optimizer.engine import Optimizer

        real_optimize = Optimizer.optimize
        calls = {"n": 0}

        def flaky(self, batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OptimizerError("injected sharing-machinery failure")
            return real_optimize(self, batch)

        monkeypatch.setattr(Optimizer, "optimize", flaky)
        out = session.execute(self.SQL, budget=QueryBudget())
        assert out.degraded and out.fallback_reason == "optimizer_error"
        assert calls["n"] == 2  # failed once, retried without CSEs
        assert sum(r.row_count for r in out.execution.results) > 0
        events = session.journal.events("fallback")
        assert "injected sharing-machinery failure" in events[0]["detail"]

    def test_optimizer_error_without_budget_propagates(
        self, small_db, monkeypatch
    ):
        """Ungoverned executes keep today's contract: errors surface."""
        session = Session(small_db, OptimizerOptions(), plan_cache_size=0)
        from repro.optimizer.engine import Optimizer

        def broken(self, batch):
            raise OptimizerError("injected failure")

        monkeypatch.setattr(Optimizer, "optimize", broken)
        with pytest.raises(OptimizerError, match="injected failure"):
            session.execute(self.SQL)

    def test_allow_fallback_false_propagates(self, small_db):
        session = self._governed_session(small_db, plan_cache_size=0)
        with pytest.raises(BudgetExceededError):
            session.execute(
                self.SQL,
                budget=QueryBudget(max_spool_rows=0, allow_fallback=False),
            )

    def test_deadline_expiry_always_raises(self, small_db):
        session = self._governed_session(small_db)
        with pytest.raises(QueryTimeoutError):
            session.execute(
                self.SQL,
                budget=QueryBudget(deadline_ms=0.001),
                parallel=True,
                workers=4,
            )

    def test_default_budget_applies_to_every_execute(self, small_db):
        session = self._governed_session(
            small_db, default_budget=QueryBudget(max_spool_rows=0)
        )
        out = session.execute(self.SQL)
        assert out.degraded and out.fallback_reason == "spool_budget"
        # A per-call budget overrides the session default.
        ok = session.execute(self.SQL, budget=QueryBudget())
        assert not ok.degraded

    def test_degraded_plan_never_cached(self, small_db):
        """A fallback plan must not poison the cache: the next normal
        execute re-optimizes (miss) and gets the full CSE plan, which then
        serves warm hits."""
        session = self._governed_session(small_db, plan_cache_size=8)
        out = session.execute(
            self.SQL, budget=QueryBudget(optimizer_deadline_ms=1e-6)
        )
        assert out.degraded
        normal = session.execute(self.SQL)
        assert not normal.plan_cache_hit
        assert not normal.degraded
        assert normal.optimization.stats.used_cses
        warm = session.execute(self.SQL)
        assert warm.plan_cache_hit
        assert warm.optimization.stats.used_cses

    def test_query_log_records_degradation(self, small_db, tmp_path):
        from repro.obs import QueryLog

        log = QueryLog(path=str(tmp_path / "q.jsonl"))
        session = Session(small_db, OptimizerOptions(), query_log=log)
        session.execute(self.SQL, budget=QueryBudget(max_spool_rows=0))
        session.execute(self.SQL)
        records = log.records
        assert records[0]["degraded"] is True
        assert records[0]["fallback_reason"] == "spool_budget"
        assert records[1]["degraded"] is False
        assert "fallback_reason" not in records[1]

    def test_governor_metrics_render_as_prometheus(self, small_db):
        from repro.obs.exporter import parse_prometheus_text

        session = self._governed_session(
            small_db, governor=ResourceGovernor(max_concurrent=2)
        )
        session.execute(self.SQL, budget=QueryBudget(max_spool_rows=0))
        text = session.registry.render_prometheus()
        assert "repro_governor_fallbacks" in text
        assert "repro_governor_admitted" in text
        parse_prometheus_text(text)  # strict format check
