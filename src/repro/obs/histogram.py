"""Fixed log-bucket histograms for latency and size distributions.

A :class:`Histogram` accumulates observations into a fixed, precomputed set
of logarithmically spaced buckets (powers of two from 2^-20 ≈ 1 µs to
2^30 ≈ 1 G), so the write path is one ``bisect`` plus a few adds under a
lock — no allocation, no sorting, and memory stays constant no matter how
many observations arrive. Quantiles (p50/p95/p99) are estimated from the
bucket counts with log-linear interpolation inside the winning bucket,
which bounds the relative error by the bucket ratio (2×) and in practice
stays well inside it.

The same bucket layout serves both uses the registry wires up: wall-clock
seconds (optimizer phases, per-query serve latency, plan-cache hits) and
spool transfer sizes (rows and bytes written/read per Definition 5.1).
One layout keeps the Prometheus exposition stable across metric families.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Sequence, Tuple

#: Upper bucket bounds (inclusive, ``le`` semantics): 2^-20 … 2^30.
#: Fixed at import time so every histogram shares one layout and the
#: exporter can render cumulative buckets without coordination.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    float(2.0 ** exponent) for exponent in range(-20, 31)
)


class Histogram:
    """Thread-safe fixed-bucket histogram with quantile snapshots.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    anything above the last bound. Negative observations clamp into the
    first bucket (they cannot occur for durations/sizes, but a clamp is
    safer than an exception on a telemetry path).
    """

    __slots__ = ("bounds", "_counts", "_lock", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- write path --------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram with the same bucket layout."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with other._lock:
            counts = list(other._counts)
            count, total = other.count, other.total
            low, high = other.min, other.max
        with self._lock:
            for index, n in enumerate(counts):
                self._counts[index] += n
            self.count += count
            self.total += total
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high

    # -- read path ---------------------------------------------------------

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Per-bucket (upper bound, count) pairs; the overflow bucket is
        reported with an infinite bound."""
        with self._lock:
            counts = list(self._counts)
        pairs = [(bound, counts[i]) for i, bound in enumerate(self.bounds)]
        pairs.append((float("inf"), counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` ∈ [0, 1] (0.0 when empty).

        Finds the bucket holding the target rank and interpolates linearly
        between its edges; ranks in the overflow bucket report the observed
        maximum (the least wrong single answer available)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            counts = list(self._counts)
            count = self.count
            observed_min, observed_max = self.min, self.max
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return observed_max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else min(
                    observed_min, upper
                )
                lower = max(lower, 0.0)
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
                # Never estimate outside the observed range.
                return min(max(estimate, observed_min), observed_max)
        return observed_max

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time summary: count/sum/min/max plus p50/p95/p99."""
        with self._lock:
            count = self.count
            total = self.total
            observed_min = self.min if self.count else 0.0
            observed_max = self.max if self.count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": observed_min,
            "max": observed_max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
