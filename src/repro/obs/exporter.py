"""Prometheus text-format exposition and a stdlib telemetry server.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into Prometheus text exposition format 0.0.4:

* counters → ``repro_<name>_total`` (``# TYPE … counter``),
* gauges → ``repro_<name>`` (``# TYPE … gauge``),
* timers → ``repro_<name>_seconds`` summaries (``_count`` / ``_sum``),
* histograms → classic cumulative ``_bucket{le="…"}`` series plus
  ``_sum`` / ``_count``; empty leading/trailing buckets are elided (any
  subset of ``le`` edges is valid exposition as long as ``+Inf`` is
  present and the series is cumulative).

:func:`parse_prometheus_text` is the matching checker: a small, strict
parser used by the tests and the CI smoke job to assert the exposition is
well-formed (line grammar, TYPE declarations, histogram invariants).

:class:`TelemetryServer` serves ``/metrics`` and ``/healthz`` from a
``http.server.ThreadingHTTPServer`` on a daemon thread — no third-party
dependency, safe to embed in a :class:`~repro.api.Session`
(``Session(telemetry_port=…)``) or run via ``repro serve-metrics``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, split_series_key

#: Prometheus metric-name grammar (exposition format 0.0.4).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """A dotted registry name as a legal, prefixed Prometheus name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current contents in Prometheus text format."""
    lines: List[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    with registry._lock:
        counters = dict(registry._counters)
        gauges = dict(registry._gauges)
        timers = {
            name: (stats.count, stats.total)
            for name, stats in registry._timers.items()
        }
        histograms = dict(registry._histograms)

    for name in sorted(counters):
        metric = sanitize_metric_name(name) + "_total"
        family(metric, "counter", f"repro counter {name}")
        lines.append(f"{metric} {_fmt(counters[name])}")

    # Gauges may be labeled series (stored as ``name{k="v",…}`` keys);
    # group them under their family so each gets one HELP/TYPE header.
    gauge_families: Dict[str, List[Tuple[str, float]]] = {}
    for key in sorted(gauges):
        base, label_text = split_series_key(key)
        gauge_families.setdefault(base, []).append((label_text, gauges[key]))
    for base in sorted(gauge_families):
        metric = sanitize_metric_name(base)
        family(metric, "gauge", f"repro gauge {base}")
        for label_text, value in gauge_families[base]:
            suffix = "{" + label_text + "}" if label_text else ""
            lines.append(f"{metric}{suffix} {_fmt(value)}")

    for name in sorted(timers):
        metric = sanitize_metric_name(name) + "_seconds"
        count, total = timers[name]
        family(metric, "summary", f"repro timer {name}")
        lines.append(f"{metric}_count {count}")
        lines.append(f"{metric}_sum {_fmt(total)}")

    # Group labeled series (stored as ``name{k="v",…}`` keys) under their
    # family so each family gets exactly one HELP/TYPE header.
    families: Dict[str, List[Tuple[str, object]]] = {}
    for key in sorted(histograms):
        base, label_text = split_series_key(key)
        families.setdefault(base, []).append((label_text, histograms[key]))

    for base in sorted(families):
        metric = sanitize_metric_name(base)
        family(metric, "histogram", f"repro histogram {base}")
        for label_text, histogram in families[base]:
            def labelled(extra: str = "", _labels: str = label_text) -> str:
                pairs = ",".join(p for p in (_labels, extra) if p)
                return "{" + pairs + "}" if pairs else ""

            def le(bound_text: str) -> str:
                return 'le="' + bound_text + '"'

            buckets = histogram.bucket_counts()
            cumulative = 0
            emitted_any = False
            pending_zero: Optional[float] = None
            for bound, count in buckets[:-1]:
                cumulative += count
                if count == 0:
                    # Elide flat runs: remember the last edge so the first
                    # non-empty bucket is preceded by one zero/flat sample.
                    pending_zero = bound
                    if not emitted_any:
                        continue
                    continue
                if pending_zero is not None and not emitted_any:
                    lines.append(
                        f"{metric}_bucket{labelled(le(_fmt(pending_zero)))} "
                        f"{cumulative - count}"
                    )
                pending_zero = None
                lines.append(
                    f"{metric}_bucket{labelled(le(_fmt(bound)))} {cumulative}"
                )
                emitted_any = True
            lines.append(
                f"{metric}_bucket{labelled(le('+Inf'))} {histogram.count}"
            )
            lines.append(f"{metric}_sum{labelled()} {_fmt(histogram.total)}")
            lines.append(f"{metric}_count{labelled()} {histogram.count}")

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Text-format checker
# ---------------------------------------------------------------------------


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse (and validate) Prometheus text exposition.

    Returns ``{metric name: [(labels, value), …]}``. Raises ``ValueError``
    with the offending line on any grammar violation, unknown TYPE,
    samples not matching their declared family, or a histogram whose
    cumulative buckets decrease / lack ``+Inf`` / disagree with ``_count``.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not _NAME_RE.match(name):
                    raise ValueError(f"line {lineno}: bad TYPE name {name!r}")
                if kind not in _VALID_TYPES:
                    raise ValueError(f"line {lineno}: bad TYPE kind {kind!r}")
                types[name] = kind
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(f"line {lineno}: bad HELP line {line!r}")
            # other comments are allowed and ignored
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").rstrip(",").split(","):
                label_match = _LABEL_RE.match(pair.strip())
                if label_match is None:
                    raise ValueError(
                        f"line {lineno}: bad label pair {pair!r}"
                    )
                labels[label_match.group(1)] = label_match.group(2)
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace(
                "-Inf", "-inf"
            ))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from None
        samples.setdefault(match.group("name"), []).append((labels, value))

    _check_histograms(samples, types)
    return samples


def _check_histograms(samples, types) -> None:
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{name}_bucket", [])
        if not buckets:
            raise ValueError(f"histogram {name} has no _bucket samples")
        # One histogram family may carry several label sets (e.g. the
        # executor's per-outcome task latencies); the cumulative-bucket
        # invariants hold per series, keyed by the labels minus ``le``.
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]
        series = {}
        for labels, value in buckets:
            if "le" not in labels:
                raise ValueError(f"histogram {name} bucket missing le label")
            edge = float(labels["le"].replace("+Inf", "inf"))
            rest = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            series.setdefault(rest, []).append((edge, value))
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in samples.get(f"{name}_count", [])
        }
        sums = {
            tuple(sorted(labels.items()))
            for labels, _ in samples.get(f"{name}_sum", [])
        }
        for rest, edges in series.items():
            tag = f"histogram {name}" + (f" {dict(rest)}" if rest else "")
            if edges != sorted(edges, key=lambda pair: pair[0]):
                raise ValueError(f"{tag} buckets out of order")
            cumulative = [value for _, value in edges]
            if any(b < a for a, b in zip(cumulative, cumulative[1:])):
                raise ValueError(f"{tag} buckets not cumulative")
            if edges[-1][0] != float("inf"):
                raise ValueError(f"{tag} missing +Inf bucket")
            if rest not in counts or counts[rest] != edges[-1][1]:
                raise ValueError(f"{tag}: +Inf bucket disagrees with _count")
            if rest not in sums:
                raise ValueError(f"{tag} missing _sum")


# ---------------------------------------------------------------------------
# HTTP server
# ---------------------------------------------------------------------------


class _TelemetryHandler(BaseHTTPRequestHandler):
    """GET-only handler for /metrics and /healthz."""

    server_version = "repro-telemetry/1.0"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path.split("?", 1)[0] == "/metrics":
            body = render_prometheus(self.server.registry).encode()
            self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
        elif self.path.split("?", 1)[0] == "/healthz":
            payload = {
                "status": "ok",
                "uptime_seconds": round(
                    monotonic() - self.server.started_at, 3
                ),
            }
            self._reply(
                200, "application/json", json.dumps(payload).encode()
            )
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes should not spam stderr


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, registry: MetricsRegistry) -> None:
        super().__init__(address, _TelemetryHandler)
        self.registry = registry
        self.started_at = monotonic()


class TelemetryServer:
    """Serves a registry's metrics over HTTP on a background thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` for the bound value. Usable as a context manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "TelemetryServer":
        """Bind and serve; returns self (idempotent once started)."""
        if self._server is not None:
            return self
        self._server = _TelemetryHTTPServer(
            (self.host, self.port), self.registry
        )
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        """Base URL of the server (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
