"""Observability: metrics, histograms, tracing, export, and audit logs.

This package is dependency-free within :mod:`repro` (nothing here imports
the optimizer or executor) so any layer can emit metrics, trace events,
journal entries, or query-log records without import cycles. See
README.md § Observability and § Telemetry for the schemas.
"""

from .exporter import (
    TelemetryServer,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)
from .histogram import DEFAULT_BOUNDS, Histogram
from .journal import (
    NULL_JOURNAL,
    DecisionJournal,
    active_journal,
    use_journal,
)
from .metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    OperatorStats,
    TimerStats,
    active_registry,
    use_registry,
)
from .chrome import render_chrome_trace, to_chrome_trace
from .critical import (
    CriticalPathReport,
    analyze,
    find_orphans,
    load_trace,
    operator_attribution,
    render_critical_path,
    render_summary,
)
from .ledger import (
    ScanLedgerEntry,
    SharingLedger,
    SpoolLedgerEntry,
    build_ledger,
    estimated_ledger,
)
from .querylog import NULL_QUERY_LOG, QueryLog
from .trace import (
    NULL_CONTEXT,
    NULL_TRACER,
    TRACE_HEADER_TYPE,
    SpanContext,
    TraceEvent,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OperatorStats",
    "TimerStats",
    "active_registry",
    "use_registry",
    "Histogram",
    "DEFAULT_BOUNDS",
    "render_prometheus",
    "parse_prometheus_text",
    "sanitize_metric_name",
    "TelemetryServer",
    "QueryLog",
    "NULL_QUERY_LOG",
    "DecisionJournal",
    "NULL_JOURNAL",
    "active_journal",
    "use_journal",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "SpanContext",
    "NULL_CONTEXT",
    "TRACE_HEADER_TYPE",
    "SharingLedger",
    "ScanLedgerEntry",
    "SpoolLedgerEntry",
    "build_ledger",
    "estimated_ledger",
    "CriticalPathReport",
    "analyze",
    "find_orphans",
    "load_trace",
    "operator_attribution",
    "render_critical_path",
    "render_summary",
    "to_chrome_trace",
    "render_chrome_trace",
]
