"""Observability: metrics, tracing, and EXPLAIN ANALYZE support.

This package is dependency-free within :mod:`repro` (nothing here imports
the optimizer or executor) so any layer can emit metrics or trace events
without import cycles. See README.md § Observability for the counter and
trace schemas.
"""

from .metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    OperatorStats,
    TimerStats,
    active_registry,
    use_registry,
)
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OperatorStats",
    "TimerStats",
    "active_registry",
    "use_registry",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
]
