"""Critical-path analytics over completed JSONL traces.

A trace produced by :class:`~repro.obs.trace.Tracer` during a batch
execution contains, besides the optimizer's Figure-1 spans, one span per
spool materialization (``spool_materialize``), one per query
(``query``), one per operator invocation (``op:*``), and one
``spool_flow`` point event per spool read carrying the producer's span id
— together they encode the batch's producer/consumer DAG with measured
durations. This module walks that structure and answers the questions an
operator asks of a slow batch:

* **Which chain of tasks bounded the batch wall time?** Classic
  critical-path analysis (CPM) over the task DAG: earliest/latest finish
  per task, the longest dependency chain, and per-task *slack* (how much
  a task could slip without moving the batch's finish line). A shared
  spool that pays for itself still serializes its consumers — this is
  where that shows up.
* **Where did the wall time go, per operator?** Self-time attribution:
  each span's inclusive duration minus its children's, aggregated by
  span name.

Everything here is stdlib-only and reads plain dicts, so ``obs`` stays
dependency-free within :mod:`repro`; the ``repro trace`` CLI renders the
reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .trace import TRACE_HEADER_TYPE

#: Span names that define schedulable task nodes in the DAG.
_TASK_SPANS = ("spool_materialize", "query")


@dataclass
class TraceData:
    """A parsed trace: the optional header record plus event dicts."""

    header: Optional[Dict[str, Any]]
    events: List[Dict[str, Any]]


def load_trace(path: str) -> TraceData:
    """Parse a JSONL trace file (header record optional)."""
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == TRACE_HEADER_TYPE:
                header = record
            else:
                events.append(record)
    return TraceData(header=header, events=events)


def _task_key(event: Dict[str, Any]) -> Optional[str]:
    """The task-node key for a span event, if it is a task span."""
    name = event.get("name")
    attrs = event.get("attrs") or {}
    if name == "spool_materialize" and "spool" in attrs:
        return f"spool:{attrs['spool']}"
    if name == "query" and "name" in attrs:
        return f"query:{attrs['name']}"
    return None


@dataclass
class TaskNode:
    """One schedulable unit of the executed batch, with measured times."""

    key: str
    span_id: int
    start: float
    duration: float
    deps: Set[str] = field(default_factory=set)
    #: CPM results (filled by :func:`analyze`).
    earliest_finish: float = 0.0
    slack: float = 0.0
    on_critical_path: bool = False


@dataclass
class CriticalPathReport:
    """The task DAG with critical-path annotations."""

    #: tasks in trace (start-time) order.
    tasks: List[TaskNode]
    #: task keys along the critical path, dependency order.
    critical_path: List[str]
    #: summed duration of the critical path.
    path_seconds: float
    #: duration of the batch root span, when the trace has one.
    batch_seconds: Optional[float]
    #: (producer key, consumer key) flow edges observed at run time.
    flow_edges: List[Tuple[str, str]]

    def task(self, key: str) -> TaskNode:
        """One task node by key (KeyError if absent)."""
        for node in self.tasks:
            if node.key == key:
                return node
        raise KeyError(key)


def _parent_chain_task(
    event: Dict[str, Any],
    by_id: Dict[int, Dict[str, Any]],
    task_by_span: Dict[int, str],
) -> Optional[str]:
    """The nearest enclosing task span's key for an event."""
    parent = event.get("parent_id")
    while parent is not None:
        if parent in task_by_span:
            return task_by_span[parent]
        node = by_id.get(parent)
        if node is None:
            return None
        parent = node.get("parent_id")
    return None


def find_roots(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Events with no parent — the trace's root spans/events."""
    return [e for e in events if e.get("parent_id") is None]


def find_orphans(
    events: List[Dict[str, Any]], root_span_id: int
) -> List[Dict[str, Any]]:
    """Events *not* reachable from ``root_span_id`` via parent links.

    The trace-propagation invariant for one traced batch is that this is
    empty: every span a worker thread emits must chain up to the batch
    root."""
    by_id = {e["span_id"]: e for e in events}
    orphans: List[Dict[str, Any]] = []
    for event in events:
        node: Optional[Dict[str, Any]] = event
        while node is not None and node["span_id"] != root_span_id:
            parent = node.get("parent_id")
            node = by_id.get(parent) if parent is not None else None
        if node is None:
            orphans.append(event)
    return orphans


def analyze(events: List[Dict[str, Any]]) -> CriticalPathReport:
    """Build the task DAG from a trace and run critical-path analysis.

    Dependencies come from the run-time ``spool_flow`` events (one per
    spool read, carrying the producer's span id), so the analyzed DAG is
    the *observed* producer/consumer structure, not a plan-time guess."""
    by_id = {e["span_id"]: e for e in events}
    task_by_span: Dict[int, str] = {}
    nodes: Dict[str, TaskNode] = {}
    for event in events:
        key = _task_key(event)
        if key is None or "duration" not in event:
            continue
        task_by_span[event["span_id"]] = key
        node = nodes.get(key)
        if node is None:
            nodes[key] = TaskNode(
                key=key,
                span_id=event["span_id"],
                start=event["start"],
                duration=event["duration"],
            )
        else:
            # A re-materialized spool (should not happen) or a re-run
            # query: accumulate so nothing is silently dropped.
            node.duration += event["duration"]

    flow_edges: List[Tuple[str, str]] = []
    for event in events:
        if event.get("name") != "spool_flow":
            continue
        attrs = event.get("attrs") or {}
        producer_span = attrs.get("from_span")
        producer = task_by_span.get(producer_span)
        consumer = _parent_chain_task(event, by_id, task_by_span)
        if producer is None or consumer is None or producer == consumer:
            continue
        flow_edges.append((producer, consumer))
        nodes[consumer].deps.add(producer)

    ordered = sorted(nodes.values(), key=lambda n: (n.start, n.key))

    # Forward pass: earliest finish (longest dependency chain into each).
    finish: Dict[str, float] = {}

    def earliest_finish(node: TaskNode) -> float:
        cached = finish.get(node.key)
        if cached is not None:
            return cached
        upstream = max(
            (earliest_finish(nodes[d]) for d in node.deps if d in nodes),
            default=0.0,
        )
        finish[node.key] = upstream + node.duration
        return finish[node.key]

    path_seconds = 0.0
    for node in ordered:
        node.earliest_finish = earliest_finish(node)
        path_seconds = max(path_seconds, node.earliest_finish)

    # Backward pass: latest finish without delaying the batch → slack.
    consumers: Dict[str, List[str]] = {}
    for node in ordered:
        for dep in node.deps:
            consumers.setdefault(dep, []).append(node.key)
    latest: Dict[str, float] = {}

    def latest_finish(node: TaskNode) -> float:
        cached = latest.get(node.key)
        if cached is not None:
            return cached
        downstream = [
            latest_finish(nodes[c]) - nodes[c].duration
            for c in consumers.get(node.key, ())
        ]
        latest[node.key] = min(downstream) if downstream else path_seconds
        return latest[node.key]

    for node in ordered:
        node.slack = latest_finish(node) - node.earliest_finish

    # The critical path: zero-slack chain, walked producer-first from the
    # task whose earliest finish equals the path length.
    critical: List[str] = []
    if ordered:
        tail = max(ordered, key=lambda n: (n.earliest_finish, -n.start))
        cursor: Optional[TaskNode] = tail
        while cursor is not None:
            critical.append(cursor.key)
            cursor.on_critical_path = True
            deps = [nodes[d] for d in cursor.deps if d in nodes]
            cursor = (
                max(deps, key=lambda n: n.earliest_finish) if deps else None
            )
        critical.reverse()

    batch_seconds: Optional[float] = None
    for event in events:
        if event.get("name") in ("batch", "execute_batch") and (
            "duration" in event
        ):
            batch_seconds = event["duration"]
            if event.get("name") == "batch":
                break

    return CriticalPathReport(
        tasks=ordered,
        critical_path=critical,
        path_seconds=path_seconds,
        batch_seconds=batch_seconds,
        flow_edges=flow_edges,
    )


# ---------------------------------------------------------------------------
# Per-operator wall-time attribution
# ---------------------------------------------------------------------------


@dataclass
class SpanAggregate:
    """Inclusive/self wall time for all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0


def operator_attribution(
    events: List[Dict[str, Any]],
) -> List[SpanAggregate]:
    """Aggregate span self-time by name, descending.

    Self time is a span's inclusive duration minus its direct children's
    inclusive durations — the wall time attributable to the operator
    itself rather than its inputs."""
    child_time: Dict[int, float] = {}
    for event in events:
        parent = event.get("parent_id")
        if parent is not None and "duration" in event:
            child_time[parent] = child_time.get(parent, 0.0) + event["duration"]
    aggregates: Dict[str, SpanAggregate] = {}
    for event in events:
        if "duration" not in event:
            continue
        slot = aggregates.get(event["name"])
        if slot is None:
            slot = aggregates[event["name"]] = SpanAggregate(event["name"])
        slot.count += 1
        slot.total += event["duration"]
        slot.self_time += max(
            0.0, event["duration"] - child_time.get(event["span_id"], 0.0)
        )
    return sorted(
        aggregates.values(), key=lambda a: (-a.self_time, a.name)
    )


# ---------------------------------------------------------------------------
# Rendering (the `repro trace` CLI)
# ---------------------------------------------------------------------------


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def render_critical_path(report: CriticalPathReport) -> str:
    """The critical-path report as text."""
    lines: List[str] = []
    if not report.tasks:
        return "no task spans in trace (nothing to analyze)"
    wall = (
        f" of {_ms(report.batch_seconds)} batch wall"
        if report.batch_seconds is not None
        else ""
    )
    lines.append(
        f"Critical path ({len(report.critical_path)} task(s), "
        f"{_ms(report.path_seconds)}{wall}):"
    )
    for key in report.critical_path:
        lines.append(f"  * {key}  {_ms(report.task(key).duration)}")
    lines.append("")
    lines.append("Per-task slack:")
    width = max(len(node.key) for node in report.tasks)
    for node in report.tasks:
        deps = ", ".join(sorted(node.deps)) if node.deps else "-"
        marker = "*" if node.on_critical_path else " "
        lines.append(
            f"  {marker} {node.key:<{width}}  dur {_ms(node.duration):>9}  "
            f"slack {_ms(node.slack):>9}  deps [{deps}]"
        )
    return "\n".join(lines)


def render_summary(
    trace: TraceData, top: int = 12
) -> str:
    """Trace overview: volume, threads, flows, operator attribution."""
    events = trace.events
    spans = [e for e in events if "duration" in e]
    threads = sorted(
        {e.get("thread") for e in events if e.get("thread") is not None}
    )
    lines = [
        (
            f"Trace summary: {len(events)} event(s), {len(spans)} span(s), "
            f"{len(threads)} thread(s)"
        )
    ]
    if trace.header is not None:
        lines.append(
            f"  base wall time {trace.header.get('wall_time_unix')} "
            f"(perf_counter epoch {trace.header.get('perf_counter_epoch')})"
        )
    report = analyze(events)
    if report.batch_seconds is not None:
        lines.append(f"  batch wall {_ms(report.batch_seconds)}")
    if report.flow_edges:
        unique = sorted(set(report.flow_edges))
        rendered = ", ".join(f"{p} -> {c}" for p, c in unique)
        lines.append(
            f"  spool flows ({len(report.flow_edges)} read(s)): {rendered}"
        )
    attribution = operator_attribution(events)
    if attribution:
        lines.append("")
        lines.append("Span self-time attribution:")
        width = max(len(a.name) for a in attribution[:top])
        lines.append(
            f"  {'name':<{width}}  {'count':>5}  {'total':>10}  {'self':>10}"
        )
        for agg in attribution[:top]:
            lines.append(
                f"  {agg.name:<{width}}  {agg.count:>5}  "
                f"{_ms(agg.total):>10}  {_ms(agg.self_time):>10}"
            )
        if len(attribution) > top:
            lines.append(f"  ... {len(attribution) - top} more span name(s)")
    return "\n".join(lines)
