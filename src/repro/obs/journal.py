"""Optimizer decision journal: why each CSE candidate lived or died.

The paper's optimizer makes its interesting decisions in places EXPLAIN
never shows: signature buckets that fail Heuristic 1, consumers dropped
by Heuristic 2's upper-bound test, merges rejected because the benefit Δ
went negative (Heuristic 3), containment prunes (Heuristic 4), and
single-consumer plans discarded at their LCA (§5.1). A
:class:`DecisionJournal` records each of those events with the actual
numbers the decision used, keyed by candidate id where one exists, and
renders them as the ``repro explain --why`` report.

Events are plain dicts (``kind`` plus free-form fields) so the journal
stays dependency-free within ``repro`` — the optimizer layers emit, this
module stores and renders. Like the metrics registry, the journal is
reached ambiently (:func:`active_journal` / :func:`use_journal`) because
the emitting call sites are free functions deep in ``cse/``.

Event kinds emitted by the optimizer layers, in lifecycle order:

========================  ====================================================
kind                      meaning / key fields
========================  ====================================================
``bucket``                signature bucket examined: ``signature``, ``groups``,
                          ``sharable`` (≥2 groups with a disjoint pair)
``h1``                    Heuristic 1 test (per bucket, then per compatible
                          set): ``signature``, ``lower_bound_sum``,
                          ``threshold`` (=α·C_Q), ``alpha``, ``passed``
``h2``                    Heuristic 2 consumer test: ``consumer`` (gid label),
                          ``upper``, ``keep_cost`` (=C_R+(upper+C_W)/N),
                          ``dropped``
``h3``                    Heuristic 3 / Algorithm 1 merge step: ``members``
                          (consumer gid labels), ``delta`` (separate −
                          merged), ``merged``
``candidate``             candidate generated: ``cse_id``, ``signature``,
                          ``consumers`` (gid labels), ``est_rows``
``h4``                    Heuristic 4 containment: ``inner``, ``outer``
                          (cse ids), ``inner_bytes``, ``outer_bytes``,
                          ``beta``, ``pruned``
``lca``                   costing + placement: ``cse_id``, ``body_cost``,
                          ``write_cost``, ``read_cost``, ``lca_gid``,
                          ``lifted_to_root``
``single_consumer``       §5.1 LCA discard tally: ``cse_id``, ``discards``
``equiv``                 bag-semantics equivalence checker verdict
                          (``repro.equiv``): ``outcome`` (``proved`` /
                          ``refuted`` / ``gave_up``), ``reason``, plus either
                          ``query``+``extension`` (outer-join reduction) or
                          ``cse_id``+``consumer`` (consumer-match gate)
``history``               §5.4 per-pass reuse accounting: ``pass_index``,
                          ``subset``, ``groups_reused``,
                          ``groups_recomputed``, ``planset_hits``,
                          ``tops_folded``, ``reuse`` (hit ratio),
                          ``seconds``
``strategy``              which Step-3 strategy ran and why: ``strategy``
                          (``paper`` / ``greedy``), ``reason``,
                          ``candidates``
``greedy_pick``           one greedy acceptance (cs/9910021): ``cse_id``,
                          ``benefit``, ``cost``, ``rank``, ``evaluations``
``verdict``               final outcome: ``cse_id``, ``kept``, ``reason``
========================  ====================================================
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class DecisionJournal:
    """Thread-safe, append-only record of optimizer sharing decisions."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    # -- write path --------------------------------------------------------

    def event(self, kind: str, **fields: Any) -> None:
        """Append one event (no-op when disabled)."""
        if not self.enabled:
            return
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(fields)
        with self._lock:
            self._events.append(entry)

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()

    # -- read path ---------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """All events, or only those of one ``kind``, in emission order."""
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [entry for entry in snapshot if entry["kind"] == kind]

    def for_candidate(self, cse_id: str) -> List[Dict[str, Any]]:
        """Every event mentioning candidate ``cse_id``."""
        return [
            entry
            for entry in self.events()
            if entry.get("cse_id") == cse_id
            or cse_id in (entry.get("inner"), entry.get("outer"))
        ]

    def verdicts(self) -> Dict[str, Dict[str, Any]]:
        """Final ``verdict`` event per candidate id."""
        return {
            entry["cse_id"]: entry for entry in self.events("verdict")
        }

    def to_jsonl(self) -> str:
        """All events as JSONL text."""
        return "".join(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
            for entry in self.events()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- rendering (``repro explain --why``) -------------------------------

    def render_why(self) -> str:
        """The journal as a human-readable report.

        Layout: pre-candidate events first (signature buckets, H1 set
        tests, H2 consumer drops, Algorithm 1 merge steps — where
        expressions die before getting an id), then one block per
        generated candidate with its lifecycle and final verdict."""
        lines: List[str] = ["Optimizer decision journal"]

        stage_lines = []
        for entry in self.events("bucket"):
            status = "sharable" if entry.get("sharable") else "not sharable"
            stage_lines.append(
                f"  bucket {entry.get('signature')}: "
                f"{entry.get('groups')} group(s), {status}"
            )
        for entry in self.events("h1"):
            outcome = "passed" if entry.get("passed") else "FAILED"
            stage_lines.append(
                f"  H1 {entry.get('signature')}: "
                f"Σ lower bounds {entry.get('lower_bound_sum', 0.0):.1f} vs "
                f"α·C_Q {entry.get('threshold', 0.0):.1f} "
                f"(α={entry.get('alpha')}) → {outcome}"
            )
        for entry in self.events("h2"):
            action = "DROPPED" if entry.get("dropped") else "kept"
            stage_lines.append(
                f"  H2 consumer {entry.get('consumer')}: upper "
                f"{entry.get('upper', 0.0):.1f} vs keep-cost "
                f"{entry.get('keep_cost', 0.0):.1f} → {action}"
            )
        for entry in self.events("h3"):
            action = "merged" if entry.get("merged") else "no merge"
            members = ", ".join(entry.get("members") or ())
            stage_lines.append(
                f"  H3 merge [{members}]: Δ={entry.get('delta', 0.0):.1f} "
                f"→ {action}"
            )
        if stage_lines:
            lines.append("candidate generation:")
            lines.extend(stage_lines)

        equiv_lines = []
        for entry in self.events("equiv"):
            if entry.get("cse_id") is not None:
                continue  # consumer-match checks render under their candidate
            equiv_lines.append(
                f"  {entry.get('query')}/{entry.get('extension')} "
                f"outer-join reduction: {entry.get('outcome')} — "
                f"{entry.get('reason')}"
            )
        if equiv_lines:
            lines.append("equivalence checker (outer-join simplification):")
            lines.extend(equiv_lines)

        for entry in self.events("strategy"):
            lines.append(
                f"step-3 strategy: {entry.get('strategy')} over "
                f"{entry.get('candidates')} candidate(s) — "
                f"{entry.get('reason')}"
            )
        picks = self.events("greedy_pick")
        if picks:
            lines.append("greedy selection (benefit-ordered, cs/9910021):")
            for entry in picks:
                lines.append(
                    f"  pick #{entry.get('rank')}: {entry.get('cse_id')} "
                    f"benefit {entry.get('benefit', 0.0):.1f} → plan cost "
                    f"{entry.get('cost', 0.0):.1f} "
                    f"({entry.get('evaluations')} pass(es) spent)"
                )

        history = self.events("history")
        if history:
            lines.append("optimization-history reuse (§5.4):")
            total_reused = total_recomputed = 0
            for entry in history:
                subset = ", ".join(entry.get("subset") or ())
                reused = entry.get("groups_reused", 0)
                recomputed = entry.get("groups_recomputed", 0)
                total_reused += reused
                total_recomputed += recomputed
                lines.append(
                    f"  pass {entry.get('pass_index')} [{subset}]: "
                    f"{reused} group(s) reused, {recomputed} recomputed, "
                    f"{entry.get('tops_folded', 0)} top(s) folded from "
                    f"history ({entry.get('seconds', 0.0):.4f}s)"
                )
            visits = total_reused + total_recomputed
            ratio = total_reused / visits if visits else 0.0
            lines.append(
                f"  reuse ratio: {total_reused}/{visits} group results "
                f"({ratio:.0%}) carried over from earlier passes"
            )

        verdicts = self.verdicts()
        candidate_ids = [
            entry["cse_id"] for entry in self.events("candidate")
        ]
        for cse_id in candidate_ids:
            verdict = verdicts.get(cse_id, {})
            kept = verdict.get("kept")
            headline = (
                "KEPT" if kept else f"REJECTED ({verdict.get('reason', '?')})"
            )
            if verdict.get("equiv"):
                headline += f" [equivalence checker: {verdict['equiv']}]"
            lines.append(f"candidate {cse_id}: {headline}")
            for entry in self.for_candidate(cse_id):
                rendered = self._render_event(cse_id, entry)
                if rendered:
                    lines.append(f"  {rendered}")
        if not candidate_ids:
            lines.append("no candidates were generated")
        return "\n".join(lines)

    def _render_event(
        self, cse_id: str, entry: Dict[str, Any]
    ) -> Optional[str]:
        kind = entry["kind"]
        if kind == "candidate":
            consumers = ", ".join(entry.get("consumers") or ())
            return (
                f"generated from {entry.get('signature')} for consumers "
                f"[{consumers}] (est {entry.get('est_rows', 0.0):.0f} rows)"
            )
        if kind == "lca":
            placement = (
                "the batch root"
                if entry.get("lifted_to_root")
                else f"LCA group g{entry.get('lca_gid')}"
            )
            return (
                f"costed: body {entry.get('body_cost', 0.0):.1f} + "
                f"write {entry.get('write_cost', 0.0):.1f} charged once at "
                f"{placement}; read {entry.get('read_cost', 0.0):.1f} "
                f"per consumer"
            )
        if kind == "h4":
            action = "pruned" if entry.get("pruned") else "kept"
            role = "inner" if entry.get("inner") == cse_id else "outer"
            return (
                f"H4 containment {entry.get('inner')} ⊆ "
                f"{entry.get('outer')}: bytes "
                f"{entry.get('inner_bytes', 0.0):.0f} vs β·"
                f"{entry.get('outer_bytes', 0.0):.0f} "
                f"(β={entry.get('beta')}) → {entry.get('inner')} {action} "
                f"[this candidate is the {role}]"
            )
        if kind == "single_consumer":
            return (
                f"§5.1 LCA rule: single-consumer plans discarded "
                f"{entry.get('discards')}× during enumeration"
            )
        if kind == "equiv":
            return (
                f"equivalence check for consumer {entry.get('consumer')}: "
                f"{entry.get('outcome')} — {entry.get('reason')}"
            )
        if kind == "verdict":
            return None  # already in the headline
        return None


#: Default, disabled journal: ``event`` is a cheap no-op.
NULL_JOURNAL = DecisionJournal(enabled=False)


# ---------------------------------------------------------------------------
# Ambient journal (mirrors metrics.active_registry for deep call sites)
# ---------------------------------------------------------------------------

_ambient = threading.local()


def active_journal() -> DecisionJournal:
    """The journal installed by the innermost :func:`use_journal`."""
    return getattr(_ambient, "journal", NULL_JOURNAL)


@contextmanager
def use_journal(journal: Optional[DecisionJournal]) -> Iterator[DecisionJournal]:
    """Install ``journal`` as the thread's ambient decision journal."""
    # `is not None`, not `or`: an empty journal is falsy (len() == 0).
    journal = journal if journal is not None else NULL_JOURNAL
    previous = getattr(_ambient, "journal", NULL_JOURNAL)
    _ambient.journal = journal
    try:
        yield journal
    finally:
        _ambient.journal = previous
