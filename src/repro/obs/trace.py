"""Structured trace events: spans with parent ids, serialized as JSON lines.

The optimizer emits one span per step of the paper's Figure 1 architecture
(normal optimization → candidate generation → CSE optimization), with
nested spans for each re-optimization pass, and the executor emits spans
per spool materialization. Events carry free-form attributes (candidate
ids, subset contents, row counts) so a trace alone reconstructs what the
optimizer considered and why.

Timestamps are ``perf_counter`` offsets from the tracer's creation — they
order and measure, but are not wall-clock datetimes. A disabled tracer
(:data:`NULL_TRACER`) is a no-op, same contract as the metrics registry.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class TraceEvent:
    """One span (``duration`` set) or point event (``duration`` None)."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL payload for this event."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
        }
        if self.duration is not None:
            payload["duration"] = round(self.duration, 6)
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


class Tracer:
    """Collects spans/events; thread-safe, per-thread span nesting."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._epoch = perf_counter()

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return perf_counter() - self._epoch

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_parent(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[TraceEvent]]:
        """Open a nested span; its duration is set when the block exits."""
        if not self.enabled:
            yield None
            return
        event = TraceEvent(
            name=name,
            span_id=self._allocate_id(),
            parent_id=self._current_parent(),
            start=self._now(),
            attrs=dict(attrs),
        )
        stack = self._stack()
        stack.append(event.span_id)
        try:
            yield event
        finally:
            stack.pop()
            event.duration = self._now() - event.start
            with self._lock:
                self.events.append(event)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the current span."""
        if not self.enabled:
            return
        event = TraceEvent(
            name=name,
            span_id=self._allocate_id(),
            parent_id=self._current_parent(),
            start=self._now(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.events.append(event)

    # -- output ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All events, start-ordered, one JSON object per line."""
        with self._lock:
            ordered = sorted(self.events, key=lambda e: e.start)
            return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in ordered)

    def write(self, path: str) -> int:
        """Write the JSONL stream to ``path``; returns the event count."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        with self._lock:
            return len(self.events)


#: The default, disabled tracer.
NULL_TRACER = Tracer(enabled=False)
