"""Structured trace events: spans with parent ids, serialized as JSON lines.

The optimizer emits one span per step of the paper's Figure 1 architecture
(normal optimization → candidate generation → CSE optimization), with
nested spans for each re-optimization pass, and the executor emits spans
per batch, per spool materialization, per query, and per operator
invocation. Events carry free-form attributes (candidate ids, subset
contents, row counts) so a trace alone reconstructs what the optimizer
considered, why, and where the execution wall time went.

Cross-thread propagation: span nesting is tracked per thread, but a
:class:`SpanContext` captured with :meth:`Tracer.current_context` can be
re-attached in another thread via :meth:`Tracer.attach` — that is how the
parallel batch executor parents every worker-thread task span under the
batch's root span instead of orphaning it (see ``repro.serve.parallel``).
Every event also records the emitting thread's name, which becomes the
lane assignment in the Chrome trace exporter (:mod:`repro.obs.chrome`).

Timestamps are clock offsets from the tracer's creation — they order and
measure, but are not wall-clock datetimes. Written traces start with one
*header record* (``{"type": "trace_header", ...}``) carrying the
wall-clock base timestamp and the raw ``perf_counter`` epoch, so offsets
can be joined against query-log records from the same session; the event
records themselves keep plain offsets.

A tracer constructed with ``path=...`` owns that JSONL file: ``flush()``
appends the not-yet-written events, ``close()`` flushes and settles the
file, and a ``weakref.finalize`` hook flushes at interpreter exit so the
trace is never truncated when the owner forgets to close. A disabled
tracer (:data:`NULL_TRACER`) is a no-op, same contract as the metrics
registry.
"""

from __future__ import annotations

import json
import os
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter, time as wall_clock
from typing import Any, Callable, Dict, Iterator, List, Optional

#: The ``type`` tag of the header record written before any events.
TRACE_HEADER_TYPE = "trace_header"


@dataclass(frozen=True)
class SpanContext:
    """A portable reference to an open span (or to "no span").

    Capture one with :meth:`Tracer.current_context` in the thread that
    owns the span, hand it to another thread (e.g. inside a task spec),
    and re-establish parenting there with :meth:`Tracer.attach`."""

    span_id: Optional[int] = None


#: The empty context: attaching it is a no-op.
NULL_CONTEXT = SpanContext(None)


@dataclass
class TraceEvent:
    """One span (``duration`` set) or point event (``duration`` None)."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: name of the thread that emitted the event — the Chrome exporter's
    #: lane assignment.
    thread: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL payload for this event."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
        }
        if self.duration is not None:
            payload["duration"] = round(self.duration, 6)
        if self.thread is not None:
            payload["thread"] = self.thread
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


def _flush_pending(
    path: str,
    events: List[TraceEvent],
    lock: threading.Lock,
    header: Dict[str, Any],
    state: Dict[str, int],
) -> int:
    """Append ``events[state['flushed']:]`` to ``path`` (header first).

    Module-level (not a method) so ``weakref.finalize`` can call it after
    the tracer itself is unreachable: it closes over the shared event
    list, lock, and state cell, never the tracer."""
    with lock:
        pending = events[state["flushed"]:]
        if state["flushed"] == 0:
            mode = "w"
            lines = [json.dumps(header, sort_keys=True)]
        else:
            if not pending:
                return 0
            mode = "a"
            lines = []
        lines.extend(json.dumps(e.to_dict(), sort_keys=True) for e in pending)
        with open(path, mode, encoding="utf-8") as sink:
            sink.write("\n".join(lines) + "\n")
        state["flushed"] += len(pending)
        return len(pending)


class Tracer:
    """Collects spans/events; thread-safe, per-thread span nesting.

    ``path`` binds the tracer to a JSONL file with an explicit lifecycle
    (:meth:`flush` / :meth:`close`, plus an interpreter-exit finalizer).
    ``clock`` injects a deterministic time source for golden tests
    (defaults to :func:`time.perf_counter`)."""

    def __init__(
        self,
        enabled: bool = True,
        path: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self.path = path
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._clock = clock if clock is not None else perf_counter
        self._epoch = self._clock()
        self.header: Dict[str, Any] = {
            "type": TRACE_HEADER_TYPE,
            "version": 1,
            #: wall-clock instant of the tracer's epoch — add an event's
            #: ``start`` offset to get its wall-clock time.
            "wall_time_unix": round(wall_clock(), 6),
            #: the raw clock value the offsets are measured from.
            "perf_counter_epoch": round(self._epoch, 6),
            "pid": os.getpid(),
        }
        #: shared with the finalizer: how many events reached the file.
        self._flush_state = {"flushed": 0}
        self._finalizer: Optional[weakref.finalize] = None
        if path is not None:
            self._finalizer = weakref.finalize(
                self,
                _flush_pending,
                path,
                self.events,
                self._lock,
                self.header,
                self._flush_state,
            )

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_parent(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- context propagation -----------------------------------------------

    def current_context(self) -> SpanContext:
        """The innermost open span of *this* thread, as a portable handle."""
        if not self.enabled:
            return NULL_CONTEXT
        return SpanContext(self._current_parent())

    @contextmanager
    def attach(self, context: Optional[SpanContext]) -> Iterator[None]:
        """Parent this thread's subsequent spans under ``context``.

        The cross-thread half of trace propagation: a worker thread
        attaches the scheduling thread's context so its spans nest under
        the batch root instead of starting a disconnected tree."""
        if (
            not self.enabled
            or context is None
            or context.span_id is None
        ):
            yield
            return
        stack = self._stack()
        stack.append(context.span_id)
        try:
            yield
        finally:
            stack.pop()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        /,
        *,
        parent: Optional[SpanContext] = None,
        **attrs: Any,
    ) -> Iterator[Optional[TraceEvent]]:
        """Open a nested span; its duration is set when the block exits.

        ``parent`` overrides the thread's implicit nesting for this span
        only (children opened inside still nest under it normally)."""
        if not self.enabled:
            yield None
            return
        parent_id = (
            parent.span_id if parent is not None else self._current_parent()
        )
        event = TraceEvent(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent_id,
            start=self._now(),
            attrs=dict(attrs),
            thread=threading.current_thread().name,
        )
        stack = self._stack()
        stack.append(event.span_id)
        try:
            yield event
        finally:
            stack.pop()
            event.duration = self._now() - event.start
            with self._lock:
                self.events.append(event)

    def event(self, name: str, /, **attrs: Any) -> None:
        """Record a point event under the current span."""
        if not self.enabled:
            return
        event = TraceEvent(
            name=name,
            span_id=self._allocate_id(),
            parent_id=self._current_parent(),
            start=self._now(),
            attrs=dict(attrs),
            thread=threading.current_thread().name,
        )
        with self._lock:
            self.events.append(event)

    # -- output ------------------------------------------------------------

    def to_jsonl(self, include_header: bool = False) -> str:
        """All events, start-ordered, one JSON object per line."""
        with self._lock:
            ordered = sorted(self.events, key=lambda e: e.start)
            lines = [json.dumps(e.to_dict(), sort_keys=True) for e in ordered]
        if include_header:
            lines.insert(0, json.dumps(self.header, sort_keys=True))
        return "\n".join(lines)

    def write(self, path: str) -> int:
        """Write header + events (start-ordered) to ``path``; returns the
        event count (the header record is not counted)."""
        text = self.to_jsonl(include_header=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with self._lock:
            if path == self.path:
                # The bound file now holds everything; the finalizer and
                # later flushes must not append duplicates.
                self._flush_state["flushed"] = len(self.events)
            return len(self.events)

    def flush(self) -> int:
        """Append completed-but-unwritten events to the bound ``path``.

        The first flush (re)writes the file with the header record first;
        later flushes append, so a long-running session can stream its
        trace incrementally (events land in completion order). Returns
        the number of events written; no-op (0) without a ``path``."""
        if self.path is None:
            return 0
        return _flush_pending(
            self.path, self.events, self._lock, self.header,
            self._flush_state,
        )

    def close(self) -> int:
        """Flush the bound file and detach the exit finalizer (idempotent).

        Returns the number of events written by the final flush."""
        if self.path is None:
            return 0
        written = self.flush()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        return written

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: The default, disabled tracer.
NULL_TRACER = Tracer(enabled=False)
