"""Metrics: counters, gauges, and timers for optimizer and executor.

A :class:`MetricsRegistry` is the single sink for everything the paper's
experiment tables count — candidate CSEs surviving each heuristic, spool
materializations vs. reads, optimization passes — measured at runtime
instead of re-derived from planner estimates. Design goals:

* **Near-zero overhead when disabled.** Every mutator checks ``enabled``
  first and returns immediately; disabled timers hand out a shared no-op
  context manager. The default registry (:data:`NULL_REGISTRY`) is disabled,
  so uninstrumented callers pay one attribute load and one branch.
* **Thread-safe when enabled.** A single lock guards the maps; increments
  are coarse (per operator / per optimization phase, never per row), so
  contention is negligible.
* **Ambient access for deep call sites.** Pruning heuristics are free
  functions called far from the optimizer's entry point; they find the
  current registry via :func:`active_registry` (a thread-local set by
  :func:`use_registry`) instead of threading a parameter through every
  signature.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, Optional

from .histogram import Histogram


def series_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """A registry storage key for one (name, labels) series.

    Labels render Prometheus-style — ``name{k="v",…}`` with keys sorted —
    so the exporter can split the key back into family and label set."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> "tuple[str, str]":
    """Inverse of :func:`series_key`: ``(name, rendered label pairs)``."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


@dataclass
class TimerStats:
    """Aggregated observations of one named timer."""

    count: int = 0
    total: float = 0.0

    @property
    def mean(self) -> float:
        """Mean seconds per observation (0 when never fired)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class OperatorStats:
    """Actuals for one physical operator instance (EXPLAIN ANALYZE).

    ``wall_time`` is inclusive of children; renderers subtract child times
    for self-time. ``rows_out`` accumulates across invocations (an operator
    runs once per bundle execution here, but spool bodies shared by nested
    plans may be skipped entirely)."""

    invocations: int = 0
    rows_out: int = 0
    wall_time: float = 0.0
    #: named wall-time components (e.g. ``materialize`` for spool bodies,
    #: ``finalize`` for the project/sort chain) — a breakdown of
    #: ``wall_time``, keyed by phase name.
    timers: Dict[str, float] = field(default_factory=dict)

    def add_timer(self, name: str, seconds: float) -> None:
        """Accumulate one named wall-time component."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def merge(self, other: "OperatorStats") -> None:
        """Accumulate another slot for the same operator (a plan node
        shared between concurrently executed queries gets one stats slot
        per worker; merging reproduces the serial single-slot totals,
        including the per-phase timer map)."""
        self.invocations += other.invocations
        self.rows_out += other.rows_out
        self.wall_time += other.wall_time
        for name, seconds in other.timers.items():
            self.timers[name] = self.timers.get(name, 0.0) + seconds


class _NullTimer:
    """Shared no-op context manager for disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager recording one observation into a registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._registry.timer_add(self._name, perf_counter() - self._start)


class MetricsRegistry:
    """Thread-safe counters, gauges, and timers, keyed by dotted names.

    Conventions: counters are monotonic event counts
    (``optimizer.candidates_generated``), gauges are last-write-wins
    observations (``optimizer.memo_groups``), timers aggregate wall-clock
    spans (``bench.optimize``).
    """

    __slots__ = (
        "enabled", "_lock", "_counters", "_gauges", "_timers", "_histograms"
    )

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutators ----------------------------------------------------------

    def counter(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Set gauge ``name`` to ``value`` (no-op when disabled).

        ``labels`` tags the series (e.g. ``{"spool": "E1"}``): each
        distinct label set is its own last-write-wins slot, and the
        Prometheus exporter renders the labels onto the sample."""
        if not self.enabled:
            return
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def timer(self, name: str):
        """A context manager timing one observation of ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    def timer_add(self, name: str, seconds: float) -> None:
        """Record one pre-measured observation of timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.count += 1
            stats.total += seconds

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Record one observation into histogram ``name`` (no-op when
        disabled). Histograms are created on first use with the shared
        log-bucket layout (:data:`~repro.obs.histogram.DEFAULT_BOUNDS`).

        ``labels`` tags the series (e.g. ``{"outcome": "ok"}``): each
        distinct label set is its own histogram, and the Prometheus
        exporter renders the labels onto every sample of the series."""
        if not self.enabled:
            return
        key = series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
        histogram.observe(value)

    def reset(self) -> None:
        """Clear all recorded values (the enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()

    # -- readers -----------------------------------------------------------

    def get(
        self,
        name: str,
        default: float = 0.0,
        labels: Optional[Dict[str, str]] = None,
    ) -> float:
        """A counter or gauge value by name (``default`` when absent)."""
        key = series_key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, default)

    def timer_total(self, name: str) -> float:
        """Total seconds recorded for timer ``name`` (0 when absent)."""
        with self._lock:
            stats = self._timers.get(name)
            return stats.total if stats else 0.0

    def histogram(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Histogram]:
        """The histogram recorded under ``name`` (+ ``labels``), if any."""
        with self._lock:
            return self._histograms.get(series_key(name, labels))

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time copy:
        ``{"counters", "gauges", "timers", "histograms"}``. Histogram
        entries carry count/sum/min/max and p50/p95/p99 estimates."""
        with self._lock:
            histograms = dict(self._histograms)
            payload = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"count": s.count, "total": s.total}
                    for name, s in self._timers.items()
                },
            }
        # Histogram snapshots take each histogram's own lock; never while
        # holding the registry lock.
        payload["histograms"] = {
            name: histogram.snapshot() for name, histogram in histograms.items()
        }
        return payload

    def render_prometheus(self) -> str:
        """This registry in Prometheus text exposition format (0.0.4)."""
        from .exporter import render_prometheus  # local: exporter imports us

        return render_prometheus(self)

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry's values into this one."""
        incoming = other.snapshot()
        if not self.enabled:
            return
        with other._lock:
            incoming_histograms = dict(other._histograms)
        with self._lock:
            for name, value in incoming["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(incoming["gauges"])
            for name, timer in incoming["timers"].items():
                stats = self._timers.get(name)
                if stats is None:
                    stats = self._timers[name] = TimerStats()
                stats.count += timer["count"]
                stats.total += timer["total"]
            for name, histogram in incoming_histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = self._histograms[name] = Histogram(histogram.bounds)
                mine.merge(histogram)


#: The default, disabled registry: every call is a cheap no-op.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# ---------------------------------------------------------------------------
# Ambient registry (for free functions deep in the cse/ layer)
# ---------------------------------------------------------------------------

_ambient = threading.local()


def active_registry() -> MetricsRegistry:
    """The registry installed by the innermost :func:`use_registry`."""
    return getattr(_ambient, "registry", NULL_REGISTRY)


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the thread's ambient registry."""
    registry = registry or NULL_REGISTRY
    previous = getattr(_ambient, "registry", NULL_REGISTRY)
    _ambient.registry = registry
    try:
        yield registry
    finally:
        _ambient.registry = previous
