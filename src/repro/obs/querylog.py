"""Structured query log: one JSONL record per executed batch.

A :class:`QueryLog` is the serving layer's audit trail. The
:class:`~repro.api.Session` appends one record per ``execute()`` call
carrying the facts an operator greps for: batch fingerprint, plan-cache
hit/miss, candidate CSEs generated → kept, measured spool savings, wall
time, and row counts. When the batch is slower than ``slow_ms`` the
record also embeds the full EXPLAIN ANALYZE tree, so a slow query ships
its own postmortem instead of requiring a re-run.

The log itself is deliberately dumb — it validates, timestamps, buffers,
and (optionally) appends to a JSONL file under a lock. The record
*content* is assembled by the session; this module has no imports from
the optimizer or executor, keeping ``obs/`` dependency-free.
"""

from __future__ import annotations

import json
import threading
from time import time as wall_clock
from typing import Any, Dict, List, Optional

#: Keys every record is guaranteed to carry (the session fills them).
RECORD_FIELDS = (
    "ts",
    "fingerprint",
    "queries",
    "plan_cache_hit",
    "candidates_generated",
    "candidates_kept",
    "spool_rows_written",
    "spool_rows_read",
    "estimated_savings",
    "wall_ms",
    "rows",
    "slow",
)


class QueryLog:
    """Append-only, thread-safe JSONL query log.

    ``path=None`` keeps records in memory only (tests, ad-hoc sessions);
    with a path each record is appended and flushed immediately so a
    crash loses at most the in-flight record. ``slow_ms`` is the
    threshold at which the session attaches an EXPLAIN ANALYZE tree —
    the log only stamps the boolean; measuring is the caller's job.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        slow_ms: Optional[float] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.path = path
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []

    def is_slow(self, wall_ms: float) -> bool:
        """Whether a batch at ``wall_ms`` crosses the slow threshold."""
        return (
            self.enabled
            and self.slow_ms is not None
            and wall_ms >= self.slow_ms
        )

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one record (no-op when disabled).

        Stamps ``ts`` (epoch seconds) and ``slow`` if absent; everything
        else is stored verbatim."""
        if not self.enabled:
            return
        entry = dict(entry)
        entry.setdefault("ts", round(wall_clock(), 3))
        entry.setdefault(
            "slow", self.is_slow(float(entry.get("wall_ms", 0.0)))
        )
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            self._records.append(entry)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")

    # -- readers -----------------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """A copy of the buffered records, oldest first."""
        with self._lock:
            return list(self._records)

    def slow_queries(self) -> List[Dict[str, Any]]:
        """Only the records flagged slow."""
        return [entry for entry in self.records if entry.get("slow")]

    def to_jsonl(self) -> str:
        """The buffered records as JSONL text."""
        return "".join(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
            for entry in self.records
        )

    def clear(self) -> None:
        """Drop the in-memory buffer (the file, if any, is untouched)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: Default, disabled log: ``record`` is a cheap no-op.
NULL_QUERY_LOG = QueryLog(enabled=False)
