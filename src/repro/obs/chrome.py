"""Chrome trace-event (Perfetto-compatible) export of JSONL traces.

``repro trace export --format chrome`` converts a trace written by
:class:`~repro.obs.trace.Tracer` into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one **lane per thread** — each recorded thread name becomes a ``tid``
  with an ``M`` (metadata) event naming the lane, so the scheduling
  thread and every ``repro-worker`` pool thread render side by side;
* one complete ``X`` slice per span (``ts``/``dur`` in microseconds,
  attrs passed through as ``args``);
* ``i`` instants for point events; and
* ``s``/``f`` **flow arrows** for every producer→consumer spool edge:
  the arrow leaves the ``spool_materialize`` slice on the producer's
  lane and lands on the consumer's read, drawn from the run-time
  ``spool_flow`` events.

Stdlib-only, mirroring the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Synthetic pid when the trace header carries none.
_DEFAULT_PID = 1


def _tid_for(
    thread: Optional[str], lanes: Dict[str, int]
) -> int:
    """A stable small integer lane per thread name, allocation-ordered."""
    name = thread if thread is not None else "unknown"
    if name not in lanes:
        lanes[name] = len(lanes) + 1
    return lanes[name]


def to_chrome_trace(
    events: List[Dict[str, Any]],
    header: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert parsed trace events into a Chrome trace-event payload."""
    pid = (header or {}).get("pid", _DEFAULT_PID)
    lanes: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    by_id = {e["span_id"]: e for e in events}

    # MainThread (or whichever thread spoke first) claims lane 1.
    for event in sorted(events, key=lambda e: e["start"]):
        _tid_for(event.get("thread"), lanes)

    for event in events:
        tid = _tid_for(event.get("thread"), lanes)
        ts = round(event["start"] * 1e6, 3)
        record: Dict[str, Any] = {
            "name": event["name"],
            "pid": pid,
            "tid": tid,
            "ts": ts,
        }
        attrs = dict(event.get("attrs") or {})
        attrs["span_id"] = event["span_id"]
        if event.get("parent_id") is not None:
            attrs["parent_id"] = event["parent_id"]
        record["args"] = attrs
        if "duration" in event:
            record["ph"] = "X"
            record["dur"] = round(event["duration"] * 1e6, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"  # instant scoped to its thread
        trace_events.append(record)

    # Flow arrows: producer spool slice → consuming read instant.
    flow_id = 0
    for event in events:
        if event.get("name") != "spool_flow":
            continue
        producer = by_id.get((event.get("attrs") or {}).get("from_span"))
        if producer is None or "duration" not in producer:
            continue
        flow_id += 1
        spool = (event.get("attrs") or {}).get("spool")
        producer_end = producer["start"] + producer["duration"]
        trace_events.append(
            {
                "name": f"spool {spool}",
                "cat": "spool",
                "ph": "s",
                "id": flow_id,
                "pid": pid,
                "tid": _tid_for(producer.get("thread"), lanes),
                "ts": round(producer_end * 1e6, 3),
            }
        )
        trace_events.append(
            {
                "name": f"spool {spool}",
                "cat": "spool",
                "ph": "f",
                "bp": "e",  # bind to the enclosing slice at the arrival
                "id": flow_id,
                "pid": pid,
                "tid": _tid_for(event.get("thread"), lanes),
                "ts": round(event["start"] * 1e6, 3),
            }
        )

    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for thread_name, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )

    payload: Dict[str, Any] = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }
    if header is not None:
        payload["otherData"] = {
            k: v for k, v in header.items() if k != "type"
        }
    return payload


def render_chrome_trace(
    events: List[Dict[str, Any]],
    header: Optional[Dict[str, Any]] = None,
) -> str:
    """The Chrome trace payload as a JSON string."""
    return json.dumps(to_chrome_trace(events, header), sort_keys=True)
