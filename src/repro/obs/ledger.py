"""The sharing-economics ledger: did each shared spool pay for itself?

Definition 5.1 of the paper prices a shared spool as an *initial* cost
paid once (evaluate the body, ``C_E``, plus write it, ``C_W``) and a
*usage* cost paid per consumer (``C_R``), so sharing across ``n``
consumers saves ``n*C_E - (C_E + C_W + n*C_R)``. The optimizer commits
to a spool based on the *estimated* values of those terms; this module
closes the loop by recomputing the same identity from the executor's
*measured* cost-unit attribution (:class:`~repro.executor.runtime
.SpoolStats` splits the materialization charge into body and write, and
accumulates per-read usage), yielding realized-vs-estimated savings per
spool and per query.

A spool with **negative measured savings** is sharing that lost money —
the exact feedback a future adaptive re-optimizer (ROADMAP item 4) or a
benefit-driven global selection needs; the ledger flags them, and the
session mirrors the flags into the decision journal, the query log, and
``ledger.*`` Prometheus gauges.

All numbers are rounded to 4 decimals once, in :meth:`SharingLedger
.to_payload`, so the values shown in EXPLAIN ANALYZE, the query log,
``explain --why``, and ``/metrics`` are bit-identical.

Everything is duck-typed against plain attributes (``body_cost``,
``write_cost``, ``read_cost`` on candidates; the ``SpoolStats`` fields on
measurements), keeping :mod:`repro.obs` free of imports from the
optimizer and executor layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from .metrics import MetricsRegistry

_ROUND = 4


def _sharing_savings(
    body: float, write: float, read_total: float, consumers: int
) -> float:
    """Def 5.1: ``n*C_E - (C_E + C_W + n*C_R)`` with ``n*C_R`` pre-summed."""
    return consumers * body - (body + write + read_total)


@dataclass
class SpoolLedgerEntry:
    """Estimated vs. measured sharing economics for one spool."""

    cse_id: str
    #: consumers the optimizer planned for (plan-time spool reads).
    planned_consumers: int
    #: reads that actually happened.
    consumers: int
    rows_written: int = 0
    rows_read: int = 0
    # -- estimated (optimizer cost-model units, Def 5.1 terms) ----------
    est_body_cost: float = 0.0  # C_E
    est_write_cost: float = 0.0  # C_W
    est_read_cost: float = 0.0  # C_R, per consumer
    # -- measured (executor cost-unit attribution over actual rows) ----
    measured_body_cost: float = 0.0
    measured_write_cost: float = 0.0
    measured_read_total: float = 0.0
    # -- wall-clock, for reference (not used in the savings identity) --
    materialize_wall_time: float = 0.0
    read_wall_time: float = 0.0

    @property
    def est_savings(self) -> float:
        """Plan-time Def 5.1 savings over the planned consumer count."""
        return _sharing_savings(
            self.est_body_cost,
            self.est_write_cost,
            self.planned_consumers * self.est_read_cost,
            self.planned_consumers,
        )

    @property
    def measured_savings(self) -> float:
        """The same identity over measured costs and actual reads."""
        return _sharing_savings(
            self.measured_body_cost,
            self.measured_write_cost,
            self.measured_read_total,
            self.consumers,
        )

    @property
    def negative(self) -> bool:
        """True when sharing this spool lost money at run time."""
        return self.measured_savings < 0.0


@dataclass
class ScanLedgerEntry:
    """Sharing economics for one shared (table, column-set) scan group.

    A shared scan is spool sharing at the scan leaf with ``C_W = 0`` (the
    raw columns are zero-copy views, nothing is written) and ``C_R ~= 0``
    (handing a consumer the cached arrays costs no per-row work), so
    Def 5.1 collapses to savings ``(n - 1) * C_E``: every consumer past
    the first rides the one physical fetch for free."""

    key: str
    table: str
    columns: List[str] = field(default_factory=list)
    #: consumer-side reads served from the group.
    reads: int = 0
    #: physical fetches actually performed (1 when shared).
    physical_scans: int = 0
    #: rows in the table (one consumer's worth).
    rows: int = 0
    #: rows actually pulled from storage across physical fetches.
    rows_scanned: int = 0
    #: measured cost units charged for the physical work.
    cost_units: float = 0.0

    @property
    def shared(self) -> int:
        """Reads served without a physical fetch of their own."""
        return max(0, self.reads - self.physical_scans)

    @property
    def rows_saved(self) -> int:
        """Rows *not* re-fetched thanks to sharing."""
        return max(0, self.rows * self.reads - self.rows_scanned)

    @property
    def measured_savings(self) -> float:
        """Def 5.1 at the scan leaf: ``(n - 1) * C_E`` with ``C_E`` the
        measured per-fetch cost (``C_W = 0``, ``C_R ~= 0``)."""
        if self.physical_scans <= 0:
            return 0.0
        per_scan = self.cost_units / self.physical_scans
        return self.shared * per_scan


@dataclass
class QueryLedgerEntry:
    """One query's share of the batch's sharing savings."""

    query: str
    #: spool id -> number of reads this query performed.
    spool_reads: Dict[str, int] = field(default_factory=dict)
    est_savings: float = 0.0
    measured_savings: float = 0.0


@dataclass
class SharingLedger:
    """The batch-level ledger: per-spool and per-query entries."""

    spools: List[SpoolLedgerEntry] = field(default_factory=list)
    queries: List[QueryLedgerEntry] = field(default_factory=list)
    #: shared (table, column-set) scan groups with two or more readers.
    scans: List[ScanLedgerEntry] = field(default_factory=list)

    @property
    def est_savings(self) -> float:
        """Total plan-time Def 5.1 savings across shared spools."""
        return sum(entry.est_savings for entry in self.spools)

    @property
    def measured_savings(self) -> float:
        """Total realized savings across shared spools."""
        return sum(entry.measured_savings for entry in self.spools)

    @property
    def negative_spools(self) -> List[str]:
        """Spools whose measured benefit was negative."""
        return [entry.cse_id for entry in self.spools if entry.negative]

    def spool(self, cse_id: str) -> SpoolLedgerEntry:
        """One spool's entry by id (KeyError if absent)."""
        for entry in self.spools:
            if entry.cse_id == cse_id:
                return entry
        raise KeyError(cse_id)

    # -- surfaces -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The ledger as plain JSON-ready data, rounded once.

        Every surface (EXPLAIN ANALYZE, query log, ``/metrics``,
        ``explain --why``) renders from this payload, so the numbers
        agree bit-for-bit across them."""
        return {
            "spools": [
                {
                    "spool": e.cse_id,
                    "planned_consumers": e.planned_consumers,
                    "consumers": e.consumers,
                    "rows_written": e.rows_written,
                    "rows_read": e.rows_read,
                    "est_body_cost": round(e.est_body_cost, _ROUND),
                    "est_write_cost": round(e.est_write_cost, _ROUND),
                    "est_read_cost": round(e.est_read_cost, _ROUND),
                    "est_savings": round(e.est_savings, _ROUND),
                    "measured_body_cost": round(
                        e.measured_body_cost, _ROUND
                    ),
                    "measured_write_cost": round(
                        e.measured_write_cost, _ROUND
                    ),
                    "measured_read_total": round(
                        e.measured_read_total, _ROUND
                    ),
                    "measured_savings": round(e.measured_savings, _ROUND),
                    "materialize_wall_ms": round(
                        e.materialize_wall_time * 1000.0, _ROUND
                    ),
                    "read_wall_ms": round(
                        e.read_wall_time * 1000.0, _ROUND
                    ),
                    "negative": e.negative,
                }
                for e in self.spools
            ],
            "queries": [
                {
                    "query": q.query,
                    "spool_reads": dict(sorted(q.spool_reads.items())),
                    "est_savings": round(q.est_savings, _ROUND),
                    "measured_savings": round(q.measured_savings, _ROUND),
                }
                for q in self.queries
            ],
            "scans": [
                {
                    "scan": s.key,
                    "table": s.table,
                    "columns": list(s.columns),
                    "reads": s.reads,
                    "physical_scans": s.physical_scans,
                    "shared": s.shared,
                    "rows": s.rows,
                    "rows_scanned": s.rows_scanned,
                    "rows_saved": s.rows_saved,
                    "cost_units": round(s.cost_units, _ROUND),
                    "measured_savings": round(s.measured_savings, _ROUND),
                }
                for s in self.scans
            ],
            "est_savings": round(self.est_savings, _ROUND),
            "measured_savings": round(self.measured_savings, _ROUND),
            "negative_spools": self.negative_spools,
        }

    def publish(self, registry: MetricsRegistry) -> None:
        """Mirror the ledger into ``ledger.*`` metrics.

        Per-spool savings become labeled gauges (last batch wins — they
        are state, not accumulation); batch totals accumulate as
        counters."""
        if not registry.enabled:
            return
        payload = self.to_payload()
        for spool in payload["spools"]:
            labels = {"spool": spool["spool"]}
            registry.gauge(
                "ledger.spool_est_savings", spool["est_savings"],
                labels=labels,
            )
            registry.gauge(
                "ledger.spool_measured_savings",
                spool["measured_savings"],
                labels=labels,
            )
            registry.gauge(
                "ledger.spool_consumers", spool["consumers"], labels=labels
            )
        for scan in payload["scans"]:
            labels = {"scan": scan["scan"]}
            registry.gauge(
                "ledger.scan_reads", scan["reads"], labels=labels
            )
            registry.gauge(
                "ledger.scan_shared", scan["shared"], labels=labels
            )
            registry.gauge(
                "ledger.scan_rows_saved", scan["rows_saved"],
                labels=labels,
            )
            registry.gauge(
                "ledger.scan_measured_savings",
                scan["measured_savings"],
                labels=labels,
            )
        registry.gauge("ledger.scans_shared", len(self.scans))
        registry.gauge("ledger.spools_shared", len(self.spools))
        registry.gauge(
            "ledger.negative_spools", len(self.negative_spools)
        )
        registry.counter("ledger.batches", 1)
        registry.counter(
            "ledger.est_savings_total", payload["est_savings"]
        )
        registry.counter(
            "ledger.measured_savings_total", payload["measured_savings"]
        )

    def render(self, indent: str = "") -> str:
        """The ledger as text (the EXPLAIN ANALYZE / --why section)."""
        payload = self.to_payload()
        if not payload["spools"]:
            lines = [f"{indent}sharing ledger: no shared spools"]
            lines.extend(self._render_scans(payload, indent))
            return "\n".join(lines)
        lines = [f"{indent}sharing ledger (Def 5.1, cost units):"]
        for spool in payload["spools"]:
            flag = "  !! negative benefit" if spool["negative"] else ""
            lines.append(
                f"{indent}  spool {spool['spool']}: "
                f"consumers={spool['consumers']} "
                f"(planned {spool['planned_consumers']}), "
                f"rows={spool['rows_written']}{flag}"
            )
            lines.append(
                f"{indent}    est:      C_E={spool['est_body_cost']} "
                f"C_W={spool['est_write_cost']} "
                f"C_R={spool['est_read_cost']}/consumer "
                f"-> savings {spool['est_savings']}"
            )
            lines.append(
                f"{indent}    measured: C_E={spool['measured_body_cost']} "
                f"C_W={spool['measured_write_cost']} "
                f"sum(C_R)={spool['measured_read_total']} "
                f"-> savings {spool['measured_savings']} "
                f"(mat {spool['materialize_wall_ms']}ms, "
                f"reads {spool['read_wall_ms']}ms)"
            )
        if payload["queries"]:
            lines.append(f"{indent}  per-query attribution:")
            for query in payload["queries"]:
                reads = ", ".join(
                    f"{sid}x{n}"
                    for sid, n in query["spool_reads"].items()
                )
                lines.append(
                    f"{indent}    {query['query']}: "
                    f"est {query['est_savings']}, "
                    f"measured {query['measured_savings']}"
                    + (f" (reads {reads})" if reads else "")
                )
        lines.append(
            f"{indent}  total: est {payload['est_savings']}, "
            f"measured {payload['measured_savings']}"
        )
        lines.extend(self._render_scans(payload, indent))
        return "\n".join(lines)

    @staticmethod
    def _render_scans(payload: Dict[str, Any], indent: str) -> List[str]:
        """The shared-scans section (empty when no group was shared)."""
        if not payload["scans"]:
            return []
        lines = [f"{indent}shared scans (Def 5.1 at the leaf, C_W=0):"]
        for scan in payload["scans"]:
            lines.append(
                f"{indent}  scan {scan['scan']}: "
                f"{scan['physical_scans']} physical over "
                f"{scan['reads']} reads "
                f"({scan['shared']} shared), "
                f"rows saved {scan['rows_saved']}, "
                f"C_E={scan['cost_units']} "
                f"-> savings {scan['measured_savings']}"
            )
        return lines


def build_ledger(
    candidates: Iterable[Any],
    spool_stats: Mapping[str, Any],
    query_reads: Optional[Mapping[str, Mapping[str, int]]] = None,
    scan_stats: Optional[Mapping[str, Any]] = None,
) -> SharingLedger:
    """Assemble the ledger from plan-time and run-time evidence.

    ``candidates`` supplies the estimated Def 5.1 terms (objects with
    ``cse_id``, ``body_cost``, ``write_cost``, ``read_cost`` — the
    optimizer's :class:`~repro.cse.candidates.CandidateCse`);
    ``spool_stats`` the measured ones (``cse_id -> SpoolStats``); and
    ``query_reads`` the per-query spool-read counts observed in the
    executed plans (``query -> cse_id -> reads``), used both as the
    planned consumer count and for per-query attribution. Only spools
    that actually materialized appear. ``scan_stats`` (``stats key ->
    ScanStats``) adds shared-scan entries for every (table, column-set)
    group that served two or more consumer reads."""
    by_id: Dict[str, Any] = {}
    for candidate in candidates:
        by_id.setdefault(candidate.cse_id, candidate)
    query_reads = query_reads or {}
    planned: Dict[str, int] = {}
    for reads in query_reads.values():
        for cse_id, count in reads.items():
            planned[cse_id] = planned.get(cse_id, 0) + count

    ledger = SharingLedger()
    for cse_id in sorted(spool_stats):
        stats = spool_stats[cse_id]
        candidate = by_id.get(cse_id)
        measured_body = getattr(stats, "body_cost_units", 0.0)
        entry = SpoolLedgerEntry(
            cse_id=cse_id,
            # Query plans under-count consumers when a *stacked* spool's
            # body is itself a reader (§5.5), so never plan below what
            # actually read; a degraded run keeps the higher plan count.
            planned_consumers=max(planned.get(cse_id, 0), stats.reads),
            consumers=stats.reads,
            rows_written=stats.rows_written,
            rows_read=stats.rows_read,
            est_body_cost=(
                candidate.body_cost if candidate is not None else 0.0
            ),
            est_write_cost=(
                candidate.write_cost if candidate is not None else 0.0
            ),
            est_read_cost=(
                candidate.read_cost if candidate is not None else 0.0
            ),
            measured_body_cost=measured_body,
            measured_write_cost=max(
                0.0, stats.write_cost_units - measured_body
            ),
            measured_read_total=stats.read_cost_units,
            materialize_wall_time=stats.materialize_wall_time,
            read_wall_time=getattr(stats, "read_wall_time", 0.0),
        )
        ledger.spools.append(entry)

    for key in sorted(scan_stats or {}):
        stats = (scan_stats or {})[key]
        reads = getattr(stats, "reads", 0)
        if reads < 2:
            continue
        table, _, column_part = key.partition("[")
        columns = sorted(
            c for c in column_part.rstrip("]").split("+") if c
        )
        ledger.scans.append(
            ScanLedgerEntry(
                key=key,
                table=table,
                columns=columns,
                reads=reads,
                physical_scans=getattr(stats, "physical_scans", 0),
                rows=getattr(stats, "rows", 0),
                rows_scanned=getattr(stats, "rows_scanned", 0),
                cost_units=getattr(stats, "cost_units", 0.0),
            )
        )

    _attribute_queries(ledger, query_reads)
    return ledger


def estimated_ledger(
    candidates: Iterable[Any],
    query_reads: Mapping[str, Mapping[str, int]],
) -> SharingLedger:
    """A plan-time-only ledger (``explain --why``): estimated Def 5.1
    terms for every spool the plans read, measured columns all zero."""
    planned: Dict[str, int] = {}
    for reads in query_reads.values():
        for cse_id, count in reads.items():
            planned[cse_id] = planned.get(cse_id, 0) + count
    by_id: Dict[str, Any] = {}
    for candidate in candidates:
        by_id.setdefault(candidate.cse_id, candidate)
    ledger = SharingLedger()
    for cse_id in sorted(planned):
        candidate = by_id.get(cse_id)
        if candidate is None:
            continue
        ledger.spools.append(
            SpoolLedgerEntry(
                cse_id=cse_id,
                planned_consumers=planned[cse_id],
                consumers=0,
                est_body_cost=candidate.body_cost,
                est_write_cost=candidate.write_cost,
                est_read_cost=candidate.read_cost,
            )
        )
    _attribute_queries(ledger, query_reads)
    return ledger


def _attribute_queries(
    ledger: SharingLedger,
    query_reads: Mapping[str, Mapping[str, int]],
) -> None:
    """Per-query attribution: each read earns one body evaluation avoided,
    pays its usage cost, and carries an amortized share of the initial
    cost — so the per-query parts sum exactly to the per-spool savings."""
    for query_name in sorted(query_reads):
        reads = {
            cse_id: count
            for cse_id, count in query_reads[query_name].items()
            if count > 0
        }
        entry = QueryLedgerEntry(query=query_name, spool_reads=reads)
        for cse_id, count in reads.items():
            try:
                spool = ledger.spool(cse_id)
            except KeyError:
                continue
            if spool.planned_consumers > 0:
                entry.est_savings += spool.est_savings * (
                    count / spool.planned_consumers
                )
            if spool.consumers > 0:
                entry.measured_savings += spool.measured_savings * (
                    count / spool.consumers
                )
        ledger.queries.append(entry)
