"""Command-line interface.

Usage examples::

    python -m repro query "select r_name from region"
    python -m repro query --compare --sf 0.01 "$(cat batch.sql)"
    python -m repro explain "select ... ; select ..."
    python -m repro bench table1
    python -m repro bench maintenance

The ``query`` command optimizes and executes a (batch of) SQL statement(s)
against a synthetic TPC-H database; ``explain`` prints the chosen plan;
``bench`` reproduces one of the paper's experiments.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from .api import Session
from .errors import ReproError
from .optimizer.options import OptimizerOptions

_BENCH_CHOICES = (
    "table1", "table2", "table3", "table4", "fig8", "maintenance", "all",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Similar-subexpression query processing (SIGMOD 2007 "
            "reproduction) over a synthetic TPC-H database."
        ),
    )
    parser.add_argument(
        "--sf", type=float, default=0.01,
        help="TPC-H scale factor (default 0.01)",
    )
    parser.add_argument(
        "--seed", type=int, default=20070612, help="data generator seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="optimize and execute SQL")
    query.add_argument("sql", help="SQL text (use ; to separate a batch)")
    query.add_argument("--no-cse", action="store_true")
    query.add_argument("--no-heuristics", action="store_true")
    query.add_argument(
        "--no-history-reuse", action="store_true",
        help=(
            "disable §5.4 optimization-history reuse: every Step-3 pass "
            "re-optimizes all memo groups from scratch (plans are "
            "identical; only optimization time differs)"
        ),
    )
    query.add_argument(
        "--compare", action="store_true",
        help="run no-CSE / CSE / no-heuristics side by side",
    )
    query.add_argument(
        "--rows", type=int, default=10, help="rows to print per query"
    )
    query.add_argument(
        "--parallel", type=int, metavar="N", default=None,
        help=(
            "execute the batch on N worker threads (dependency-aware "
            "scheduling over the shared-spool DAG)"
        ),
    )
    query.add_argument(
        "--metrics", action="store_true",
        help="print the metrics-registry snapshot after execution",
    )
    query.add_argument(
        "--trace", metavar="FILE",
        help="write optimizer trace events (JSON lines) to FILE",
    )
    query.add_argument(
        "--query-log", metavar="FILE",
        help="append one structured JSONL record per executed batch to FILE",
    )
    query.add_argument(
        "--slow-ms", type=float, metavar="MS", default=None,
        help=(
            "queries slower than MS milliseconds are flagged slow in the "
            "query log and carry their full EXPLAIN ANALYZE tree"
        ),
    )
    query.add_argument(
        "--deadline-ms", type=float, metavar="MS", default=None,
        help=(
            "abort the batch with a timeout if optimize+execute exceeds "
            "MS milliseconds (checked cooperatively per operator)"
        ),
    )
    query.add_argument(
        "--optimizer-deadline-ms", type=float, metavar="MS", default=None,
        help=(
            "bound just the optimizer: on expiry the batch is re-planned "
            "without CSE sharing (the always-valid baseline) and executed"
        ),
    )
    query.add_argument(
        "--max-spool-rows", type=int, metavar="N", default=None,
        help=(
            "cap total rows materialized into shared spools; exceeding it "
            "re-executes the batch serially without sharing"
        ),
    )
    query.add_argument(
        "--no-fused", action="store_true",
        help=(
            "disable operator fusion: scan->filter->project chains run "
            "as separate materializing operators instead of one "
            "morsel-streamed pipeline"
        ),
    )
    query.add_argument(
        "--morsel-rows", type=int, metavar="N", default=4096,
        help=(
            "rows per morsel streamed through fused pipelines "
            "(default 4096; 0 = whole frame in one morsel)"
        ),
    )
    query.add_argument(
        "--share-window-ms", type=float, metavar="MS", default=0.0,
        help=(
            "hold arriving queries up to MS milliseconds to merge them "
            "with compatible concurrent queries into one shared "
            "optimization (cross-session micro-batching; 0 = off)"
        ),
    )
    query.add_argument(
        "--cse-strategy", choices=("paper", "greedy", "auto"), default=None,
        help=(
            "Step-3 selection strategy: the paper's subset enumeration, "
            "the greedy benefit-ordered AND-OR DAG heuristic "
            "(cs/9910021), or auto (greedy above the candidate-count "
            "threshold)"
        ),
    )

    explain = sub.add_parser("explain", help="print the optimized plan")
    explain.add_argument("sql")
    explain.add_argument("--no-cse", action="store_true")
    explain.add_argument("--no-heuristics", action="store_true")
    explain.add_argument(
        "--no-history-reuse", action="store_true",
        help="disable §5.4 optimization-history reuse (see `query`)",
    )
    explain.add_argument(
        "--costs", action="store_true",
        help="annotate every operator with estimated costs",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help=(
            "execute the plan and annotate operators with actual rows and "
            "time, spool cost attribution, and optimizer counters"
        ),
    )
    explain.add_argument(
        "--no-fused", action="store_true",
        help="disable operator fusion (see `query --no-fused`)",
    )
    explain.add_argument(
        "--why", action="store_true",
        help=(
            "print the optimizer decision journal: every candidate CSE's "
            "lifecycle (signature bucket, H1-H4 verdicts with the numbers "
            "used, LCA placement, keep/reject reason), and which Step-3 "
            "strategy ran and why"
        ),
    )
    explain.add_argument(
        "--cse-strategy", choices=("paper", "greedy", "auto"), default=None,
        help="Step-3 selection strategy (see `query --cse-strategy`)",
    )

    bench = sub.add_parser(
        "bench", help="reproduce one of the paper's experiments"
    )
    bench.add_argument("experiment", choices=_BENCH_CHOICES)

    trace = sub.add_parser(
        "trace",
        help=(
            "analyze a JSONL trace file (critical path, per-task slack, "
            "operator attribution) or export it for chrome://tracing; "
            "`repro trace export FILE --format chrome` also works"
        ),
    )
    trace.add_argument(
        "file",
        help="trace file written by `query --trace` / Session(trace_path=…)",
    )
    trace.add_argument(
        "--critical-path", action="store_true",
        help=(
            "report the batch's critical path and per-task slack over the "
            "observed spool producer/consumer DAG"
        ),
    )
    trace.add_argument(
        "--summary", action="store_true",
        help="report trace volume, spool flows, and span self-time",
    )
    trace.add_argument(
        "--export", choices=("chrome",), default=None, metavar="FORMAT",
        help="export instead of analyzing (chrome = trace-event JSON)",
    )
    trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the export to FILE instead of stdout",
    )

    serve = sub.add_parser(
        "serve-metrics",
        help=(
            "execute a batch repeatedly and expose /metrics (Prometheus "
            "text format) and /healthz over HTTP"
        ),
    )
    serve.add_argument("sql", help="SQL batch to serve")
    serve.add_argument(
        "--port", type=int, default=9464,
        help="HTTP port for /metrics and /healthz (0 = ephemeral)",
    )
    serve.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help=(
            "execute the batch N times before serving (warms the plan "
            "cache and populates histograms); 0 serves an empty registry"
        ),
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for SECONDS then exit (default: until interrupted)",
    )
    return parser


def _options(args: argparse.Namespace) -> OptimizerOptions:
    if getattr(args, "no_cse", False):
        options = OptimizerOptions(enable_cse=False)
    elif getattr(args, "no_heuristics", False):
        options = OptimizerOptions(
            enable_heuristics=False, max_cse_optimizations=16
        )
    else:
        options = OptimizerOptions()
    if getattr(args, "no_history_reuse", False):
        options = dataclasses.replace(options, reuse_history=False)
    if getattr(args, "no_fused", False):
        options = dataclasses.replace(options, enable_fusion=False)
    if getattr(args, "cse_strategy", None):
        options = dataclasses.replace(
            options, cse_strategy=args.cse_strategy
        )
    return options


def _cmd_query(args: argparse.Namespace, out) -> int:
    database = Session.tpch(scale_factor=args.sf, seed=args.seed).database
    if args.compare:
        from .bench.harness import format_table, run_scenario

        results = run_scenario(database, args.sql)
        print(format_table("comparison", results), file=out)
        return 0
    registry = tracer = query_log = None
    if args.metrics or args.trace:
        from .obs import MetricsRegistry, Tracer

        registry = MetricsRegistry() if args.metrics else None
        tracer = Tracer() if args.trace else None
    if args.query_log:
        from .obs import QueryLog

        query_log = QueryLog(path=args.query_log, slow_ms=args.slow_ms)
    workers = args.parallel if args.parallel and args.parallel > 1 else 1
    session = Session(
        database,
        _options(args),
        registry=registry,
        tracer=tracer,
        workers=workers,
        query_log=query_log,
        morsel_rows=args.morsel_rows,
        share_window_ms=args.share_window_ms,
    )
    budget = None
    if (
        args.deadline_ms is not None
        or args.optimizer_deadline_ms is not None
        or args.max_spool_rows is not None
    ):
        from .serve import QueryBudget

        budget = QueryBudget(
            deadline_ms=args.deadline_ms,
            optimizer_deadline_ms=args.optimizer_deadline_ms,
            max_spool_rows=args.max_spool_rows,
        )
    outcome = session.execute(args.sql, budget=budget)
    stats = outcome.optimization.stats
    print(
        f"-- estimated cost {stats.est_cost_no_cse:.1f} -> "
        f"{stats.est_cost_final:.1f}; CSEs used: {stats.used_cses or 'none'}",
        file=out,
    )
    if outcome.degraded:
        print(
            f"-- governor fallback: {outcome.fallback_reason} "
            "(executed the no-sharing baseline plan)",
            file=out,
        )
    for result in outcome.execution.results:
        print(f"\n{result.name} ({result.row_count} rows):", file=out)
        print("  " + " | ".join(result.columns), file=out)
        for row in result.rows[: args.rows]:
            print("  " + " | ".join(str(v) for v in row), file=out)
        if result.row_count > args.rows:
            print(f"  ... {result.row_count - args.rows} more", file=out)
    metrics = outcome.execution.metrics
    print(
        f"\n-- execution: {metrics.cost_units:.1f} cost units, "
        f"{metrics.rows_scanned} rows scanned, "
        f"{metrics.spools_materialized} spool(s)",
        file=out,
    )
    if registry is not None:
        print("\n-- metrics:", file=out)
        snapshot = registry.snapshot()
        for name in sorted(snapshot["counters"]):
            print(f"  {name} = {snapshot['counters'][name]:g}", file=out)
        for name in sorted(snapshot["timers"]):
            timer = snapshot["timers"][name]
            print(
                f"  {name} = {timer['total']:.4f}s over "
                f"{timer['count']} span(s)",
                file=out,
            )
    if tracer is not None:
        count = tracer.write(args.trace)
        print(f"\n-- wrote {count} trace event(s) to {args.trace}", file=out)
    if query_log is not None:
        slow = len(query_log.slow_queries())
        print(
            f"\n-- query log: {len(query_log)} record(s) "
            f"({slow} slow) appended to {args.query_log}",
            file=out,
        )
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    session = Session.tpch(scale_factor=args.sf, seed=args.seed)
    session.options = _options(args)
    print(
        session.explain(
            args.sql, costs=args.costs, analyze=args.analyze, why=args.why
        ),
        file=out,
    )
    return 0


def _cmd_serve_metrics(args: argparse.Namespace, out) -> int:
    import time

    from .obs import MetricsRegistry, TelemetryServer

    registry = MetricsRegistry()
    session = Session.tpch(
        scale_factor=args.sf, seed=args.seed, registry=registry
    )
    for _ in range(max(0, args.iterations)):
        session.execute(args.sql)
    server = TelemetryServer(registry, port=args.port).start()
    print(
        f"serving {server.url}/metrics and {server.url}/healthz "
        f"(after {args.iterations} execution(s))",
        file=out,
    )
    try:
        if args.duration is not None:
            time.sleep(max(0.0, args.duration))
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("telemetry server stopped", file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    from .bench.harness import format_table, run_scenario
    from .workloads import (
        complex_join_batch,
        example1_batch,
        example1_with_q4,
        nested_query,
        scaleup_batch,
    )

    database = Session.tpch(scale_factor=args.sf, seed=args.seed).database
    if args.experiment == "all":
        from .bench.report import generate_report

        print(generate_report(database, args.sf), file=out)
        return 0
    if args.experiment == "table1":
        print(format_table(
            "Table 1: query batch (Q1, Q2, Q3)",
            run_scenario(database, example1_batch()),
        ), file=out)
    elif args.experiment == "table2":
        print(format_table(
            "Table 2: query batch (Q1..Q4)",
            run_scenario(database, example1_with_q4()),
        ), file=out)
    elif args.experiment == "table3":
        print(format_table(
            "Table 3: nested query",
            run_scenario(database, nested_query()),
        ), file=out)
    elif args.experiment == "table4":
        print(format_table(
            "Table 4: complex joins",
            run_scenario(database, complex_join_batch()),
        ), file=out)
    elif args.experiment == "fig8":
        from .bench.harness import MODE_CSE, MODE_NO_CSE, options_for

        print("n | est cost no CSE | est cost CSE | opt time", file=out)
        for n in range(2, 11, 2):
            sql = scaleup_batch(n)
            no = Session(database, options_for(MODE_NO_CSE)).optimize(sql)
            yes = Session(database, options_for(MODE_CSE)).optimize(sql)
            print(
                f"{n} | {no.est_cost:15.1f} | {yes.est_cost:12.1f} | "
                f"{yes.stats.optimization_time:.3f}s",
                file=out,
            )
    elif args.experiment == "maintenance":
        import numpy as np

        from .views.maintenance import MaintenancePlanner
        from .views.materialized import ViewManager
        from .workloads.example1 import Q1_SQL, Q2_SQL, Q3_SQL

        def setup(options):
            db = Session.tpch(scale_factor=args.sf, seed=args.seed).database
            manager = ViewManager(db)
            for i, sql in enumerate((Q1_SQL, Q2_SQL, Q3_SQL), 1):
                manager.create_view(f"mv{i}", sql)
            manager.refresh_all()
            return MaintenancePlanner(db, manager, options)

        rng = np.random.default_rng(7)
        rows = [
            (
                80_000_000 + i,
                f"Customer#{80_000_000 + i}",
                int(rng.integers(0, 25)),
                "BUILDING",
                100.0,
            )
            for i in range(100)
        ]
        with_cse = setup(OptimizerOptions()).apply_insert("customer", rows)
        without = setup(OptimizerOptions(enable_cse=False)).apply_insert(
            "customer", rows
        )
        print(
            f"maintenance cost: {without.measured_cost:.1f} without CSEs, "
            f"{with_cse.measured_cost:.1f} with "
            f"({without.measured_cost / with_cse.measured_cost:.2f}x)",
            file=out,
        )
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    from .obs import (
        analyze,
        load_trace,
        render_chrome_trace,
        render_critical_path,
        render_summary,
    )

    trace = load_trace(args.file)
    if args.export == "chrome":
        payload = render_chrome_trace(trace.events, trace.header)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as sink:
                sink.write(payload + "\n")
            print(
                f"wrote chrome trace ({len(trace.events)} event(s)) "
                f"to {args.out}",
                file=out,
            )
        else:
            print(payload, file=out)
        return 0
    shown = False
    if args.critical_path:
        print(render_critical_path(analyze(trace.events)), file=out)
        shown = True
    if args.summary or not shown:
        if shown:
            print("", file=out)
        print(render_summary(trace), file=out)
    return 0


def _rewrite_trace_export(argv: List[str]) -> List[str]:
    """``trace export FILE --format chrome`` → ``trace FILE --export chrome``.

    The spelled-out form reads naturally but argparse subcommands do not
    nest; rewriting keeps one parser for both spellings."""
    try:
        index = argv.index("trace")
    except ValueError:
        return argv
    if argv[index + 1 : index + 2] != ["export"]:
        return argv
    rest = argv[index + 2 :]
    fmt = "chrome"
    kept: List[str] = []
    skip = False
    for pos, token in enumerate(rest):
        if skip:
            skip = False
            continue
        if token == "--format":
            if pos + 1 < len(rest):
                fmt = rest[pos + 1]
                skip = True
            continue
        kept.append(token)
    return [*argv[: index + 1], *kept, "--export", fmt]


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(_rewrite_trace_export(argv))
    try:
        if args.command == "query":
            return _cmd_query(args, out)
        if args.command == "explain":
            return _cmd_explain(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "serve-metrics":
            return _cmd_serve_metrics(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2
