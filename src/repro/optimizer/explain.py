"""Cost-annotated EXPLAIN output.

Reconstructs per-operator cost estimates for a physical plan from the cost
model and each node's estimated cardinalities, and renders an annotated
tree. The numbers match what the optimizer charged during search (the same
formulas over the same cardinalities), so the annotated total of a query
plan equals its winner cost up to the fixed finalization terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..storage.database import Database
from .cost import CostModel
from .engine import PlanBundle
from .physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)


@dataclass
class AnnotatedNode:
    """One operator with its local and cumulative estimated cost."""

    plan: PhysicalPlan
    local_cost: float
    total_cost: float
    children: List["AnnotatedNode"]

    def render(self, indent: int = 0) -> str:
        """Indented text rendering with cost annotations."""
        line = (
            "  " * indent
            + f"{self.plan._describe_line()}"
            + f"  [local {self.local_cost:.2f}, total {self.total_cost:.2f}]"
        )
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)


class PlanAnnotator:
    """Computes per-node cost annotations for physical plans."""

    def __init__(
        self, database: Database, cost_model: Optional[CostModel] = None
    ) -> None:
        self.database = database
        self.cost_model = cost_model or CostModel()
        self._spool_stats: dict = {}

    # ------------------------------------------------------------------

    def annotate(self, plan: PhysicalPlan) -> AnnotatedNode:
        """Annotate one plan tree bottom-up."""
        children = [self.annotate(child) for child in plan.children()]
        local = self._local_cost(plan)
        total = local + sum(child.total_cost for child in children)
        return AnnotatedNode(
            plan=plan, local_cost=local, total_cost=total, children=children
        )

    def annotate_bundle(self, bundle: PlanBundle) -> str:
        """Annotated text for a whole bundle (spools first)."""
        parts: List[str] = []
        for cse_id, body in bundle.root_spools:
            node = self.annotate(body)
            self._remember_spool(cse_id, body)
            parts.append(f"Spool {cse_id}:")
            parts.append(node.render(1))
        for query in bundle.queries:
            for sid, sub in query.subquery_plans.items():
                parts.append(f"{query.name} subquery {sid}:")
                parts.append(self.annotate(sub).render(1))
            parts.append(f"{query.name}:")
            parts.append(self.annotate(query.plan).render(1))
        return "\n".join(parts)

    def _remember_spool(self, cse_id: str, body: PhysicalPlan) -> None:
        if isinstance(body, PhysProject):
            rows = body.est_rows
            width = sum(
                o.expr.data_type.byte_width for o in body.outputs
            )
            self._spool_stats[cse_id] = (rows, width)

    # ------------------------------------------------------------------

    def _local_cost(self, plan: PhysicalPlan) -> float:
        model = self.cost_model
        if isinstance(plan, PhysScan):
            table = self.database.table(plan.table_ref.physical_name)
            return model.scan(
                table.row_count, table.row_width(), len(plan.conjuncts)
            )
        if isinstance(plan, PhysIndexScan):
            table = self.database.table(plan.table_ref.physical_name)
            return model.index_scan(
                plan.est_rows, table.row_width(), len(plan.residual)
            )
        if isinstance(plan, PhysHashJoin):
            left_rows = plan.left.est_rows
            right_rows = plan.right.est_rows
            if plan.keys:
                return model.hash_join(
                    min(left_rows, right_rows),
                    max(left_rows, right_rows),
                    plan.est_rows,
                    len(plan.residual),
                )
            return model.cross_join(left_rows, right_rows, plan.est_rows)
        if isinstance(plan, PhysHashAgg):
            return model.aggregate(
                plan.child.est_rows, plan.est_rows, len(plan.computes)
            )
        if isinstance(plan, PhysFilter):
            return model.filter(plan.child.est_rows, len(plan.conjuncts))
        if isinstance(plan, PhysProject):
            return model.project(plan.child.est_rows, len(plan.outputs))
        if isinstance(plan, PhysSort):
            return model.sort(plan.child.est_rows)
        if isinstance(plan, PhysSpoolRead):
            rows, width = self._spool_stats.get(
                plan.cse_id, (plan.est_rows, 8)
            )
            return model.spool_read(rows, width)
        if isinstance(plan, PhysSpoolDef):
            # Write costs for the spools it defines (bodies annotated as
            # children).
            total = 0.0
            for cse_id, body in plan.spools:
                self._remember_spool(cse_id, body)
                rows, width = self._spool_stats.get(cse_id, (0.0, 8))
                total += model.spool_write(rows, width)
            return total
        return 0.0


def explain_with_costs(
    database: Database,
    bundle: PlanBundle,
    cost_model: Optional[CostModel] = None,
) -> str:
    """Annotated EXPLAIN for an optimized bundle."""
    annotator = PlanAnnotator(database, cost_model)
    header = f"estimated bundle cost: {bundle.est_cost:.2f}"
    return header + "\n" + annotator.annotate_bundle(bundle)
