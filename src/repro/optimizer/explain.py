"""Cost-annotated EXPLAIN and EXPLAIN ANALYZE output.

Plain EXPLAIN reconstructs per-operator cost estimates for a physical plan
from the cost model and each node's estimated cardinalities, and renders an
annotated tree. The numbers match what the optimizer charged during search
(the same formulas over the same cardinalities), so the annotated total of
a query plan equals its winner cost up to the fixed finalization terms.

EXPLAIN ANALYZE (:func:`explain_analyze`) additionally *executes* the
bundle with per-operator stat collection and annotates every operator with
actual rows and wall time alongside the estimates, then reports the
Definition 5.1 cost split per spool (initial cost ``C_E + C_W`` charged
once vs. usage cost ``C_R`` per read) and the optimizer's runtime counters
(candidates generated, pruned per heuristic, CSEs kept).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..storage.database import Database
from .cost import CostModel
from .engine import OptimizationResult, PlanBundle
from .physical import (
    PhysFilter,
    PhysFusedPipeline,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)


@dataclass
class AnnotatedNode:
    """One operator with its local and cumulative estimated cost."""

    plan: PhysicalPlan
    local_cost: float
    total_cost: float
    children: List["AnnotatedNode"]

    def render(self, indent: int = 0) -> str:
        """Indented text rendering with cost annotations."""
        line = (
            "  " * indent
            + f"{self.plan._describe_line()}"
            + f"  [local {self.local_cost:.2f}, total {self.total_cost:.2f}]"
        )
        parts = [line]
        for child in self.children:
            parts.append(child.render(indent + 1))
        return "\n".join(parts)


class PlanAnnotator:
    """Computes per-node cost annotations for physical plans."""

    def __init__(
        self, database: Database, cost_model: Optional[CostModel] = None
    ) -> None:
        self.database = database
        self.cost_model = cost_model or CostModel()
        self._spool_stats: dict = {}

    # ------------------------------------------------------------------

    def annotate(self, plan: PhysicalPlan) -> AnnotatedNode:
        """Annotate one plan tree bottom-up."""
        children = [self.annotate(child) for child in plan.children()]
        local = self._local_cost(plan)
        total = local + sum(child.total_cost for child in children)
        return AnnotatedNode(
            plan=plan, local_cost=local, total_cost=total, children=children
        )

    def annotate_bundle(self, bundle: PlanBundle) -> str:
        """Annotated text for a whole bundle (spools first)."""
        parts: List[str] = []
        for cse_id, body in bundle.root_spools:
            node = self.annotate(body)
            self._remember_spool(cse_id, body)
            parts.append(f"Spool {cse_id}:")
            parts.append(node.render(1))
        for query in bundle.queries:
            for sid, sub in query.subquery_plans.items():
                parts.append(f"{query.name} subquery {sid}:")
                parts.append(self.annotate(sub).render(1))
            parts.append(f"{query.name}:")
            parts.append(self.annotate(query.plan).render(1))
        return "\n".join(parts)

    def _remember_spool(self, cse_id: str, body: PhysicalPlan) -> None:
        if isinstance(body, PhysProject):
            rows = body.est_rows
            width = sum(
                o.expr.data_type.byte_width for o in body.outputs
            )
            self._spool_stats[cse_id] = (rows, width)

    # ------------------------------------------------------------------

    def _local_cost(self, plan: PhysicalPlan) -> float:
        model = self.cost_model
        if isinstance(plan, PhysScan):
            table = self.database.table(plan.table_ref.physical_name)
            return model.scan(
                table.row_count, table.row_width(), len(plan.conjuncts)
            )
        if isinstance(plan, PhysIndexScan):
            table = self.database.table(plan.table_ref.physical_name)
            return model.index_scan(
                plan.est_rows, table.row_width(), len(plan.residual)
            )
        if isinstance(plan, PhysHashJoin):
            left_rows = plan.left.est_rows
            right_rows = plan.right.est_rows
            if plan.keys:
                return model.hash_join(
                    min(left_rows, right_rows),
                    max(left_rows, right_rows),
                    plan.est_rows,
                    len(plan.residual),
                )
            return model.cross_join(left_rows, right_rows, plan.est_rows)
        if isinstance(plan, PhysHashAgg):
            return model.aggregate(
                plan.child.est_rows, plan.est_rows, len(plan.computes)
            )
        if isinstance(plan, PhysFilter):
            return model.filter(plan.child.est_rows, len(plan.conjuncts))
        if isinstance(plan, PhysProject):
            return model.project(plan.child.est_rows, len(plan.outputs))
        if isinstance(plan, PhysSort):
            return model.sort(plan.child.est_rows)
        if isinstance(plan, PhysFusedPipeline):
            # The source annotates as a child; the fused node's local cost
            # is the sum of its stages over the preserved per-stage
            # estimates — the same numbers the unfused chain annotated.
            total = 0.0
            input_rows = plan.source.est_rows
            for stage in plan.stages:
                if stage.kind == "filter":
                    total += model.filter(input_rows, len(stage.exprs))
                else:
                    total += model.project(input_rows, len(stage.exprs))
                input_rows = stage.est_rows
            return total
        if isinstance(plan, PhysSpoolRead):
            rows, width = self._spool_stats.get(
                plan.cse_id, (plan.est_rows, 8)
            )
            return model.spool_read(rows, width)
        if isinstance(plan, PhysSpoolDef):
            # Write costs for the spools it defines (bodies annotated as
            # children).
            total = 0.0
            for cse_id, body in plan.spools:
                self._remember_spool(cse_id, body)
                rows, width = self._spool_stats.get(cse_id, (0.0, 8))
                total += model.spool_write(rows, width)
            return total
        return 0.0


def explain_with_costs(
    database: Database,
    bundle: PlanBundle,
    cost_model: Optional[CostModel] = None,
) -> str:
    """Annotated EXPLAIN for an optimized bundle."""
    annotator = PlanAnnotator(database, cost_model)
    header = f"estimated bundle cost: {bundle.est_cost:.2f}"
    return header + "\n" + annotator.annotate_bundle(bundle)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def _render_analyzed(node: AnnotatedNode, execution, indent: int) -> List[str]:
    """Render one annotated subtree with actual rows/time per operator."""
    stats = execution.stats_for(node.plan)
    if stats is None:
        actual = "actual: never executed"
    else:
        actual = (
            f"actual rows={stats.rows_out} time={_fmt_ms(stats.wall_time)}"
        )
    line = (
        "  " * indent
        + node.plan._describe_line()
        + f"  [est cost {node.total_cost:.2f}, "
        + f"est rows {node.plan.est_rows:.0f}; {actual}]"
    )
    lines = [line]
    for child in node.children:
        lines.extend(_render_analyzed(child, execution, indent + 1))
    return lines


def _spool_attribution(
    result: OptimizationResult, execution
) -> List[str]:
    """Definition 5.1's cost split, estimated vs. measured, per spool."""
    spool_stats = execution.metrics.spool_stats
    if not spool_stats:
        return []
    by_id = {c.cse_id: c for c in result.candidates}
    lines = ["Spool cost attribution (Def 5.1):"]
    for cse_id in sorted(spool_stats):
        stats = spool_stats[cse_id]
        candidate = by_id.get(cse_id)
        if candidate is not None:
            est_initial = (
                f"est C_E {candidate.body_cost:.2f} + "
                f"C_W {candidate.write_cost:.2f} = "
                f"{candidate.initial_cost:.2f}"
            )
            est_usage = (
                f"est C_R {candidate.read_cost:.2f} x {stats.reads} reads = "
                f"{candidate.read_cost * stats.reads:.2f}"
            )
        else:
            est_initial = "est n/a"
            est_usage = "est n/a"
        lines.append(
            f"  {cse_id}: initial ({est_initial}; "
            f"actual {stats.write_cost_units:.2f} units, "
            f"{stats.writes} materialization(s), {stats.rows_written} rows, "
            f"{_fmt_ms(stats.materialize_wall_time)})"
        )
        lines.append(
            f"      usage ({est_usage}; "
            f"actual {stats.read_cost_units:.2f} units over "
            f"{stats.reads} read(s), rows/read "
            f"{stats.read_row_counts})"
        )
    return lines


def _optimizer_counters(result: OptimizationResult) -> List[str]:
    stats = result.stats
    pruned = stats.pruned_per_heuristic()
    return [
        "Optimizer counters:",
        (
            f"  memo groups {stats.memo_groups}; "
            f"signature registrations {stats.signature_registrations}; "
            f"sharable buckets {stats.sharable_buckets}"
        ),
        (
            f"  candidates generated {stats.candidates_generated} "
            f"(before pruning {stats.candidates_before_pruning}; "
            f"pruned H1 {pruned['H1']}, H2 {pruned['H2']}, "
            f"H3 {pruned['H3']}, H4 {pruned['H4']})"
        ),
        (
            f"  cse passes {stats.cse_optimizations}; "
            f"single-consumer discards {stats.single_consumer_discards}; "
            f"CSEs kept: {stats.used_cses or 'none'}"
        ),
        (
            f"  optimization time {_fmt_ms(stats.optimization_time)} "
            f"(normal {_fmt_ms(stats.normal_time)}, "
            f"cse {_fmt_ms(stats.cse_time)})"
        ),
    ]


def explain_analyze(
    database: Database,
    result: OptimizationResult,
    cost_model: Optional[CostModel] = None,
    registry=None,
    workers: int = 1,
    shared_scans: bool = True,
    morsel_rows: int = 4096,
) -> str:
    """EXPLAIN ANALYZE: execute the chosen bundle and render each operator
    with estimated *and* actual rows/time, spool cost attribution, and the
    optimizer's counters. ``workers > 1`` executes the bundle with the
    dependency-aware parallel executor; apart from wall-clock timings the
    rendered report is identical. Returns the full report text."""
    from ..executor.executor import Executor

    bundle = result.bundle
    if workers > 1:
        from ..serve.parallel import ParallelExecutor

        executor = ParallelExecutor(
            database,
            cost_model,
            registry=registry,
            workers=workers,
            shared_scans=shared_scans,
            morsel_rows=morsel_rows,
        )
    else:
        executor = Executor(
            database,
            cost_model,
            registry=registry,
            shared_scans=shared_scans,
            morsel_rows=morsel_rows,
        )
    execution = executor.execute(bundle, collect_op_stats=True)
    from ..obs import build_ledger
    from ..serve.schedule import query_spool_read_counts

    ledger = build_ledger(
        result.candidates,
        execution.metrics.spool_stats,
        query_spool_read_counts(bundle),
        scan_stats=execution.metrics.scan_stats,
    )
    return render_analyzed_bundle(
        database, result, execution, cost_model, ledger=ledger
    )


def render_analyzed_bundle(
    database: Database,
    result: OptimizationResult,
    execution,
    cost_model: Optional[CostModel] = None,
    ledger=None,
) -> str:
    """The EXPLAIN ANALYZE report for a bundle that *already executed*
    (with ``collect_op_stats=True``). This is the slow-query-log path: the
    session attaches the analyzed tree of the run it just measured instead
    of re-executing the batch."""
    bundle = result.bundle
    annotator = PlanAnnotator(database, cost_model)

    parts: List[str] = [
        "EXPLAIN ANALYZE",
        (
            f"estimated bundle cost: {bundle.est_cost:.2f}; "
            f"measured {execution.metrics.cost_units:.2f} cost units; "
            f"wall {_fmt_ms(execution.wall_time)}"
        ),
    ]
    for cse_id, body in bundle.root_spools:
        annotator._remember_spool(cse_id, body)
        parts.append(f"Spool {cse_id}:")
        parts.extend(_render_analyzed(annotator.annotate(body), execution, 1))
    for query in bundle.queries:
        for sid, sub in query.subquery_plans.items():
            parts.append(f"{query.name} subquery {sid}:")
            parts.extend(
                _render_analyzed(annotator.annotate(sub), execution, 1)
            )
        executed = execution.executed_plans.get(query.name, query.plan)
        parts.append(f"{query.name}:")
        parts.extend(
            _render_analyzed(annotator.annotate(executed), execution, 1)
        )
    attribution = _spool_attribution(result, execution)
    if attribution:
        parts.append("")
        parts.extend(attribution)
    if ledger is not None and (ledger.spools or ledger.scans):
        # The sharing-economics ledger, rendered from the same rounded
        # payload the query log and ledger.* gauges carry.
        parts.append("")
        parts.append(ledger.render())
    parts.append("")
    parts.extend(_optimizer_counters(result))
    metrics = execution.metrics
    parts.append("")
    parts.append(
        "Execution totals: "
        f"{metrics.cost_units:.2f} cost units; "
        f"rows scanned {metrics.rows_scanned}; "
        f"spools materialized {metrics.spools_materialized} "
        f"(rows written {metrics.spool_rows_written}, "
        f"rows read {metrics.spool_rows_read})"
    )
    if metrics.scan_stats:
        reads = sum(s.reads for s in metrics.scan_stats.values())
        physical = sum(
            s.physical_scans for s in metrics.scan_stats.values()
        )
        shared = sum(s.shared for s in metrics.scan_stats.values())
        rows_saved = sum(
            s.rows_saved for s in metrics.scan_stats.values()
        )
        parts.append(
            "Shared scans: "
            f"{physical} physical over {reads} consumer reads "
            f"({shared} shared, rows saved {rows_saved})"
        )
    return "\n".join(parts)
