"""Cardinality estimation.

Textbook estimator over the collected statistics: uniformity within
histogram buckets, independence across predicates, equivalence-class join
selectivities, and Cardenas' formula for group counts. Every estimate is
deterministic given the database statistics, which keeps optimizer decisions
(and therefore the reproduced experiments) stable.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence

from ..catalog.statistics import ColumnStats
from ..expr.expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
    TableRef,
)
from ..storage.database import Database
from ..types import DataType

#: Fallback selectivity for predicates the estimator cannot analyze.
DEFAULT_SELECTIVITY = 0.25
#: Fallback NDV when no statistics exist for a column.
DEFAULT_NDV = 100


class CardinalityEstimator:
    """Estimates row counts and selectivities from database statistics."""

    def __init__(self, database: Database) -> None:
        self._database = database

    # -- base tables -----------------------------------------------------------

    def table_rows(self, table_ref: TableRef) -> float:
        """Stored row count of a base table (>= 1)."""
        stats = self._database.statistics(table_ref.physical_name)
        return float(max(stats.row_count, 1))

    def _column_stats(self, column: ColumnRef) -> Optional[ColumnStats]:
        stats = self._database.statistics(column.table_ref.physical_name)
        return stats.column(column.column)

    def column_ndv(self, column: ColumnRef) -> float:
        """Number of distinct values of a column (with fallback)."""
        stats = self._column_stats(column)
        if stats is None or stats.ndv <= 0:
            return float(DEFAULT_NDV)
        return float(stats.ndv)

    def width_of(self, exprs: Iterable[Expr]) -> int:
        """Summed byte width of the given expressions' types."""
        return sum(e.data_type.byte_width for e in exprs)

    # -- predicate selectivity -----------------------------------------------

    def selectivity(self, predicate: Expr) -> float:
        """Selectivity of one predicate (conjunct)."""
        if isinstance(predicate, Literal):
            if predicate.value is True:
                return 1.0
            if predicate.value is False:
                return 0.0
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, And):
            product = 1.0
            for term in predicate.terms:
                product *= self.selectivity(term)
            return product
        if isinstance(predicate, Or):
            miss = 1.0
            for term in predicate.terms:
                miss *= 1.0 - min(1.0, self.selectivity(term))
            return max(0.0, min(1.0, 1.0 - miss))
        if isinstance(predicate, Not):
            return max(0.0, min(1.0, 1.0 - self.selectivity(predicate.term)))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        normalized = predicate.normalized()
        left, right = normalized.left, normalized.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._column_literal_selectivity(left, normalized.op, right)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if normalized.op is ComparisonOp.EQ:
                return 1.0 / max(
                    self.column_ndv(left), self.column_ndv(right), 1.0
                )
            if normalized.op is ComparisonOp.NE:
                return 1.0 - 1.0 / max(
                    self.column_ndv(left), self.column_ndv(right), 1.0
                )
            return 1.0 / 3.0
        return DEFAULT_SELECTIVITY

    def _column_literal_selectivity(
        self, column: ColumnRef, op: ComparisonOp, literal: Literal
    ) -> float:
        stats = self._column_stats(column)
        ndv = self.column_ndv(column)
        if op is ComparisonOp.EQ:
            if stats is not None and stats.mcv:
                known = stats.mcv.get(literal.value)
                if known is not None:
                    return _clamp(known)
                if len(stats.mcv) >= stats.ndv:
                    return 0.0005  # complete MCV: the value does not occur
            return 1.0 / max(ndv, 1.0)
        if op is ComparisonOp.NE:
            if stats is not None and stats.mcv:
                known = stats.mcv.get(literal.value)
                if known is not None:
                    return _clamp(1.0 - known)
            return 1.0 - 1.0 / max(ndv, 1.0)
        if stats is None or stats.min_value is None or stats.max_value is None:
            return 1.0 / 3.0
        try:
            value = float(literal.value)
        except (TypeError, ValueError):
            return 1.0 / 3.0
        if stats.histogram is not None and stats.histogram.total > 0:
            hist = stats.histogram
            if op in (ComparisonOp.LT, ComparisonOp.LE):
                return _clamp(hist.fraction_below(value, op is ComparisonOp.LE))
            if op in (ComparisonOp.GT, ComparisonOp.GE):
                return _clamp(
                    1.0 - hist.fraction_below(value, op is ComparisonOp.GT)
                )
        span = stats.max_value - stats.min_value
        if span <= 0:
            # Single-valued column.
            if op in (ComparisonOp.LE, ComparisonOp.GE):
                return 1.0 if value == stats.min_value else _step(value, stats, op)
            return _step(value, stats, op)
        fraction = (value - stats.min_value) / span
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            return _clamp(fraction)
        return _clamp(1.0 - fraction)

    # -- joins ----------------------------------------------------------------

    def class_factor(
        self,
        cls: FrozenSet[ColumnRef],
        rows_by_table: Mapping[TableRef, float],
    ) -> float:
        """Selectivity factor of an equivalence class applied *within* the
        current scope (single table): one factor per implied equality."""
        ndvs = sorted(
            (max(self.column_ndv(c), 1.0) for c in cls), reverse=True
        )
        factor = 1.0
        for ndv in ndvs[:-1]:
            factor /= ndv
        return factor

    def class_factor_for_join(
        self,
        cls: FrozenSet[ColumnRef],
        item_rows: Mapping[object, float],
        items: FrozenSet[object],
    ) -> float:
        """Join selectivity factor of an equivalence class spanning several
        join items. Each item contributes one effective NDV (its members are
        already equal within the item); the factor is ``1/∏`` of all item
        NDVs except the smallest."""
        from .memo import item_tables  # local import to avoid a cycle

        per_item_ndv: Dict[object, float] = {}
        for member in cls:
            for item in items:
                if member.table_ref in item_tables(item):
                    rows = max(item_rows.get(item, 1.0), 1.0)
                    ndv = min(self.column_ndv(member), rows)
                    current = per_item_ndv.get(item)
                    per_item_ndv[item] = (
                        ndv if current is None else min(current, ndv)
                    )
        ndvs = sorted(per_item_ndv.values(), reverse=True)
        if len(ndvs) < 2:
            return 1.0
        factor = 1.0
        for ndv in ndvs[:-1]:
            factor /= max(ndv, 1.0)
        return factor

    # -- aggregation --------------------------------------------------------------

    def group_rows(
        self,
        input_rows: float,
        keys: Sequence[ColumnRef],
        _context: object = None,
    ) -> float:
        """Cardenas estimate of the number of groups."""
        input_rows = max(input_rows, 1.0)
        if not keys:
            return 1.0
        domain = 1.0
        for key in keys:
            domain *= max(min(self.column_ndv(key), input_rows), 1.0)
        return cardenas(domain, input_rows)

    # -- index support -------------------------------------------------------------

    def index_match_fraction(
        self, column: ColumnRef, conjunct: Expr
    ) -> Optional[float]:
        """Fraction of a table matched by a sargable conjunct on ``column``,
        or None if the conjunct is not sargable on that column."""
        if not isinstance(conjunct, Comparison):
            return None
        normalized = conjunct.normalized()
        if (
            isinstance(normalized.left, ColumnRef)
            and normalized.left == column
            and isinstance(normalized.right, Literal)
            and normalized.op is not ComparisonOp.NE
        ):
            return self._column_literal_selectivity(
                column, normalized.op, normalized.right
            )
        return None


def cardenas(domain: float, rows: float) -> float:
    """Cardenas' formula: expected distinct groups when ``rows`` values are
    drawn uniformly from a domain of size ``domain``."""
    domain = max(domain, 1.0)
    rows = max(rows, 0.0)
    if rows == 0.0:
        return 0.0
    # d * (1 - (1 - 1/d)^n), computed stably in log space.
    ratio = rows / domain
    if ratio > 50:
        return domain
    return domain * -math.expm1(rows * math.log1p(-1.0 / domain)) if domain > 1 else 1.0


def _clamp(value: float) -> float:
    return max(0.0005, min(1.0, value))


def _step(value: float, stats: ColumnStats, op: ComparisonOp) -> float:
    point = stats.min_value
    assert point is not None
    if op is ComparisonOp.LT:
        return 1.0 if value > point else 0.0005
    if op is ComparisonOp.LE:
        return 1.0 if value >= point else 0.0005
    if op is ComparisonOp.GT:
        return 1.0 if value < point else 0.0005
    if op is ComparisonOp.GE:
        return 1.0 if value <= point else 0.0005
    return DEFAULT_SELECTIVITY
