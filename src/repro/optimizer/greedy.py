"""Greedy benefit-ordered Step-3 selection (Roy et al., arXiv cs/9910021).

The paper's Step 3 re-optimizes the batch once per enumerated candidate
subset — correct and thorough, but the pass count grows with the subset
lattice, which is exactly what a coordinator-merged cross-session batch
with dozens of candidates cannot afford. Roy et al.'s greedy algorithm
replaces enumeration with *incremental global selection over the AND-OR
DAG*: starting from the empty selection, repeatedly materialize the
candidate whose marginal benefit (cost of the best plan with the current
selection minus cost with the candidate added) is largest, and stop when
no candidate improves the plan.

Two of Roy et al.'s optimizations shape the implementation:

* **Lazy re-evaluation (the "monotonicity heuristic").** Benefits are kept
  in a max-heap seeded with the Definition 5.1 upper bound
  ``n·C_E − (C_E + C_W + n·C_R)``. Popping a stale entry re-evaluates it
  against the *current* selection and pushes it back; a popped entry that
  is already fresh is the true maximum (assuming benefits shrink as the
  selection grows — the same monotonicity Roy et al. exploit) and is
  accepted without touching the rest of the heap. In the common case each
  accepted candidate costs one or two optimization passes, so the total
  pass count is near-linear in the number of selected candidates.
* **Incremental passes are cheap.** Each evaluation reuses the engine's
  §5.4 optimization-history caches: enabling one more candidate
  re-optimizes only the groups whose footprints intersect it, so a greedy
  pass touches a sliver of what a fresh enumeration pass would.

The module is deliberately engine-agnostic: it drives the optimizer
through one callback (``run_pass``) and reports through the journal and
registry it is handed, so it can be unit-tested against a synthetic cost
surface without building a memo.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..cse.candidates import CandidateCse
from ..obs import NULL_JOURNAL, NULL_REGISTRY, DecisionJournal, MetricsRegistry

#: one optimization pass: enabled ids -> (cost, bundle, used ids).
PassRunner = Callable[[FrozenSet[str]], Tuple[float, object, FrozenSet[str]]]


def definition_benefit(candidate: CandidateCse) -> float:
    """The Definition 5.1 upper bound on a candidate's benefit.

    With every potential consumer substituting, sharing saves
    ``n·C_E`` recomputations and costs ``C_E + C_W`` once plus ``C_R``
    per consumer. Actual benefits are at most this (consumers may decline
    the substitution), which is what makes it a sound heap seed."""
    n = len(candidate.definition.consumer_groups)
    return (
        n * candidate.body_cost
        - (candidate.initial_cost + n * candidate.read_cost)
    )


@dataclass
class GreedyOutcome:
    """What one greedy selection run produced."""

    cost: float
    bundle: object
    #: ids accepted into the selection, in acceptance order.
    selected: List[str] = field(default_factory=list)
    #: optimization passes spent (the quantity greedy minimizes).
    evaluations: int = 0


def greedy_select(
    candidates: Sequence[CandidateCse],
    base_cost: float,
    base_bundle: object,
    run_pass: PassRunner,
    max_evaluations: int = 128,
    journal: Optional[DecisionJournal] = None,
    registry: Optional[MetricsRegistry] = None,
    check_deadline: Optional[Callable[[], None]] = None,
) -> GreedyOutcome:
    """Greedy benefit-ordered candidate selection.

    ``run_pass`` performs one optimization with the given candidate ids
    enabled and returns ``(cost, bundle, used_ids)``; it is called at most
    ``max_evaluations`` times. Deterministic: heap ties break on candidate
    id, so equal-benefit candidates are accepted in id order."""
    journal = journal if journal is not None else NULL_JOURNAL
    registry = registry or NULL_REGISTRY
    outcome = GreedyOutcome(cost=base_cost, bundle=base_bundle)
    selected: FrozenSet[str] = frozenset()
    #: bumped on every acceptance; heap entries carry the generation their
    #: benefit was computed against (-1 = the Def 5.1 seed bound).
    generation = 0
    #: (negated benefit, cse_id, generation) — a max-heap via negation.
    heap: List[Tuple[float, str, int]] = [
        (-definition_benefit(candidate), candidate.cse_id, -1)
        for candidate in candidates
    ]
    heapq.heapify(heap)
    #: cse_id -> (cost, bundle) of its latest evaluation.
    latest: dict = {}
    while heap and outcome.evaluations < max_evaluations:
        if check_deadline is not None:
            check_deadline()
        neg_benefit, cse_id, at_generation = heapq.heappop(heap)
        if cse_id in selected:
            continue
        if at_generation == generation:
            benefit = -neg_benefit
            if benefit <= 0:
                # The freshest maximum does not pay for itself; under
                # benefit monotonicity nothing below it can either.
                break
            selected = selected | {cse_id}
            outcome.cost, outcome.bundle = latest[cse_id]
            outcome.selected.append(cse_id)
            generation += 1
            journal.event(
                "greedy_pick",
                cse_id=cse_id,
                benefit=round(benefit, 4),
                cost=round(outcome.cost, 4),
                rank=len(outcome.selected),
                evaluations=outcome.evaluations,
            )
            continue
        # Stale (seed bound or computed against an older selection):
        # re-evaluate against the current selection and re-queue.
        cost, bundle, _used = run_pass(selected | {cse_id})
        outcome.evaluations += 1
        latest[cse_id] = (cost, bundle)
        heapq.heappush(heap, (-(outcome.cost - cost), cse_id, generation))
    registry.counter("strategy.greedy.evaluations", outcome.evaluations)
    registry.counter("strategy.greedy.selected", len(outcome.selected))
    return outcome


def select_strategy(
    configured: str, candidate_count: int, threshold: int
) -> Tuple[str, str]:
    """Resolve the configured ``cse_strategy`` to a concrete strategy.

    Returns ``(strategy, reason)`` where ``reason`` is the human-readable
    sentence the journal/EXPLAIN ``--why`` report carries."""
    if configured == "paper":
        return "paper", "cse_strategy='paper' (configured)"
    if configured == "greedy":
        return "greedy", "cse_strategy='greedy' (configured)"
    if candidate_count > threshold:
        return "greedy", (
            f"cse_strategy='auto': {candidate_count} candidates > "
            f"greedy_threshold={threshold}"
        )
    return "paper", (
        f"cse_strategy='auto': {candidate_count} candidates <= "
        f"greedy_threshold={threshold}"
    )
