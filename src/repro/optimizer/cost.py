"""The cost model.

Costs are abstract units blending I/O (per 8 KB page) and CPU (per row).
The executor counts the *same* units against actual row counts, so estimated
and measured costs are directly comparable and the benchmark tables can
report both, mirroring the paper's "estimated cost" and "execution time"
rows.

The spool-specific quantities follow §4.3.2/§5.2:

* ``C_W`` — materializing a CSE's result into a work table,
* ``C_R`` — one consumer's sequential read of the work table,
* the *initial cost* of a CSE is ``C_E + C_W`` (evaluation + write) and is
  charged once; every consumer is charged ``C_R`` plus its compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_BYTES = 8192.0


@dataclass(frozen=True)
class CostModel:
    """Cost constants and formulas."""

    io_page: float = 1.0
    io_write_multiplier: float = 1.5
    cpu_tuple: float = 0.01
    cpu_predicate: float = 0.002
    cpu_hash_build: float = 0.02
    cpu_hash_probe: float = 0.012
    cpu_agg_row: float = 0.018
    cpu_output_row: float = 0.004
    cpu_sort_row: float = 0.02
    index_lookup_base: float = 2.0
    index_random_row: float = 0.05
    #: Per-row CPU for reading/writing spooled work tables: cheaper than
    #: generic tuple processing because rows are already narrow and packed.
    spool_cpu_tuple: float = 0.005

    # -- helpers ------------------------------------------------------------

    def pages(self, rows: float, width: int) -> float:
        """Pages occupied by ``rows`` of ``width`` bytes."""
        return max(rows, 0.0) * max(width, 1) / PAGE_BYTES

    # -- operators ----------------------------------------------------------

    def scan(self, table_rows: float, width: int, conjunct_count: int) -> float:
        """Sequential scan: page I/O plus per-row CPU and predicates."""
        io = self.pages(table_rows, width) * self.io_page
        cpu = table_rows * (
            self.cpu_tuple + conjunct_count * self.cpu_predicate
        )
        return io + cpu

    def index_scan(
        self,
        matching_rows: float,
        width: int,
        residual_conjuncts: int,
    ) -> float:
        """Range-index access: touch only the matching rows, at a random-I/O
        premium per row."""
        cpu = matching_rows * (
            self.cpu_tuple + residual_conjuncts * self.cpu_predicate
        )
        io = self.index_lookup_base + matching_rows * self.index_random_row
        return io + cpu

    def hash_join(
        self,
        build_rows: float,
        probe_rows: float,
        output_rows: float,
        residual_conjuncts: int = 0,
    ) -> float:
        """Hash join: build + probe CPU plus output and residual CPU."""
        build = build_rows * self.cpu_hash_build
        probe = probe_rows * self.cpu_hash_probe
        out = output_rows * (
            self.cpu_output_row + residual_conjuncts * self.cpu_predicate
        )
        return build + probe + out

    def cross_join(self, left_rows: float, right_rows: float, output_rows: float) -> float:
        """Nested-loop cross product."""
        return (
            left_rows * right_rows * self.cpu_predicate
            + output_rows * self.cpu_output_row
        )

    def aggregate(self, input_rows: float, output_rows: float, agg_count: int) -> float:
        """Hash aggregation over ``input_rows`` into ``output_rows`` groups."""
        return (
            input_rows * (self.cpu_agg_row + agg_count * self.cpu_predicate)
            + output_rows * self.cpu_output_row
        )

    def filter(self, input_rows: float, conjunct_count: int) -> float:
        """Residual predicate evaluation."""
        return input_rows * conjunct_count * self.cpu_predicate

    def project(self, rows: float, expr_count: int) -> float:
        """Output-expression computation."""
        return rows * expr_count * self.cpu_predicate

    def sort(self, rows: float) -> float:
        """Comparison sort (n log n)."""
        import math

        if rows <= 1:
            return self.cpu_sort_row
        return rows * math.log2(rows) * self.cpu_sort_row

    # -- spools (§4.3.2) ------------------------------------------------------

    def spool_write(self, rows: float, width: int) -> float:
        """C_W: write the CSE result to a work table."""
        io = self.pages(rows, width) * self.io_page * self.io_write_multiplier
        return io + rows * self.spool_cpu_tuple

    def spool_read(self, rows: float, width: int) -> float:
        """C_R: one sequential read of the work table."""
        io = self.pages(rows, width) * self.io_page
        return io + rows * self.spool_cpu_tuple
