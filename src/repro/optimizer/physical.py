"""Physical plan operators.

A physical plan is an operator tree whose leaves scan base tables or read
spooled work tables. Intermediate results flow as *frames*: mappings from
expression keys (column references, aggregate expressions, partial-aggregate
outputs) to numpy column arrays. Each node records the expression keys it
outputs plus its estimated cardinality, so explain output and the executor's
metric accounting line up with the optimizer's estimates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..expr.expressions import ColumnRef, Expr, TableRef
from ..logical.blocks import OutputColumn
from .aggs import AggCompute


class PhysicalPlan:
    """Base class for physical operators.

    Plans are treated as immutable once built: the optimizer's §5.4
    history cache hands the same node objects out to every Step-3 pass
    whose relevant candidate set matches, and `_assemble`'s folded plan
    tuples alias them freely. Nothing may mutate a node after
    construction."""

    est_rows: float = 0.0

    def children(self) -> Tuple["PhysicalPlan", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def fingerprint(self) -> str:
        """Stable short digest of the plan's shape (sha256 of
        :meth:`describe`, first 16 hex chars) — what the history-reuse
        tests and benchmarks compare across optimizer modes."""
        text = self.describe().encode("utf-8")
        return hashlib.sha256(text).hexdigest()[:16]

    # -- explain -----------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self._describe_line()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_line(self) -> str:
        return type(self).__name__


@dataclass
class PhysScan(PhysicalPlan):
    """Sequential scan of a base table with pushed-down filters."""

    table_ref: TableRef
    conjuncts: Tuple[Expr, ...]
    outputs: Tuple[Expr, ...]
    est_rows: float = 0.0

    def _describe_line(self) -> str:
        return (
            f"Scan {self.table_ref.physical_name} as {self.table_ref.display_name}"
            f" filters={len(self.conjuncts)} (~{self.est_rows:.0f} rows)"
        )


@dataclass
class PhysIndexScan(PhysicalPlan):
    """Range-index access on one column plus residual filters."""

    table_ref: TableRef
    column: ColumnRef
    low: Optional[float]
    high: Optional[float]
    low_inclusive: bool
    high_inclusive: bool
    residual: Tuple[Expr, ...]
    outputs: Tuple[Expr, ...]
    est_rows: float = 0.0

    def _describe_line(self) -> str:
        return (
            f"IndexScan {self.table_ref.physical_name}.{self.column.column} "
            f"range=[{self.low},{self.high}] (~{self.est_rows:.0f} rows)"
        )


@dataclass
class PhysHashJoin(PhysicalPlan):
    """Hash join; with no keys it degrades to a (filtered) cross product.

    ``join_type`` is ``"inner"`` (default), ``"left_outer"``, ``"semi"``,
    or ``"anti"``. Non-inner joins preserve the left (probe) side: semi
    keeps left rows with a match, anti those without, left_outer keeps all
    left rows and null-extends the right columns of unmatched ones.
    """

    left: PhysicalPlan
    right: PhysicalPlan
    keys: Tuple[Tuple[Expr, Expr], ...]  # (left key, right key) pairs
    residual: Tuple[Expr, ...]
    outputs: Tuple[Expr, ...]
    est_rows: float = 0.0
    join_type: str = "inner"

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def _describe_line(self) -> str:
        keys = ", ".join(f"{l!r}={r!r}" for l, r in self.keys)
        if self.join_type == "inner":
            kind = "HashJoin" if self.keys else "CrossJoin"
        else:
            kind = {
                "left_outer": "LeftOuterHashJoin",
                "semi": "SemiHashJoin",
                "anti": "AntiHashJoin",
            }[self.join_type]
        return f"{kind} on [{keys}] (~{self.est_rows:.0f} rows)"


@dataclass
class PhysHashAgg(PhysicalPlan):
    """Hash aggregation: group by ``keys``, evaluate ``computes``."""

    child: PhysicalPlan
    keys: Tuple[Expr, ...]
    computes: Tuple[AggCompute, ...]
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    @property
    def outputs(self) -> Tuple[Expr, ...]:
        return tuple(self.keys) + tuple(c.out for c in self.computes)

    def _describe_line(self) -> str:
        return (
            f"HashAgg keys={len(self.keys)} aggs={len(self.computes)}"
            f" (~{self.est_rows:.0f} rows)"
        )


@dataclass
class PhysFilter(PhysicalPlan):
    """Apply residual/compensation conjuncts."""

    child: PhysicalPlan
    conjuncts: Tuple[Expr, ...]
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _describe_line(self) -> str:
        return f"Filter {list(self.conjuncts)!r} (~{self.est_rows:.0f} rows)"


@dataclass
class PhysProject(PhysicalPlan):
    """Compute named output columns (the top of a query or a spool body)."""

    child: PhysicalPlan
    outputs: Tuple[OutputColumn, ...]
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _describe_line(self) -> str:
        names = ", ".join(o.name for o in self.outputs)
        return f"Project [{names}]"


@dataclass
class PhysSort(PhysicalPlan):
    """Order rows by (expression, descending) items."""

    child: PhysicalPlan
    sort_items: Tuple[Tuple[Expr, bool], ...]
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.child,)

    def _describe_line(self) -> str:
        return f"Sort {[(repr(e), d) for e, d in self.sort_items]!r}"


@dataclass
class PhysSpoolRead(PhysicalPlan):
    """Read a materialized CSE work table, renaming its named columns to the
    consumer's expression keys (§5.1 substitute)."""

    cse_id: str
    column_map: Tuple[Tuple[str, Expr], ...]  # (work-table column, consumer key)
    est_rows: float = 0.0

    @property
    def outputs(self) -> Tuple[Expr, ...]:
        return tuple(expr for _, expr in self.column_map)

    def _describe_line(self) -> str:
        return f"SpoolRead {self.cse_id} (~{self.est_rows:.0f} rows)"


@dataclass(frozen=True)
class FusedStage:
    """One stage of a fused pipeline: a filter (conjuncts) or an interior
    projection (expressions to evaluate), with the original node's
    cardinality estimate preserved for explain-cost annotation."""

    kind: str  # "filter" | "project"
    exprs: Tuple[Expr, ...]
    est_rows: float = 0.0


@dataclass
class PhysFusedPipeline(PhysicalPlan):
    """A scan→filter→project chain collapsed into one streaming operator.

    ``source`` is the original leaf (PhysScan with its pushed-down
    conjuncts, or PhysSpoolRead); ``stages`` run source-first. The
    executor streams fixed-size columnar morsels through the stages
    instead of materializing one whole frame per operator, checking the
    governor token per morsel."""

    source: PhysicalPlan
    stages: Tuple[FusedStage, ...]
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return (self.source,)

    def _describe_line(self) -> str:
        kinds = "+".join(s.kind for s in self.stages) or "pass"
        return (
            f"FusedPipeline [{kinds}] (~{self.est_rows:.0f} rows)"
        )


@dataclass
class PhysSpoolDef(PhysicalPlan):
    """Materialize one or more spools, then evaluate the child once.

    Emitted at a CSE's least common ancestor (§5.2): every spool body below
    is computed exactly once and read by each consumer in the subtree.
    """

    spools: Tuple[Tuple[str, PhysicalPlan], ...]  # (cse_id, body plan)
    child: PhysicalPlan
    est_rows: float = 0.0

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return tuple(body for _, body in self.spools) + (self.child,)

    def _describe_line(self) -> str:
        ids = ", ".join(cid for cid, _ in self.spools)
        return f"SpoolDef [{ids}]"


@dataclass
class PhysBatch(PhysicalPlan):
    """The dummy batch root: independent per-query plans evaluated in order."""

    queries: Tuple[Tuple[str, PhysicalPlan], ...]  # (query name, plan)

    def children(self) -> Tuple[PhysicalPlan, ...]:
        return tuple(plan for _, plan in self.queries)

    def _describe_line(self) -> str:
        return f"Batch [{', '.join(name for name, _ in self.queries)}]"
