"""Optimizer configuration knobs.

Defaults follow the paper: α = 10% (Heuristic 1), β = 90% (Heuristic 4),
CSE exploitation enabled, heuristic pruning enabled, dynamic LCA enabled.
Each knob exists so the benchmarks can reproduce the paper's "no CSE" /
"using CSEs" / "using CSEs (no heuristics)" columns and the ablations in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OptimizerOptions:
    """Configuration for :class:`repro.optimizer.engine.Optimizer`."""

    #: Master switch for the CSE optimization phase (Steps 2-3, §2.2).
    enable_cse: bool = True

    #: Heuristic pruning (Heuristics 1-4, §4.3). When off, one candidate per
    #: join-compatible signature bucket is generated covering all consumers,
    #: reproducing the paper's "no heuristics" columns.
    enable_heuristics: bool = True

    #: Heuristic 1 threshold: candidates whose consumers' summed lower cost
    #: bounds are below ``alpha`` × (total query cost) are discarded.
    alpha: float = 0.10

    #: Heuristic 4 threshold: a contained candidate is discarded when its
    #: estimated result size exceeds ``beta`` × the containing candidate's.
    beta: float = 0.90

    #: Explore eager pre-aggregation (group-by pushdown below joins). This is
    #: what generates aggregated sharing opportunities such as the paper's
    #: E4/E5 (Figure 6).
    enable_preagg: bool = True

    #: Pre-aggregation is explored for connected table subsets of at most
    #: this size (a search-space guard for very large joins).
    preagg_max_tables: int = 5

    #: Only explore pre-aggregation of a subset that contains at least one
    #: aggregate argument. Off by default: the compression rule below is the
    #: search-space gate (count-only pre-aggregates are still allowed when
    #: they compress, which the stacked-CSE experiment of §6.2 needs).
    preagg_needs_aggregate: bool = False

    #: Explore a pre-aggregation only when its estimated group count is at
    #: most this fraction of its input cardinality. Non-compressing
    #: pre-aggregates never win and would flood the signature table with
    #: spurious sharing opportunities (Figure 6 contains γ(O⋈L) but not the
    #: non-compressing γ(C⋈O)).
    preagg_min_compression: float = 0.7

    #: Minimum number of referenced tables for a sharable signature bucket.
    #: Single-table covering subexpressions save no join work and the
    #: paper's prototype does not generate them (Figure 6).
    min_cse_tables: int = 2

    #: §5.2's dynamic LCA: compute the least common ancestor over the
    #: consumers that can actually substitute (matched), not the full
    #: constructed set. The paper's runtime narrowing ("after a consumer's
    #: subtree resolves without the CSE, move the LCA down") exists to prune
    #: a single-best-plan optimizer's wasted work; the usage-profile search
    #: here keeps both alternatives per group, so that effect is subsumed —
    #: see DESIGN.md. Static placement (False) is always correct too.
    dynamic_lca: bool = True

    #: §5.5 stacked CSEs: let candidate bodies consume other candidates.
    enable_stacked: bool = True

    #: Hard caps keeping pathological inputs bounded.
    max_candidates: int = 64
    max_cse_optimizations: int = 128

    #: Step-3 selection strategy. ``"paper"`` is the paper's §5.3 subset
    #: enumeration (independence-pruned passes over candidate subsets).
    #: ``"greedy"`` is Roy et al.'s benefit-ordered greedy selection over
    #: the AND-OR DAG (arXiv cs/9910021): candidates are materialized one
    #: at a time in descending marginal-benefit order, with lazily
    #: re-evaluated benefits, so large candidate sets optimize in
    #: near-linear passes instead of up to ``max_cse_optimizations``
    #: subsets. ``"auto"`` picks greedy once the candidate count exceeds
    #: ``greedy_threshold`` (what coordinator-merged cross-session batches
    #: hit) and the paper enumeration below it. Part of the plan-cache
    #: config key: changing the strategy re-keys cached plans.
    cse_strategy: str = "paper"

    #: ``cse_strategy="auto"`` switches to greedy selection strictly above
    #: this candidate count.
    greedy_threshold: int = 12

    #: §5.4 optimization-history reuse: keep per-group plan sets (keyed by
    #: the group's candidate footprint ∩ the enabled set), finalized
    #: per-query plan sets, and folded assembly prefixes alive across
    #: Step-3 passes, so each pass re-optimizes only the groups whose
    #: relevant enabled candidates actually changed. Off reproduces the
    #: naive scheme the paper improves on — every pass re-optimizes the
    #: whole batch from scratch. Plans are identical either way; only the
    #: work to find them differs.
    reuse_history: bool = True

    #: Cost accounting for shared spools. ``"profile"`` is the paper's
    #: correct scheme (§5.2: usage cost per consumer, initial cost once at
    #: the LCA, single-consumer plans discarded). ``"naive_split"``
    #: reproduces the broken scheme the paper argues against (initial cost
    #: split evenly among potential consumers at substitution time).
    cost_mode: str = "profile"

    #: Enter the CSE phase only when the batch's estimated cost exceeds this
    #: value ("only if the query is expensive", §2.2). 0 disables the gate.
    cse_cost_threshold: float = 0.0

    #: Engine-v2 pipeline fusion: collapse eligible scan→filter→project
    #: chains into a single streaming ``PhysFusedPipeline`` node that the
    #: executor runs morsel-at-a-time (``--no-fused`` turns it off). Plan
    #: costs are unchanged — fusion is a post-pass on the chosen bundle.
    enable_fusion: bool = True

    def __post_init__(self) -> None:
        if self.cost_mode not in ("profile", "naive_split"):
            raise ValueError(f"unknown cost_mode {self.cost_mode!r}")
        if self.cse_strategy not in ("paper", "greedy", "auto"):
            raise ValueError(f"unknown cse_strategy {self.cse_strategy!r}")
        if self.greedy_threshold < 0:
            raise ValueError("greedy_threshold must be non-negative")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be within [0, 1]")
        if not 0.0 <= self.beta:
            raise ValueError("beta must be non-negative")
