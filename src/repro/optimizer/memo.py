"""The memo: groups, group expressions, and logical exploration.

Following the Cascades/Volcano framework the paper builds on (§2.1), the memo
is a DAG of *groups*; each group holds a set of logically equivalent *group
expressions* that reference their inputs by group. We materialize the full
logical search space for every SPJG block directly:

* one **join group** per connected subset of the block's join graph, with one
  :class:`JoinExpr` per partition of the subset into two connected halves
  (the same space a Cascades optimizer reaches via commute/associate rules);
* one **aggregation group** per (covered tables, keys, outputs) triple. The
  block's final aggregation group holds a direct implementation over the full
  join plus, when the eager group-by rule applies, combine-implementations
  over joins that contain a pre-aggregated input (:class:`AggItem`). Those
  pre-aggregation groups are precisely where sharing opportunities such as
  the paper's E4/E5 (Figure 6) come from.

Every group carries its table signature (§3) computed incrementally via the
rules of Figure 2, an estimated cardinality, and required-output columns.
After normal optimization each group also carries its cost bounds, which the
candidate-generation heuristics (§4.3) consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import OptimizerError
from ..expr.expressions import (
    AggExpr,
    ColumnRef,
    Comparison,
    Expr,
    TableRef,
    canon_key,
    canon_sorted,
)
from ..expr.predicates import (
    EquivalenceClasses,
    non_equality_conjuncts,
    split_conjuncts,
)
from ..logical.blocks import QueryBlock
from ..cse.signature import TableSignature
from .aggs import AggCompute, combine_computes, decomposable_over, direct_computes, partial_computes
from .cardinality import CardinalityEstimator
from .options import OptimizerOptions


# ---------------------------------------------------------------------------
# Join items
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggItem:
    """A pre-aggregated join input: γ_keys;partials over ``source`` tables."""

    source: FrozenSet[TableRef]
    keys: Tuple[ColumnRef, ...]
    partials: Tuple[AggCompute, ...]

    def __repr__(self) -> str:
        tables = ",".join(sorted(t.display_name for t in self.source))
        return f"γ[{tables}]"


JoinItem = Union[TableRef, AggItem]


def item_tables(item: JoinItem) -> FrozenSet[TableRef]:
    """The base-table instances one join item covers."""
    if isinstance(item, TableRef):
        return frozenset([item])
    return item.source


def items_tables(items: Iterable[JoinItem]) -> FrozenSet[TableRef]:
    """Union of base tables over several join items."""
    result: Set[TableRef] = set()
    for item in items:
        result.update(item_tables(item))
    return frozenset(result)


# ---------------------------------------------------------------------------
# Group expressions
# ---------------------------------------------------------------------------


class GroupExpression:
    """Base class; concrete expressions list their input groups."""

    def input_groups(self) -> Tuple["Group", ...]:
        return ()


@dataclass
class ScanExpr(GroupExpression):
    """Access one base table instance with its pushed-down local filters."""

    table_ref: TableRef
    conjuncts: Tuple[Expr, ...]

    def __repr__(self) -> str:
        return f"Scan({self.table_ref!r}, filters={len(self.conjuncts)})"


@dataclass
class JoinExpr(GroupExpression):
    """Join two child groups. ``hash_keys`` pairs (left, right) columns, one
    per equivalence class spanning the two sides; ``residual`` holds
    non-equality conjuncts that become applicable at this join."""

    left: "Group"
    right: "Group"
    hash_keys: Tuple[Tuple[ColumnRef, ColumnRef], ...]
    residual: Tuple[Expr, ...]

    def input_groups(self) -> Tuple["Group", ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"Join(g{self.left.gid}, g{self.right.gid})"


@dataclass
class AggImplExpr(GroupExpression):
    """Aggregate an input group: grouping keys + aggregate computations.

    Used for final aggregations (direct computes), combine steps above a
    pre-aggregated join, and the pre-aggregations themselves (partials).
    """

    input_group: "Group"
    keys: Tuple[ColumnRef, ...]
    computes: Tuple[AggCompute, ...]

    def input_groups(self) -> Tuple["Group", ...]:
        return (self.input_group,)

    def __repr__(self) -> str:
        return f"Agg(g{self.input_group.gid}, keys={len(self.keys)})"


@dataclass
class RootExpr(GroupExpression):
    """The dummy batch root tying all query tops together (§2, footnote 1)."""

    children: Tuple["Group", ...]

    def input_groups(self) -> Tuple["Group", ...]:
        return self.children

    def __repr__(self) -> str:
        return f"Root({[g.gid for g in self.children]})"


# ---------------------------------------------------------------------------
# Groups
# ---------------------------------------------------------------------------


@dataclass
class Group:
    """A memo group: logically equivalent expressions plus derived info."""

    gid: int
    kind: str  # "join" | "agg" | "root"
    block: Optional[QueryBlock]
    part_id: str
    items: FrozenSet[JoinItem]
    tables: FrozenSet[TableRef]
    exprs: List[GroupExpression] = field(default_factory=list)
    signature: Optional[TableSignature] = None
    est_rows: float = 0.0
    #: Columns (or computed expressions) this group must output for ancestors.
    required_outputs: Tuple[Expr, ...] = ()
    row_width: int = 0
    #: Cost bounds established during normal optimization. In this exhaustive
    #: optimizer both bounds equal the optimal cost; they are kept separate
    #: because the paper's heuristics are phrased in terms of bounds.
    lower_bound: Optional[float] = None
    upper_bound: Optional[float] = None
    #: For "agg" groups: grouping keys and output aggregate expressions.
    agg_keys: Tuple[ColumnRef, ...] = ()
    agg_outs: Tuple[Expr, ...] = ()

    def add_expr(self, expr: GroupExpression) -> None:
        """Append one group expression."""
        self.exprs.append(expr)

    @property
    def est_bytes(self) -> float:
        """Estimated result size in bytes."""
        return self.est_rows * max(1, self.row_width)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(sorted(repr(i) for i in self.items))
        return f"Group(g{self.gid} {self.kind} [{names}])"


# ---------------------------------------------------------------------------
# Per-block derived info
# ---------------------------------------------------------------------------


class BlockInfo:
    """Derived structures for one block: equivalence classes, conjunct
    assignment, and the equijoin graph."""

    def __init__(self, block: QueryBlock) -> None:
        self.block = block
        self.classes: EquivalenceClasses = block.equivalence_classes()
        self.noneq: List[Expr] = non_equality_conjuncts(block.conjuncts)
        self.required = block.required_columns()
        # Join graph over table instances.
        self.edges: Set[FrozenSet[TableRef]] = set()
        for cls in self.classes.classes():
            tables = sorted({m.table_ref for m in cls if isinstance(m, ColumnRef)})
            for a, b in itertools.combinations(tables, 2):
                self.edges.add(frozenset((a, b)))
        for conjunct in self.noneq:
            tables = sorted(conjunct.tables())
            for a, b in itertools.combinations(tables, 2):
                self.edges.add(frozenset((a, b)))
        self._bridge_components()
        self._all_classes = self.classes.classes()
        self._classes_cache: Dict[FrozenSet[TableRef], List[FrozenSet[ColumnRef]]] = {}
        self._neighbors: Dict[TableRef, Set[TableRef]] = {}
        for edge in self.edges:
            pair = sorted(edge)
            if len(pair) == 2:
                a, b = pair
                self._neighbors.setdefault(a, set()).add(b)
                self._neighbors.setdefault(b, set()).add(a)

    def tables_adjacent(self, first: TableRef, second: TableRef) -> bool:
        """Whether two instances share a join-graph edge."""
        return second in self._neighbors.get(first, ())

    def _bridge_components(self) -> None:
        """Connect disconnected components with synthetic (cartesian) edges
        so subset enumeration covers the whole block."""
        tables = sorted(self.block.tables)
        if not tables:
            return
        seen: Set[TableRef] = set()
        components: List[List[TableRef]] = []
        for table in tables:
            if table in seen:
                continue
            component = [table]
            seen.add(table)
            frontier = [table]
            while frontier:
                current = frontier.pop()
                for edge in self.edges:
                    if current in edge:
                        other = next(iter(edge - {current}))
                        if other not in seen:
                            seen.add(other)
                            component.append(other)
                            frontier.append(other)
            components.append(component)
        for first, second in zip(components, components[1:]):
            self.edges.add(frozenset((first[0], second[0])))

    # -- conjunct assignment ----------------------------------------------

    def conjunct_tables(self, conjunct: Expr) -> FrozenSet[TableRef]:
        """Table instances a conjunct references."""
        return conjunct.tables()

    def noneq_within(self, tables: FrozenSet[TableRef]) -> List[Expr]:
        """Non-equality conjuncts fully inside ``tables``."""
        return [
            c for c in self.noneq if self.conjunct_tables(c) <= tables
        ]

    def local_conjuncts(self, table: TableRef) -> List[Expr]:
        """Single-table non-equality conjuncts of one instance."""
        singleton = frozenset([table])
        return [c for c in self.noneq if self.conjunct_tables(c) == singleton]

    def classes_within(self, tables: FrozenSet[TableRef]) -> List[FrozenSet[ColumnRef]]:
        """Equivalence classes restricted to ``tables`` (>= 2 members)."""
        cached = self._classes_cache.get(tables)
        if cached is not None:
            return cached
        restricted: List[FrozenSet[ColumnRef]] = []
        for cls in self._all_classes:
            members = frozenset(
                m for m in cls
                if isinstance(m, ColumnRef) and m.table_ref in tables
            )
            if len(members) >= 2:
                restricted.append(members)
        self._classes_cache[tables] = restricted
        return restricted

    def spanning_columns(self, subset: FrozenSet[TableRef]) -> Set[ColumnRef]:
        """Columns of ``subset`` referenced by conjuncts that span the subset
        boundary — the join columns a pre-aggregation of ``subset`` must keep."""
        rest = self.block.table_set - subset
        needed: Set[ColumnRef] = set()
        for cls in self.classes.classes():
            members = [m for m in cls if isinstance(m, ColumnRef)]
            inside = [m for m in members if m.table_ref in subset]
            outside = [m for m in members if m.table_ref in rest]
            if inside and outside:
                needed.update(inside)
        for conjunct in self.noneq:
            tables = self.conjunct_tables(conjunct)
            if tables & subset and tables & rest:
                needed.update(
                    c for c in conjunct.columns() if c.table_ref in subset
                )
        return needed


# ---------------------------------------------------------------------------
# The memo
# ---------------------------------------------------------------------------


class Memo:
    """Holds all groups for a batch plus the group DAG."""

    def __init__(
        self, estimator: CardinalityEstimator, options: OptimizerOptions
    ) -> None:
        self.estimator = estimator
        self.options = options
        self._groups_by_key: Dict[object, Group] = {}
        self.groups: List[Group] = []
        self.block_infos: Dict[str, BlockInfo] = {}
        self.block_tops: Dict[str, Group] = {}
        self.root: Optional[Group] = None
        #: (group, part_id) registrations in creation order, consumed by the
        #: CSE manager (Step 1 of the paper's architecture).
        self.signature_log: List[Group] = []

    # -- group creation -----------------------------------------------------

    def _new_group(
        self,
        key: object,
        kind: str,
        block: Optional[QueryBlock],
        part_id: str,
        items: FrozenSet[JoinItem],
    ) -> Group:
        group = Group(
            gid=len(self.groups),
            kind=kind,
            block=block,
            part_id=part_id,
            items=items,
            tables=items_tables(items),
        )
        self.groups.append(group)
        self._groups_by_key[key] = group
        return group

    def group_for_key(self, key: object) -> Optional[Group]:
        """The group registered under a memo key, if any."""
        return self._groups_by_key.get(key)

    # -- block construction ---------------------------------------------------

    def build_block(self, block: QueryBlock, part_id: str) -> Group:
        """Explore one SPJG block; returns its top group."""
        if block.name in self.block_infos:
            raise OptimizerError(f"block {block.name!r} built twice")
        info = BlockInfo(block)
        self.block_infos[block.name] = info

        base_items: Tuple[JoinItem, ...] = tuple(sorted(block.tables))
        subsets = self._connected_subsets(base_items, info)
        for subset in subsets:
            self._build_join_group(frozenset(subset), info, part_id)

        full_set: FrozenSet[JoinItem] = frozenset(base_items)
        top = self._groups_by_key[("join", block.name, full_set)]

        if block.has_groupby:
            final = self._build_final_agg_group(info, part_id)
            top = final
        self.block_tops[block.name] = top
        return top

    def _build_final_agg_group(self, info: BlockInfo, part_id: str) -> Group:
        block = info.block
        full_tables = block.table_set
        key = (
            "agg",
            block.name,
            full_tables,
            tuple(canon_sorted(block.group_keys)),
            tuple(canon_sorted(block.aggregates)),
        )
        group = self._new_group(key, "agg", block, part_id, frozenset(block.tables))
        group.agg_keys = block.group_keys
        group.agg_outs = tuple(block.aggregates)
        full_join = self._groups_by_key[("join", block.name, frozenset(block.tables))]
        group.add_expr(
            AggImplExpr(full_join, block.group_keys, direct_computes(block.aggregates))
        )
        group.est_rows = self.estimator.group_rows(
            full_join.est_rows,
            self._key_representatives(info, block.group_keys),
            self._ndv_context(info),
        )
        group.required_outputs = tuple(block.group_keys) + tuple(block.aggregates)
        group.row_width = self.estimator.width_of(group.required_outputs)
        group.signature = self._agg_signature(frozenset(block.tables))
        self.signature_log.append(group)

        if self.options.enable_preagg:
            self._explore_preaggregation(info, part_id, group)
        return group

    def _explore_preaggregation(
        self, info: BlockInfo, part_id: str, final_group: Group
    ) -> None:
        """The eager group-by rule: for each connected subset over which the
        aggregates decompose, create the pre-aggregation group, join groups
        over the mixed item set, and a combine implementation of the final
        aggregation."""
        block = info.block
        all_tables = block.table_set
        base_items: Tuple[JoinItem, ...] = tuple(sorted(block.tables))
        if len(base_items) < 2:
            return
        for subset_items in self._connected_subsets(base_items, info):
            subset = frozenset(subset_items)
            if len(subset) >= len(all_tables):
                continue  # pre-aggregating everything IS the final aggregation
            if len(subset) > self.options.preagg_max_tables:
                continue
            if not decomposable_over(block.aggregates, subset):
                continue
            if self.options.preagg_needs_aggregate and not self._has_inside_arg(
                block.aggregates, subset
            ):
                continue
            partials = partial_computes(block.aggregates, subset)
            if not partials:
                continue
            keys = self._preagg_keys(info, subset)
            input_join = self._groups_by_key[
                ("join", block.name, frozenset(subset))
            ]
            group_count = self.estimator.group_rows(
                input_join.est_rows,
                self._key_representatives(info, keys),
                self._ndv_context(info),
            )
            if group_count > self.options.preagg_min_compression * max(
                input_join.est_rows, 1.0
            ):
                continue  # non-compressing pre-aggregation: not useful
            agg_item = AggItem(source=subset, keys=keys, partials=partials)
            preagg_group = self._build_preagg_group(info, part_id, agg_item)
            # A pre-aggregation that doesn't reduce cardinality is still a
            # legal alternative; cost-based choice handles it.
            mixed_top = self._build_mixed_joins(info, part_id, agg_item)
            if mixed_top is None:
                continue
            final_group.add_expr(
                AggImplExpr(
                    mixed_top,
                    block.group_keys,
                    combine_computes(block.aggregates, subset),
                )
            )

    @staticmethod
    def _has_inside_arg(
        aggs: Sequence[AggExpr], subset: FrozenSet[TableRef]
    ) -> bool:
        for agg in aggs:
            if agg.arg is None:
                continue
            tables = {c.table_ref for c in agg.arg.columns()}
            if tables and tables <= subset:
                return True
        return False

    @staticmethod
    def _key_representatives(
        info: BlockInfo, keys: Sequence[ColumnRef]
    ) -> Tuple[ColumnRef, ...]:
        """One key per equivalence class: keys known equal (e.g. both sides
        of an equijoin kept as pre-aggregation keys) must not multiply the
        group-count domain."""
        chosen: List[ColumnRef] = []
        for key in canon_sorted(keys):
            if any(info.classes.same_class(key, kept) for kept in chosen):
                continue
            chosen.append(key)
        return tuple(chosen)

    def _preagg_keys(
        self, info: BlockInfo, subset: FrozenSet[TableRef]
    ) -> Tuple[ColumnRef, ...]:
        keys: Set[ColumnRef] = {
            k for k in info.block.group_keys if k.table_ref in subset
        }
        keys.update(info.spanning_columns(subset))
        return tuple(canon_sorted(keys))

    def _build_preagg_group(
        self, info: BlockInfo, part_id: str, item: AggItem
    ) -> Group:
        block = info.block
        outs = tuple(canon_sorted(p.out for p in item.partials))
        key = (
            "agg",
            block.name,
            item.source,
            tuple(canon_sorted(item.keys)),
            outs,
        )
        existing = self._groups_by_key.get(key)
        if existing is not None:
            return existing
        group = self._new_group(key, "agg", block, part_id, frozenset([item]))
        group.agg_keys = item.keys
        group.agg_outs = outs
        input_join = self._groups_by_key[("join", block.name, frozenset(item.source))]
        group.add_expr(AggImplExpr(input_join, item.keys, item.partials))
        group.est_rows = self.estimator.group_rows(
            input_join.est_rows,
            self._key_representatives(info, item.keys),
            self._ndv_context(info),
        )
        group.required_outputs = tuple(item.keys) + tuple(p.out for p in item.partials)
        group.row_width = self.estimator.width_of(group.required_outputs)
        group.signature = self._agg_signature(item.source)
        self.signature_log.append(group)
        self._nest_preaggregation(info, group, item)
        return group

    def _nest_preaggregation(
        self, info: BlockInfo, group: Group, item: AggItem
    ) -> None:
        """Combine-implementations of a pre-aggregation over *deeper*
        pre-aggregations: ``γ(S) = γ-combine(join(γ(S'), S∖S'))``.

        This mirrors what repeated rule application yields in a Cascades
        memo and is what makes a narrower aggregated group a memo-DAG
        descendant of the wider one — the structural fact Definition 4.2's
        containment check relies on (paper Example 9)."""
        block = info.block
        outer_aggs = [p.out for p in item.partials]
        base_items: Tuple[JoinItem, ...] = tuple(sorted(item.source))
        if len(base_items) < 2:
            return
        for subset_items in self._connected_subsets(base_items, info):
            inner_source = frozenset(subset_items)
            if len(inner_source) >= len(item.source):
                continue
            if not decomposable_over(outer_aggs, inner_source):
                continue
            inner_partials = partial_computes(outer_aggs, inner_source)
            if not inner_partials:
                continue
            inner_keys = self._preagg_keys(info, inner_source)
            inner_item = AggItem(
                source=inner_source, keys=inner_keys, partials=inner_partials
            )
            inner_group = self._agg_item_group(inner_item, info)
            if inner_group is None:
                continue  # only reuse pre-aggregations the block explores
            mixed = frozenset({inner_item} | (item.source - inner_source))
            mixed_join = self._groups_by_key.get(("join", block.name, mixed))
            if mixed_join is None:
                continue
            try:
                computes = combine_computes(outer_aggs, inner_source)
            except OptimizerError:
                continue
            group.add_expr(AggImplExpr(mixed_join, item.keys, computes))

    def _build_mixed_joins(
        self, info: BlockInfo, part_id: str, item: AggItem
    ) -> Optional[Group]:
        """Join groups over {AggItem} ∪ (remaining tables); returns the group
        covering everything, or None when the block has no remaining tables
        (the caller then has nothing to combine)."""
        block = info.block
        rest = tuple(sorted(block.table_set - item.source))
        mixed_items: Tuple[JoinItem, ...] = (item,) + rest
        if not rest:
            return None
        for subset in self._connected_subsets(mixed_items, info):
            subset_f = frozenset(subset)
            if item not in subset_f or len(subset_f) < 2:
                continue  # pure-table subsets exist; {item} is the agg group
            self._build_join_group(subset_f, info, part_id)
        return self._groups_by_key.get(("join", block.name, frozenset(mixed_items)))

    # -- join groups -----------------------------------------------------------

    def _build_join_group(
        self, items: FrozenSet[JoinItem], info: BlockInfo, part_id: str
    ) -> Group:
        block = info.block
        key = ("join", block.name, items)
        existing = self._groups_by_key.get(key)
        if existing is not None:
            return existing
        group = self._new_group(key, "join", block, part_id, items)
        tables = group.tables
        agg_items = [i for i in items if isinstance(i, AggItem)]

        # Required outputs: block-required columns of covered tables, except
        # that columns folded inside a pre-aggregation are replaced by the
        # pre-aggregation's keys and partial outputs.
        hidden: Set[TableRef] = set()
        extra: List[Expr] = []
        for agg_item in agg_items:
            hidden.update(agg_item.source)
            extra.extend(agg_item.keys)
            extra.extend(p.out for p in agg_item.partials)
        required: List[Expr] = [
            c for c in canon_sorted(info.required)
            if c.table_ref in tables and c.table_ref not in hidden
        ]
        seen: Set[Expr] = set(required)
        for expr in extra:
            if expr not in seen:
                required.append(expr)
                seen.add(expr)
        group.required_outputs = tuple(required)
        group.row_width = self.estimator.width_of(group.required_outputs)

        # Signature: join of plain tables => [F; names]; anything involving a
        # pre-aggregated input has no signature (Figure 2 "other cases").
        if not agg_items:
            if len(items) == 1:
                table_ref = next(iter(items))
                assert isinstance(table_ref, TableRef)
                group.signature = TableSignature(
                    False, (table_ref.signature_name,)
                )
            else:
                group.signature = TableSignature.of_tables(
                    (t for t in tables), has_groupby=False
                )
            self.signature_log.append(group)

        # Cardinality.
        group.est_rows = self._estimate_join_rows(items, info)

        # Expressions.
        if len(items) == 1:
            item = next(iter(items))
            if isinstance(item, TableRef):
                conjuncts = tuple(info.local_conjuncts(item))
                conjuncts = conjuncts + tuple(
                    self._single_table_equalities(item, info)
                )
                group.add_expr(ScanExpr(item, conjuncts))
            # Single AggItem groups are aggregate groups, never join groups.
            return group

        ordered = canon_sorted(items)
        anchor = ordered[0]
        for mask in range(0, 2 ** (len(ordered) - 1)):
            left_items = {anchor}
            for position, item in enumerate(ordered[1:]):
                if mask & (1 << position):
                    left_items.add(item)
            right_items = set(ordered) - left_items
            if not right_items:
                continue
            left_f = frozenset(left_items)
            right_f = frozenset(right_items)
            if not self._is_connected(left_f, info):
                continue
            if not self._is_connected(right_f, info):
                continue
            left_group = self._groups_by_key.get(("join", block.name, left_f))
            right_group = self._groups_by_key.get(("join", block.name, right_f))
            if len(left_f) == 1 and isinstance(next(iter(left_f)), AggItem):
                left_group = self._agg_item_group(next(iter(left_f)), info)
            if len(right_f) == 1 and isinstance(next(iter(right_f)), AggItem):
                right_group = self._agg_item_group(next(iter(right_f)), info)
            if left_group is None or right_group is None:
                continue
            hash_keys, residual = self._join_spec(left_f, right_f, info)
            group.add_expr(JoinExpr(left_group, right_group, hash_keys, residual))
        if not group.exprs:
            raise OptimizerError(
                f"join group over {sorted(map(repr, items))} has no expression"
            )
        return group

    def _agg_item_group(self, item: AggItem, info: BlockInfo) -> Optional[Group]:
        outs = tuple(canon_sorted(p.out for p in item.partials))
        key = (
            "agg",
            info.block.name,
            item.source,
            tuple(canon_sorted(item.keys)),
            outs,
        )
        return self._groups_by_key.get(key)

    def _single_table_equalities(
        self, table: TableRef, info: BlockInfo
    ) -> List[Expr]:
        singleton = frozenset([table])
        conjuncts: List[Expr] = []
        for cls in info.classes_within(singleton):
            members = canon_sorted(cls)
            first = members[0]
            for member in members[1:]:
                from ..expr.expressions import ComparisonOp

                conjuncts.append(Comparison(ComparisonOp.EQ, first, member))
        return conjuncts

    # -- join helpers ---------------------------------------------------------

    def _item_adjacent(
        self, item_a: JoinItem, item_b: JoinItem, info: BlockInfo
    ) -> bool:
        for t1 in item_tables(item_a):
            for t2 in item_tables(item_b):
                if info.tables_adjacent(t1, t2):
                    return True
        return False

    def _is_connected(self, items: FrozenSet[JoinItem], info: BlockInfo) -> bool:
        items_list = list(items)
        if len(items_list) <= 1:
            return True
        seen = {items_list[0]}
        frontier = [items_list[0]]
        while frontier:
            current = frontier.pop()
            for other in items_list:
                if other not in seen and self._item_adjacent(current, other, info):
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(items_list)

    def _connected_subsets(
        self, items: Sequence[JoinItem], info: BlockInfo
    ) -> List[Tuple[JoinItem, ...]]:
        """All connected subsets, ordered by size (small to large)."""
        items = list(items)
        n = len(items)
        result: List[Tuple[JoinItem, ...]] = []
        for mask in range(1, 2 ** n):
            subset = tuple(
                items[i] for i in range(n) if mask & (1 << i)
            )
            if self._is_connected(frozenset(subset), info):
                result.append(subset)
        result.sort(key=len)
        return result

    def _visible_columns_of(
        self, column: ColumnRef, items: FrozenSet[JoinItem]
    ) -> bool:
        """Whether ``column`` is visible in the output of a join over
        ``items`` (not folded away inside a pre-aggregation)."""
        for item in items:
            if isinstance(item, TableRef):
                if column.table_ref == item:
                    return True
            else:
                if column.table_ref in item.source:
                    return column in item.keys
        return False

    def _join_spec(
        self,
        left: FrozenSet[JoinItem],
        right: FrozenSet[JoinItem],
        info: BlockInfo,
    ) -> Tuple[Tuple[Tuple[ColumnRef, ColumnRef], ...], Tuple[Expr, ...]]:
        """Hash-key pairs (one per spanning equivalence class) and residual
        conjuncts becoming applicable at this join."""
        left_tables = items_tables(left)
        right_tables = items_tables(right)
        all_tables = left_tables | right_tables
        hash_keys: List[Tuple[ColumnRef, ColumnRef]] = []
        for cls in info.classes_within(all_tables):
            left_members = canon_sorted(
                m for m in cls
                if m.table_ref in left_tables and self._visible_columns_of(m, left)
            )
            right_members = canon_sorted(
                m for m in cls
                if m.table_ref in right_tables and self._visible_columns_of(m, right)
            )
            if left_members and right_members:
                hash_keys.append((left_members[0], right_members[0]))
        residual = tuple(
            c for c in info.noneq
            if (lambda tabs: tabs <= all_tables
                and not tabs <= left_tables
                and not tabs <= right_tables)(c.tables())
        )
        return tuple(hash_keys), residual

    # -- cardinality ---------------------------------------------------------

    def _ndv_context(self, info: BlockInfo):
        return self.estimator

    def _estimate_join_rows(
        self, items: FrozenSet[JoinItem], info: BlockInfo
    ) -> float:
        rows = 1.0
        item_rows: Dict[JoinItem, float] = {}
        for item in items:
            if isinstance(item, TableRef):
                base = self.estimator.table_rows(item)
                for conjunct in info.local_conjuncts(item):
                    base *= self.estimator.selectivity(conjunct)
                singleton = frozenset([item])
                for cls in info.classes_within(singleton):
                    base *= self.estimator.class_factor(cls, {item: base})
                item_rows[item] = max(base, 0.0)
            else:
                group = self._agg_item_group(item, info)
                item_rows[item] = group.est_rows if group is not None else 1.0
            rows *= max(item_rows[item], 1e-9)

        tables = items_tables(items)
        # Cross-item equivalence-class factors.
        for cls in self._cross_item_classes(items, info):
            rows *= self.estimator.class_factor_for_join(cls, item_rows, items)
        # Non-equality conjuncts spanning at least two items.
        for conjunct in info.noneq:
            conj_tables = conjunct.tables()
            if not conj_tables <= tables:
                continue
            touching = [
                item for item in items if item_tables(item) & conj_tables
            ]
            if len(touching) >= 2:
                rows *= self.estimator.selectivity(conjunct)
        return max(rows, 1.0)

    def _cross_item_classes(
        self, items: FrozenSet[JoinItem], info: BlockInfo
    ) -> List[FrozenSet[ColumnRef]]:
        tables = items_tables(items)
        result = []
        for cls in info.classes_within(tables):
            touched_items = set()
            for member in cls:
                for item in items:
                    if member.table_ref in item_tables(item):
                        touched_items.add(item)
            if len(touched_items) >= 2:
                result.append(cls)
        return result

    # -- the batch root ---------------------------------------------------------

    def build_root(self, tops: Sequence[Group]) -> Group:
        """Create the dummy batch-root group over the query tops."""
        root = self._new_group(("root",), "root", None, "__root__", frozenset())
        root.add_expr(RootExpr(tuple(tops)))
        root.est_rows = float(sum(g.est_rows for g in tops))
        self.root = root
        return root

    # -- DAG utilities ------------------------------------------------------------

    def descendants(self, group: Group) -> Set[int]:
        """gids of all groups reachable below ``group`` (excluding itself)."""
        cache: Dict[int, Set[int]] = getattr(self, "_desc_cache", None) or {}
        self._desc_cache = cache
        return self._descendants_inner(group, cache)

    def _descendants_inner(self, group: Group, cache: Dict[int, Set[int]]) -> Set[int]:
        if group.gid in cache:
            return cache[group.gid]
        cache[group.gid] = set()  # placeholder guards against cycles
        result: Set[int] = set()
        for expr in group.exprs:
            for child in expr.input_groups():
                result.add(child.gid)
                result.update(self._descendants_inner(child, cache))
        cache[group.gid] = result
        return result

    def invalidate_dag_cache(self) -> None:
        """Drop cached descendant sets (and footprints) after adding groups."""
        self._desc_cache = {}
        self._footprint_cache = None

    def candidate_footprints(
        self, consumers: Dict[str, Set[int]]
    ) -> List[FrozenSet[str]]:
        """Per-group *candidate footprints* (§5.4), indexed by gid.

        A candidate's id is in a group's footprint when at least one of the
        candidate's view-matched consumer groups lies in the group's subtree
        (the group itself included). During CSE optimization the profile DP's
        result for a group can only depend on the enabled candidates inside
        its subtree, so ``footprint ∩ enabled`` is a sound history-cache key:
        passes whose enabled sets agree on that intersection reuse the
        group's plans verbatim.

        Computed bottom-up over the memo DAG in one memoized DFS (children
        can carry *higher* gids than parents — pre-aggregation exploration
        appends join groups after the final agg group — so a gid-ordered
        scan would be wrong). The result is cached per consumer map and
        dropped by :meth:`invalidate_dag_cache`.
        """
        cache_key = tuple(
            (cid, tuple(sorted(gids))) for cid, gids in sorted(consumers.items())
        )
        cached = getattr(self, "_footprint_cache", None)
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        rooted: Dict[int, Set[str]] = {}
        for cid, gids in consumers.items():
            for gid in gids:
                rooted.setdefault(gid, set()).add(cid)
        memo: Dict[int, FrozenSet[str]] = {}

        def visit(group: Group) -> FrozenSet[str]:
            known = memo.get(group.gid)
            if known is not None:
                return known
            memo[group.gid] = frozenset()  # placeholder guards against cycles
            result: Set[str] = set(rooted.get(group.gid, ()))
            for expr in group.exprs:
                for child in expr.input_groups():
                    result.update(visit(child))
            footprint = frozenset(result)
            memo[group.gid] = footprint
            return footprint

        for group in self.groups:
            visit(group)
        footprints = [memo[group.gid] for group in self.groups]
        self._footprint_cache = (cache_key, footprints)
        return footprints

    def least_common_ancestor(self, consumer_gids: Sequence[int]) -> Group:
        """The lowest group whose descendants (plus itself) cover all
        ``consumer_gids`` (Definition 5.1)."""
        if self.root is None:
            raise OptimizerError("memo has no root group")
        needed = set(consumer_gids)
        best: Optional[Group] = None
        best_size = None
        for group in self.groups:
            covered = self.descendants(group) | {group.gid}
            if needed <= covered:
                size = len(covered)
                if best is None or size < best_size or (
                    size == best_size and group.gid < best.gid
                ):
                    best = group
                    best_size = size
        if best is None:
            return self.root
        return best

    # -- signatures -------------------------------------------------------------

    @staticmethod
    def _agg_signature(tables: FrozenSet[TableRef]) -> TableSignature:
        return TableSignature.of_tables(tables, has_groupby=True)
