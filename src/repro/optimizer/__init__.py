"""Cascades-style cost-based optimizer: memo, cost model, physical plans."""

from .options import OptimizerOptions
from .engine import Optimizer, OptimizationResult

__all__ = ["OptimizerOptions", "Optimizer", "OptimizationResult"]
