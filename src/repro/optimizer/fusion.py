"""Pipeline fusion: collapse scan→filter→project chains for streaming.

A post-pass over the finalized :class:`PlanBundle`. Maximal chains of
``PhysFilter`` / interior ``PhysProject`` nodes whose leaf is a
``PhysScan`` or ``PhysSpoolRead`` are replaced by one
:class:`PhysFusedPipeline` node; the executor then streams fixed-size
columnar morsels through the chain instead of materializing one whole
frame per operator, and the governor's row/deadline checks fire per
morsel instead of per operator.

The pass is purely structural: the leaf keeps its pushed-down conjuncts,
every stage keeps its original cardinality estimate (so explain-cost
annotation is unchanged), and bundle costs are not touched. The
finalizing top projection of a query or spool body is *not* fused — the
executor's run loop requires it (`"finalized plan must end in a
projection"`) and its cost is charged by the finalizer, not the tree.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .engine import PlanBundle, QueryPlan
from .physical import (
    FusedStage,
    PhysFilter,
    PhysFusedPipeline,
    PhysHashAgg,
    PhysHashJoin,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)


def fuse_bundle(bundle: PlanBundle) -> PlanBundle:
    """Return a bundle with eligible chains fused (may share subtrees)."""
    spools = tuple(
        (cse_id, _fuse_finalized(body)) for cse_id, body in bundle.root_spools
    )
    queries = [
        QueryPlan(
            name=q.name,
            plan=_fuse_finalized(q.plan),
            subquery_plans={
                sid: _fuse_finalized(plan)
                for sid, plan in q.subquery_plans.items()
            },
            output_names=list(q.output_names),
        )
        for q in bundle.queries
    ]
    return PlanBundle(
        root_spools=spools, queries=queries, est_cost=bundle.est_cost
    )


def _fuse_finalized(plan: PhysicalPlan) -> PhysicalPlan:
    """Fuse below a finalized plan, keeping its Sort/SpoolDef/Project top."""
    if isinstance(plan, PhysSort):
        return PhysSort(
            child=_fuse_finalized(plan.child),
            sort_items=plan.sort_items,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSpoolDef):
        return PhysSpoolDef(
            spools=tuple(
                (cid, _fuse_finalized(body)) for cid, body in plan.spools
            ),
            child=_fuse_finalized(plan.child),
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysProject):
        # The finalizing projection stays; fuse the tree underneath it.
        return PhysProject(
            child=_fuse_interior(plan.child),
            outputs=plan.outputs,
            est_rows=plan.est_rows,
        )
    return _fuse_interior(plan)


def _fuse_interior(plan: PhysicalPlan) -> PhysicalPlan:
    """Fuse chains anywhere inside an operator tree."""
    fused = _try_fuse_chain(plan)
    if fused is not None:
        return fused
    if isinstance(plan, PhysHashJoin):
        return PhysHashJoin(
            left=_fuse_interior(plan.left),
            right=_fuse_interior(plan.right),
            keys=plan.keys,
            residual=plan.residual,
            outputs=plan.outputs,
            est_rows=plan.est_rows,
            join_type=plan.join_type,
        )
    if isinstance(plan, PhysHashAgg):
        return PhysHashAgg(
            child=_fuse_interior(plan.child),
            keys=plan.keys,
            computes=plan.computes,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysFilter):
        return PhysFilter(
            child=_fuse_interior(plan.child),
            conjuncts=plan.conjuncts,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysProject):
        return PhysProject(
            child=_fuse_interior(plan.child),
            outputs=plan.outputs,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSort):
        return PhysSort(
            child=_fuse_interior(plan.child),
            sort_items=plan.sort_items,
            est_rows=plan.est_rows,
        )
    if isinstance(plan, PhysSpoolDef):
        return PhysSpoolDef(
            spools=tuple(
                (cid, _fuse_finalized(body)) for cid, body in plan.spools
            ),
            child=_fuse_interior(plan.child),
            est_rows=plan.est_rows,
        )
    # Leaves (PhysScan without fusable wrapper, PhysIndexScan,
    # PhysSpoolRead) and anything unknown stay as-is.
    return plan


def _try_fuse_chain(plan: PhysicalPlan) -> Optional[PhysicalPlan]:
    """Collapse a maximal Filter/Project chain over a Scan/SpoolRead leaf.

    Returns None when ``plan`` does not head an eligible chain. A bare
    filtered scan fuses with zero stages (the streaming loop applies its
    pushed-down conjuncts morsel-wise); a bare conjunct-free scan or bare
    spool read gains nothing from streaming and stays unchanged.
    """
    stages: List[FusedStage] = []
    node = plan
    while True:
        if isinstance(node, PhysFilter):
            stages.append(
                FusedStage(
                    kind="filter",
                    exprs=node.conjuncts,
                    est_rows=node.est_rows,
                )
            )
            node = node.child
        elif isinstance(node, PhysProject):
            stages.append(
                FusedStage(
                    kind="project",
                    exprs=tuple(o.expr for o in node.outputs),
                    est_rows=node.est_rows,
                )
            )
            node = node.child
        elif isinstance(node, (PhysScan, PhysSpoolRead)):
            if not stages and not (
                isinstance(node, PhysScan) and node.conjuncts
            ):
                return None
            return PhysFusedPipeline(
                source=node,
                stages=tuple(reversed(stages)),
                est_rows=plan.est_rows,
            )
        else:
            return None
