"""Aggregate decomposition for pre-aggregation and CSE re-use.

Both the optimizer's eager group-by rule (the source of candidates like the
paper's E4, "preaggregation of the join of orders and lineitem") and CSE view
matching (re-aggregating a covering subexpression's partial aggregates to a
consumer's coarser grouping, §5.1) need the same algebra:

* split a final aggregate into a *partial* computed over a subset of tables
  (plus a group row count when needed), and
* a *combine* step that restores the final value after further joins.

The rules (no NULLs in this engine, so COUNT(x) ≡ COUNT(*)):

========== =========================== =================================
final      partial over subset S       combine above the join
========== =========================== =================================
SUM(x⊆S)   SUM(x)                      SUM(partial)
SUM(y⊄S)   COUNT(*) as cnt             SUM(y * cnt)
COUNT(*)   COUNT(*) as cnt             SUM(cnt)
MIN(x⊆S)   MIN(x)                      MIN(partial)
MIN(y⊄S)   —                           MIN(y)            (duplicates ok)
MAX        symmetric to MIN
AVG        rewritten by the binder into SUM/COUNT before reaching here
========== =========================== =================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..errors import OptimizerError
from ..expr.expressions import (
    AggExpr,
    AggFunc,
    Arithmetic,
    ArithmeticOp,
    Expr,
    TableRef,
)

#: The canonical row-count aggregate used as the partial-count column.
COUNT_STAR = AggExpr(AggFunc.COUNT, None)


@dataclass(frozen=True)
class AggCompute:
    """One aggregate computation performed by a physical aggregation.

    ``out`` is the expression key the result column carries in the output
    frame; ``func`` is the function actually executed; ``arg`` is the input
    expression (``None`` for COUNT(*)). For a plain final aggregation
    ``out == AggExpr(func, arg)``; for combine steps ``func``/``arg`` differ
    from ``out`` (e.g. ``out=sum(x), func=SUM, arg=<partial sum(x)>``).
    """

    out: Expr
    func: AggFunc
    arg: Optional[Expr]

    def __repr__(self) -> str:
        arg = "*" if self.arg is None else repr(self.arg)
        return f"{self.out!r}:={self.func.value}({arg})"


def direct_computes(aggs: Sequence[AggExpr]) -> Tuple[AggCompute, ...]:
    """Computes for a one-shot (non-decomposed) aggregation."""
    return tuple(AggCompute(out=a, func=a.func, arg=a.arg) for a in aggs)


def _arg_side(agg: AggExpr, subset: FrozenSet[TableRef]) -> Optional[bool]:
    """True if the aggregate's argument lies entirely inside ``subset``,
    False if entirely outside, None if mixed (not decomposable) or COUNT(*).
    """
    if agg.arg is None:
        return None
    tables = {c.table_ref for c in agg.arg.columns()}
    if not tables:
        # Constant argument; computable anywhere — treat as inside.
        return True
    if tables <= subset:
        return True
    if tables & subset:
        raise OptimizerError(
            f"aggregate {agg!r} mixes columns inside and outside the subset"
        )
    return False


def decomposable_over(aggs: Sequence[AggExpr], subset: FrozenSet[TableRef]) -> bool:
    """Whether all aggregates can be decomposed across a pre-aggregation of
    ``subset`` (every argument entirely inside or entirely outside)."""
    try:
        for agg in aggs:
            _arg_side(agg, subset)
    except OptimizerError:
        return False
    return True


def partial_computes(
    aggs: Sequence[AggExpr], subset: FrozenSet[TableRef]
) -> Tuple[AggCompute, ...]:
    """The partial aggregates a pre-aggregation of ``subset`` must compute."""
    partials: List[AggCompute] = []
    needs_count = False
    for agg in aggs:
        side = _arg_side(agg, subset)
        if side is None:
            # COUNT(*): final value is SUM of partial counts.
            needs_count = True
        elif side:
            func = agg.func
            partials.append(AggCompute(out=agg, func=func, arg=agg.arg))
        else:
            if agg.func in (AggFunc.SUM, AggFunc.COUNT):
                needs_count = True
            # MIN/MAX of an outside column need nothing from the subset.
    if needs_count and not any(p.out == COUNT_STAR for p in partials):
        partials.append(AggCompute(out=COUNT_STAR, func=AggFunc.COUNT, arg=None))
    # Deduplicate identical aggregates (e.g. the same SUM in two consumers).
    unique: List[AggCompute] = []
    for partial in partials:
        if partial not in unique:
            unique.append(partial)
    return tuple(unique)


def combine_computes(
    aggs: Sequence[AggExpr], subset: FrozenSet[TableRef]
) -> Tuple[AggCompute, ...]:
    """The combine-step computes for a final aggregation whose input contains
    a pre-aggregation of ``subset``.

    Input frame keys: partial aggregates are keyed by their ``out``
    expressions (so ``sum(x)`` partial appears under key ``sum(x)``), the
    count under :data:`COUNT_STAR`, and non-aggregated columns under their
    column references.
    """
    computes: List[AggCompute] = []
    for agg in aggs:
        side = _arg_side(agg, subset)
        if side is None:
            computes.append(AggCompute(out=agg, func=AggFunc.SUM, arg=COUNT_STAR))
        elif side:
            if agg.func is AggFunc.SUM:
                computes.append(AggCompute(out=agg, func=AggFunc.SUM, arg=agg))
            elif agg.func is AggFunc.COUNT:
                computes.append(AggCompute(out=agg, func=AggFunc.SUM, arg=agg))
            elif agg.func in (AggFunc.MIN, AggFunc.MAX):
                computes.append(AggCompute(out=agg, func=agg.func, arg=agg))
            else:
                raise OptimizerError(f"cannot combine aggregate {agg!r}")
        else:
            if agg.func is AggFunc.SUM:
                assert agg.arg is not None
                scaled = Arithmetic(ArithmeticOp.MUL, agg.arg, COUNT_STAR)
                computes.append(AggCompute(out=agg, func=AggFunc.SUM, arg=scaled))
            elif agg.func is AggFunc.COUNT:
                computes.append(
                    AggCompute(out=agg, func=AggFunc.SUM, arg=COUNT_STAR)
                )
            elif agg.func in (AggFunc.MIN, AggFunc.MAX):
                computes.append(AggCompute(out=agg, func=agg.func, arg=agg.arg))
            else:
                raise OptimizerError(f"cannot combine aggregate {agg!r}")
    return tuple(computes)


def reaggregate_computes(aggs: Sequence[AggExpr]) -> Tuple[AggCompute, ...]:
    """Computes that re-aggregate *already partial* aggregates to a coarser
    grouping — used when a consumer reads a CSE whose group-by is finer than
    the consumer's (§5.1 compensation)."""
    computes: List[AggCompute] = []
    for agg in aggs:
        if agg.func in (AggFunc.SUM, AggFunc.COUNT):
            computes.append(AggCompute(out=agg, func=AggFunc.SUM, arg=agg))
        elif agg.func in (AggFunc.MIN, AggFunc.MAX):
            computes.append(AggCompute(out=agg, func=agg.func, arg=agg))
        else:
            raise OptimizerError(f"cannot re-aggregate {agg!r}")
    return tuple(computes)
