"""The optimizer driver.

Implements the three-step architecture of the paper's Figure 1 on top of the
memo (:mod:`repro.optimizer.memo`):

* **Normal optimization** — exhaustive cost-based search per group, recording
  per-group cost bounds. Table signatures are registered with the CSE
  manager as groups are created (Step 1).
* **Candidate generation** (Step 2) — sharable signature buckets →
  join-compatible sets → Algorithm 1 with Heuristics 1-4
  (:mod:`repro.cse.candidates`).
* **CSE optimization** (Step 3) — re-optimization with candidate subsets
  enabled (§5.3, Propositions 5.4-5.6). Spool costing follows §5.2: each
  consumer substitution is charged the usage cost ``C_R`` (plus
  compensation); the *initial* cost ``C_E + C_W`` is charged once, at the
  candidate's least-common-ancestor group, where plans with a single
  consumer are discarded. The bookkeeping uses per-group *usage profiles*:
  the best plan is kept per (candidate → uses ∈ {0, 1, ≥2}) vector, and the
  candidate's dimension is collapsed at its LCA. Candidates consumed inside
  other candidates' bodies (stacked CSEs, §5.5) settle at the batch root.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cse.candidates import CandidateCse, CandidateIdAllocator, generate_candidates
from ..cse.compatibility import compatibility_groups
from ..cse.enumeration import SubsetEnumerator
from ..cse.heuristics import PruneTrace, heuristic1_keep, heuristic4_filter
from ..cse.manager import CseManager
from ..cse.matching import ConsumerSpec, build_consumer_specs, try_match_consumer
from ..errors import OptimizerError, OptimizerTimeoutError
from ..expr.expressions import ColumnRef, Comparison, ComparisonOp, Expr, Literal
from ..logical.blocks import BoundBatch, BoundQuery, JoinExtension
from ..logical.simplify import simplify_query
from ..obs import (
    NULL_JOURNAL,
    NULL_REGISTRY,
    NULL_TRACER,
    DecisionJournal,
    MetricsRegistry,
    Tracer,
    use_journal,
    use_registry,
)
from ..storage.database import Database
from .cardinality import CardinalityEstimator
from .cost import CostModel
from .greedy import greedy_select, select_strategy
from .memo import (
    AggImplExpr,
    Group,
    JoinExpr,
    Memo,
    RootExpr,
    ScanExpr,
)
from .options import OptimizerOptions
from .physical import (
    PhysFilter,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)

# A usage profile: sorted (cse_id, count) pairs with count in {1, 2};
# absent means 0 and 2 means "two or more".
Profile = Tuple[Tuple[str, int], ...]
EMPTY_PROFILE: Profile = ()


def _profile_get(profile: Profile, cse_id: str) -> int:
    for cid, count in profile:
        if cid == cse_id:
            return count
    return 0


def _profile_without(profile: Profile, cse_id: str) -> Profile:
    return tuple((cid, n) for cid, n in profile if cid != cse_id)


def _profile_add(profile: Profile, cse_id: str, count: int = 1) -> Profile:
    merged = dict(profile)
    merged[cse_id] = min(2, merged.get(cse_id, 0) + count)
    return tuple(sorted(merged.items()))


def _profile_merge(left: Profile, right: Profile) -> Profile:
    if not left:
        return right
    if not right:
        return left
    merged = dict(left)
    for cid, count in right:
        merged[cid] = min(2, merged.get(cid, 0) + count)
    return tuple(sorted(merged.items()))


def _ext_join_rows(kind: str, core_rows: float) -> float:
    """Cardinality of an extension join. The core side is preserved:
    left_outer emits every core row at least once, semi/anti partition the
    core rows (estimated half each)."""
    if kind == "left_outer":
        return max(core_rows, 1.0)
    return max(core_rows * 0.5, 1.0)


def _profile_support(profile: Profile) -> FrozenSet[str]:
    return frozenset(cid for cid, _ in profile)


@dataclass
class PlanChoice:
    """One group's best plan for one usage profile, with its cost."""

    cost: float
    plan: PhysicalPlan


PlanSet = Dict[Profile, PlanChoice]


@dataclass
class QueryPlan:
    """One finalized query plan plus the plans of its scalar subqueries."""

    name: str
    plan: PhysicalPlan
    subquery_plans: Dict[str, PhysicalPlan] = field(default_factory=dict)
    output_names: List[str] = field(default_factory=list)


@dataclass
class PlanBundle:
    """The final batch plan: shared spools (dependency order) + queries."""

    root_spools: Tuple[Tuple[str, PhysicalPlan], ...]
    queries: List[QueryPlan]
    est_cost: float

    def describe(self) -> str:
        """Human-readable text of all plans, spools first."""
        lines: List[str] = []
        for cse_id, body in self.root_spools:
            lines.append(f"Spool {cse_id}:")
            lines.append(body.describe(1))
        for query in self.queries:
            for sid, plan in query.subquery_plans.items():
                lines.append(f"{query.name} subquery {sid}:")
                lines.append(plan.describe(1))
            lines.append(f"{query.name}:")
            lines.append(query.plan.describe(1))
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable short digest of the whole bundle's shape — what the
        history-reuse tests and benchmarks compare to assert that §5.4
        reuse changed the work done, not the plans chosen."""
        text = self.describe().encode("utf-8")
        return hashlib.sha256(text).hexdigest()[:16]

    def used_cses(self) -> List[str]:
        """CSE ids actually materialized by this bundle, in order."""
        used: List[str] = [cid for cid, _ in self.root_spools]
        for query in self.queries:
            plans = [query.plan] + list(query.subquery_plans.values())
            for plan in plans:
                for node in plan.walk():
                    if isinstance(node, PhysSpoolDef):
                        used.extend(cid for cid, _ in node.spools)
        seen: Set[str] = set()
        ordered: List[str] = []
        for cid in used:
            if cid not in seen:
                seen.add(cid)
                ordered.append(cid)
        return ordered


@dataclass
class OptimizerStats:
    """Everything the paper's experiment tables report."""

    optimization_time: float = 0.0
    normal_time: float = 0.0
    cse_time: float = 0.0
    #: wall time inside the Step-3 enumeration loop proper (a subset of
    #: ``cse_time``, which also covers Step-2 candidate generation).
    step3_time: float = 0.0
    est_cost_no_cse: float = 0.0
    est_cost_final: float = 0.0
    candidates_generated: int = 0
    candidates_before_pruning: int = 0
    cse_optimizations: int = 0
    sharable_buckets: int = 0
    signature_registrations: int = 0
    memo_groups: int = 0
    single_consumer_discards: int = 0
    #: §5.4 optimization-history reuse, totalled over Step-3 passes:
    #: plan-set cache hits / computes, distinct groups whose result was
    #: created by an *earlier* pass, and query tops folded from a cached
    #: assembly prefix.
    history_hits: int = 0
    history_misses: int = 0
    history_groups_reused: int = 0
    history_tops_folded: int = 0
    #: which Step-3 strategy ran: ``"paper"`` (subset enumeration),
    #: ``"greedy"`` (Roy et al. benefit-ordered selection), or ``""`` when
    #: Step 3 never ran (no candidates / CSE disabled).
    strategy: str = ""
    #: why that strategy was chosen (mirrors the journal's ``strategy``
    #: event, so EXPLAIN surfaces carry the same sentence).
    strategy_reason: str = ""
    used_cses: List[str] = field(default_factory=list)
    candidate_ids: List[str] = field(default_factory=list)
    prune_trace: Optional[PruneTrace] = None

    def pruned_per_heuristic(self) -> Dict[str, int]:
        """How many candidates/consumers each heuristic removed."""
        trace = self.prune_trace
        if trace is None:
            return {"H1": 0, "H2": 0, "H3": 0, "H4": 0}
        return {
            "H1": len(trace.heuristic1),
            "H2": len(trace.heuristic2),
            "H3": len(trace.heuristic3),
            "H4": len(trace.heuristic4),
        }

    def counter_summary(self) -> Dict[str, float]:
        """The stats as flat ``optimizer.*`` counters (snapshot naming)."""
        summary: Dict[str, float] = {
            "optimizer.memo_groups": self.memo_groups,
            "optimizer.signature_registrations": self.signature_registrations,
            "optimizer.sharable_buckets": self.sharable_buckets,
            "optimizer.candidates_before_pruning": self.candidates_before_pruning,
            "optimizer.candidates_generated": self.candidates_generated,
            "optimizer.cse_passes": self.cse_optimizations,
            "optimizer.single_consumer_discards": self.single_consumer_discards,
            "optimizer.cses_kept": len(self.used_cses),
            "optimizer.history.hits": self.history_hits,
            "optimizer.history.misses": self.history_misses,
            "optimizer.history.groups_reused": self.history_groups_reused,
            "optimizer.history.tops_folded": self.history_tops_folded,
        }
        for key, count in self.pruned_per_heuristic().items():
            summary[f"optimizer.pruned_{key.lower()}"] = count
        return summary


@dataclass
class OptimizationResult:
    """What :meth:`Optimizer.optimize` returns: the chosen bundle, stats,
    the candidate CSEs considered, and the no-CSE baseline bundle."""

    bundle: PlanBundle
    stats: OptimizerStats
    candidates: List[CandidateCse] = field(default_factory=list)
    base_bundle: Optional[PlanBundle] = None
    #: The decision journal active during the run (NULL_JOURNAL when the
    #: caller did not ask for one) — the source for ``explain --why``.
    journal: DecisionJournal = NULL_JOURNAL

    @property
    def est_cost(self) -> float:
        """Estimated cost of the chosen bundle."""
        return self.bundle.est_cost


@dataclass
class _PassContext:
    """State for one optimization pass with a fixed enabled candidate set."""

    enabled: Tuple[CandidateCse, ...]
    #: consumer group gid -> [(candidate, spec)] substitutions available.
    substitutions: Dict[int, List[Tuple[CandidateCse, ConsumerSpec]]]
    #: gid -> candidates whose LCA is that group (and are not root-settled).
    closings: Dict[int, List[CandidateCse]]
    #: candidates settled at the batch root (cross-query or stacked).
    root_cses: Tuple[CandidateCse, ...]
    #: ids of the enabled candidates, precomputed once per pass — the
    #: history cache intersects it with a group footprint per group visit.
    enabled_ids: FrozenSet[str] = frozenset()


class Optimizer:
    """Cost-based optimizer with similar-subexpression exploitation."""

    def __init__(
        self,
        database: Database,
        options: Optional[OptimizerOptions] = None,
        cost_model: Optional[CostModel] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        journal: Optional[DecisionJournal] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = cost_model or CostModel()
        self.estimator = CardinalityEstimator(database)
        self.registry = registry or NULL_REGISTRY
        self.tracer = tracer or NULL_TRACER
        # `is not None`: an empty journal is falsy (it has a length).
        self.journal = journal if journal is not None else NULL_JOURNAL
        #: absolute :func:`time.monotonic` deadline for this optimization,
        #: or None. Checked at phase boundaries (never mid-assembly): expiry
        #: raises :class:`~repro.errors.OptimizerTimeoutError`, which the
        #: session treats as "re-optimize without CSEs" — the paper's
        #: always-valid no-sharing baseline.
        self.deadline = deadline
        self._stats = OptimizerStats()

    def _check_deadline(self) -> None:
        """Raise :class:`OptimizerTimeoutError` past the deadline."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise OptimizerTimeoutError("optimizer deadline exceeded")

    # -- §5.4 per-pass history bookkeeping ------------------------------

    def _begin_pass(self, index: int) -> None:
        """Reset the per-pass §5.4 reuse counters (index 0 = base pass)."""
        self._pass_index = index
        self._pass_hits = 0
        self._pass_misses = 0
        self._pass_reused_gids: Set[int] = set()
        self._pass_fold_hits = 0

    def _end_pass(self, subset: FrozenSet[str], seconds: float) -> None:
        """Publish one Step-3 pass's reuse accounting: run stats, the
        per-pass latency histogram, and a journal ``history`` event."""
        stats = self._stats
        hits = self._pass_hits
        misses = self._pass_misses
        reused = len(self._pass_reused_gids)
        stats.history_hits += hits
        stats.history_misses += misses
        stats.history_groups_reused += reused
        stats.history_tops_folded += self._pass_fold_hits
        self.registry.observe("optimizer.history.pass_seconds", seconds)
        total = hits + misses
        self.journal.event(
            "history",
            pass_index=self._pass_index,
            subset=sorted(subset),
            groups_reused=reused,
            groups_recomputed=misses,
            planset_hits=hits,
            tops_folded=self._pass_fold_hits,
            reuse=round(hits / total, 4) if total else 0.0,
            seconds=round(seconds, 6),
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize(self, batch: BoundBatch) -> OptimizationResult:
        """Run the full three-step optimization of Figure 1 on a batch."""
        with use_registry(self.registry), use_journal(self.journal):
            with self.tracer.span("optimize", queries=len(batch.queries)):
                result = self._optimize(batch)
        if self.options.enable_fusion:
            from .fusion import fuse_bundle  # local: avoids import cycle

            shared = result.base_bundle is result.bundle
            result.bundle = fuse_bundle(result.bundle)
            if shared:
                result.base_bundle = result.bundle
            elif result.base_bundle is not None:
                result.base_bundle = fuse_bundle(result.base_bundle)
        result.journal = self.journal
        self._publish_stats(result.stats)
        return result

    def _publish_stats(self, stats: OptimizerStats) -> None:
        """Mirror the run's stats into the registry as optimizer.* series."""
        registry = self.registry
        if not registry.enabled:
            return
        for name, value in stats.counter_summary().items():
            registry.counter(name, value)
        registry.counter("optimizer.batches")
        registry.timer_add("optimizer.normal", stats.normal_time)
        registry.timer_add("optimizer.cse", stats.cse_time)
        registry.timer_add("optimizer.step3", stats.step3_time)
        registry.timer_add("optimizer.total", stats.optimization_time)
        # Phase latency distributions (p50/p95/p99 via the exporter). The
        # per-pass Step-3 histogram (optimizer.history.pass_seconds) is
        # observed live inside the enumeration loop.
        registry.observe("optimizer.normal_seconds", stats.normal_time)
        registry.observe("optimizer.cse_seconds", stats.cse_time)
        registry.observe("optimizer.total_seconds", stats.optimization_time)

    def _optimize(self, batch: BoundBatch) -> OptimizationResult:
        start = time.perf_counter()
        stats = OptimizerStats()
        self._stats = stats
        #: per-candidate tally of §5.1 single-consumer discards, feeding the
        #: journal's ``single_consumer`` events and rejection verdicts.
        self._sc_discards: Dict[str, int] = {}

        with self.tracer.span("normal_optimization"):
            memo = Memo(self.estimator, self.options)
            self._memo = memo
            self._plan_cache: Dict[Tuple[int, FrozenSet[str]], PlanSet] = {}
            self._consumer_gids: Dict[str, Set[int]] = {}
            # --- §5.4 optimization-history state --------------------------
            #: per-gid candidate footprints (None until Step 2 computes them;
            #: the base pass needs no footprints — nothing is enabled).
            self._footprints: Optional[List[FrozenSet[str]]] = None
            #: which pass created each plan-cache entry (0 = base pass).
            self._cache_pass: Dict[Tuple[int, FrozenSet[str]], int] = {}
            #: (top index, relevant ids) -> finalized per-top plan set.
            self._finalize_cache: Dict[Tuple[int, FrozenSet[str]], Dict] = {}
            #: assembly-prefix key -> folded combined plan set.
            self._fold_cache: Dict[Tuple, Dict] = {}
            self._pass_index = 0
            self._begin_pass(0)
            self._tops: List[Tuple[str, object, Group]] = []
            #: per query name: (extension, its top group) pairs for the
            #: extensions that survived logical simplification.
            self._ext_tops: Dict[str, List[Tuple[JoinExtension, Group]]] = {}

            # Logical simplification: fold provably-reducible outer joins
            # into their core blocks (the equivalence checker's verdicts go
            # to the decision journal either way).
            queries: List[BoundQuery] = []
            for query in batch.queries:
                simplified, verdicts = simplify_query(query)
                for ext_id, verdict in verdicts:
                    self.journal.event(
                        "equiv",
                        query=query.name,
                        extension=ext_id,
                        outcome=verdict.outcome,
                        reason=verdict.reason,
                    )
                queries.append(simplified)

            root_children: List[Group] = []
            for query in queries:
                top = memo.build_block(query.block, part_id=query.name)
                self._tops.append(("query", query, top))
                root_children.append(top)
                ext_entries: List[Tuple[JoinExtension, Group]] = []
                for ext in query.extensions:
                    ext_top = memo.build_block(
                        ext.block, part_id=f"{query.name}:{ext.ext_id}"
                    )
                    ext_entries.append((ext, ext_top))
                    root_children.append(ext_top)
                if ext_entries:
                    self._ext_tops[query.name] = ext_entries
                for sid, sub_block in sorted(query.subqueries.items()):
                    sub_top = memo.build_block(
                        sub_block, part_id=f"{query.name}:{sid}"
                    )
                    self._tops.append(("subquery", (query, sid), sub_top))
                    root_children.append(sub_top)
            root = memo.build_root(root_children)
            self._root = root

            manager = CseManager()
            manager.register_all(memo.signature_log)
            self._manager = manager
            stats.signature_registrations = manager.registrations

            # --- normal optimization --------------------------------------
            base_ctx = _PassContext((), {}, {}, ())
            base_cost, base_bundle = self._assemble(base_ctx)
            self._record_bounds()
            stats.est_cost_no_cse = base_cost
            stats.memo_groups = len(memo.groups)
            stats.normal_time = time.perf_counter() - start

        base_result = OptimizationResult(bundle=base_bundle, stats=stats)
        base_result.base_bundle = base_bundle

        def finish_base() -> OptimizationResult:
            stats.est_cost_final = base_cost
            stats.optimization_time = time.perf_counter() - start
            return base_result

        if not self.options.enable_cse:
            return finish_base()
        if base_cost <= self.options.cse_cost_threshold:
            self.tracer.event(
                "cse_skipped", reason="below_cost_threshold", cost=base_cost
            )
            return finish_base()
        self._check_deadline()

        # --- Step 2: candidate generation -----------------------------------
        with self.tracer.span("candidate_generation"):
            buckets = manager.sharable_buckets()
            stats.sharable_buckets = len(buckets)
            if not buckets:
                stats.memo_groups = len(memo.groups)
                return finish_base()

            trace = PruneTrace()
            stats.prune_trace = trace
            candidates = self._generate_candidates(
                buckets, base_cost, trace, stats
            )
            stats.memo_groups = len(memo.groups)
            if not candidates:
                return finish_base()
            stats.candidates_generated = len(candidates)
            stats.candidate_ids = [c.cse_id for c in candidates]
            self.tracer.event(
                "candidates", ids=stats.candidate_ids,
                before_pruning=stats.candidates_before_pruning,
            )

        # --- Step 3: optimization with candidate subsets ----------------------
        strategy, reason = select_strategy(
            self.options.cse_strategy,
            len(candidates),
            self.options.greedy_threshold,
        )
        stats.strategy = strategy
        stats.strategy_reason = reason
        self.journal.event(
            "strategy",
            strategy=strategy,
            reason=reason,
            candidates=len(candidates),
        )
        self.tracer.event("cse_strategy", strategy=strategy, reason=reason)
        self.registry.counter(f"strategy.{strategy}.runs")
        with self.tracer.span("cse_optimization", strategy=strategy):
            step3_start = time.perf_counter()
            if strategy == "greedy":
                best_cost, best_bundle = self._step3_greedy(
                    candidates, base_cost, base_bundle
                )
            else:
                best_cost, best_bundle = self._step3_paper(
                    candidates, memo, base_cost, base_bundle
                )
            stats.step3_time = time.perf_counter() - step3_start

        stats.est_cost_final = best_cost
        stats.used_cses = best_bundle.used_cses()
        stats.cse_time = time.perf_counter() - start - stats.normal_time
        stats.optimization_time = time.perf_counter() - start
        self._journal_verdicts(candidates, stats)
        return OptimizationResult(
            bundle=best_bundle,
            stats=stats,
            candidates=candidates,
            base_bundle=base_bundle,
        )

    def _journal_verdicts(
        self, candidates: List[CandidateCse], stats: OptimizerStats
    ) -> None:
        """Emit the per-candidate §5.1 discard tallies and final verdicts.

        Candidates pruned before costing (Heuristic 4, candidate cap) got
        their verdicts inside :meth:`_generate_candidates`; this covers
        everything that survived into Step 3 enumeration."""
        journal = self.journal
        if not journal.enabled:
            return
        used = set(stats.used_cses)
        equiv_tallies: Dict[str, Dict[str, int]] = {}
        for entry in journal.events("equiv"):
            cid = entry.get("cse_id")
            if cid is None:
                continue
            tally = equiv_tallies.setdefault(cid, {})
            outcome = entry.get("outcome", "?")
            tally[outcome] = tally.get(outcome, 0) + 1
        for candidate in candidates:
            cid = candidate.cse_id
            discards = self._sc_discards.get(cid, 0)
            if discards:
                journal.event(
                    "single_consumer", cse_id=cid, discards=discards
                )
            # The equivalence checker's outcomes over this candidate's
            # attempted consumer matches, e.g. "proved=2, gave_up=1" —
            # lets `explain --why` say a match was *refused*, not merely
            # unprofitable.
            equiv = ", ".join(
                f"{outcome}={count}"
                for outcome, count in sorted(equiv_tallies.get(cid, {}).items())
            )
            if cid in used:
                journal.event(
                    "verdict",
                    cse_id=cid,
                    kept=True,
                    reason="materialized in best plan",
                    equiv=equiv,
                )
            elif discards:
                journal.event(
                    "verdict",
                    cse_id=cid,
                    kept=False,
                    reason="single-consumer LCA discard (§5.1)",
                    equiv=equiv,
                )
            else:
                journal.event(
                    "verdict",
                    cse_id=cid,
                    kept=False,
                    reason=(
                        "sharing never beat recomputation in any "
                        "enumerated subset"
                    ),
                    equiv=equiv,
                )

    # ------------------------------------------------------------------
    # Step-3 strategies
    # ------------------------------------------------------------------

    def _run_pass(
        self, candidates: List[CandidateCse], subset: FrozenSet[str]
    ) -> Tuple[float, PlanBundle, FrozenSet[str]]:
        """One Step-3 optimization pass with ``subset`` enabled.

        Shared by both strategies: builds the pass context, keeps the
        §5.4 history accounting honest (or wipes the caches when reuse is
        off), and reports the pass to tracer and journal."""
        stats = self._stats
        enabled = tuple(c for c in candidates if c.cse_id in subset)
        ctx = self._build_pass_context(enabled)
        stats.cse_optimizations += 1
        self._begin_pass(stats.cse_optimizations)
        if not self.options.reuse_history:
            # §5.4 off: forget all history so this pass re-optimizes
            # every group from scratch — the naive per-subset loop
            # the paper improves on.
            self._plan_cache.clear()
            self._cache_pass.clear()
            self._finalize_cache.clear()
            self._fold_cache.clear()
        pass_start = time.perf_counter()
        with self.tracer.span("cse_pass", subset=sorted(subset)) as span:
            cost, bundle = self._assemble(ctx)
            used = frozenset(bundle.used_cses())
            if span is not None:
                span.attrs["cost"] = round(cost, 2)
                span.attrs["used"] = sorted(used)
        self._end_pass(frozenset(subset), time.perf_counter() - pass_start)
        return cost, bundle, used

    def _step3_paper(
        self,
        candidates: List[CandidateCse],
        memo: Memo,
        base_cost: float,
        base_bundle: PlanBundle,
    ) -> Tuple[float, PlanBundle]:
        """The paper's §5.3 subset enumeration (Props 5.4–5.6 pruning)."""
        enumerator = SubsetEnumerator(
            candidates, memo, self.options.max_cse_optimizations
        )
        best_cost = base_cost
        best_bundle = base_bundle
        while True:
            self._check_deadline()
            subset = enumerator.next_subset()
            if subset is None:
                break
            cost, bundle, used = self._run_pass(candidates, subset)
            enumerator.report(subset, used)
            if cost < best_cost:
                best_cost = cost
                best_bundle = bundle
        return best_cost, best_bundle

    def _step3_greedy(
        self,
        candidates: List[CandidateCse],
        base_cost: float,
        base_bundle: PlanBundle,
    ) -> Tuple[float, PlanBundle]:
        """Roy et al.'s greedy benefit-ordered selection (cs/9910021)."""
        outcome = greedy_select(
            candidates,
            base_cost,
            base_bundle,
            lambda subset: self._run_pass(candidates, subset),
            max_evaluations=self.options.max_cse_optimizations,
            journal=self.journal,
            registry=self.registry,
            check_deadline=self._check_deadline,
        )
        return outcome.cost, outcome.bundle

    # ------------------------------------------------------------------
    # Candidate generation (Step 2)
    # ------------------------------------------------------------------

    def _generate_candidates(
        self,
        buckets,
        base_cost: float,
        trace: PruneTrace,
        stats: OptimizerStats,
    ) -> List[CandidateCse]:
        memo = self._memo
        options = self.options
        max_instance = max(
            (t.instance for g in memo.groups for t in g.tables), default=0
        )
        counter = itertools.count(max_instance + 1)

        def instance_allocator() -> int:
            return next(counter)

        id_allocator = CandidateIdAllocator()
        journal = self.journal
        definitions = []
        for signature, groups in buckets:
            self._check_deadline()
            if signature.table_count < options.min_cse_tables:
                continue
            if options.enable_heuristics:
                keep = heuristic1_keep(groups, base_cost, options.alpha)
                if journal.enabled:
                    journal.event(
                        "h1",
                        signature=repr(signature),
                        lower_bound_sum=sum(
                            g.lower_bound or 0.0 for g in groups
                        ),
                        threshold=options.alpha * base_cost,
                        alpha=options.alpha,
                        passed=keep,
                    )
                if not keep:
                    trace.heuristic1.append(f"bucket:{signature!r}")
                    continue
            for compatible_set in compatibility_groups(groups, memo.block_infos):
                definitions.extend(
                    generate_candidates(
                        compatible_set,
                        memo.block_infos,
                        self.estimator,
                        self.cost_model,
                        base_cost,
                        options.alpha,
                        options.enable_heuristics,
                        instance_allocator,
                        id_allocator,
                        trace,
                    )
                )
        stats.candidates_before_pruning = len(definitions)
        if options.enable_heuristics:
            before_ids = {d.cse_id for d in definitions}
            definitions = heuristic4_filter(definitions, memo, options.beta, trace)
            for cid in sorted(before_ids - {d.cse_id for d in definitions}):
                journal.event(
                    "verdict",
                    cse_id=cid,
                    kept=False,
                    reason="H4 containment prune",
                )
        if len(definitions) > options.max_candidates:
            definitions.sort(
                key=lambda d: -sum(
                    g.lower_bound or 0.0 for g in d.consumer_groups
                )
            )
            for definition in definitions[options.max_candidates:]:
                journal.event(
                    "verdict",
                    cse_id=definition.cse_id,
                    kept=False,
                    reason="max_candidates cap",
                )
            definitions = definitions[: options.max_candidates]

        # Build candidate bodies into the memo and optimize them standalone.
        candidates: List[CandidateCse] = []
        base_ctx = _PassContext((), {}, {}, ())
        for definition in definitions:
            memo.build_block(definition.block, part_id=f"cse:{definition.cse_id}")
            memo.invalidate_dag_cache()
            body_top = memo.block_tops[definition.block.name]
            body_set = self._optimize_group(body_top, base_ctx)
            body_choice = body_set[EMPTY_PROFILE]
            project_cost = self.cost_model.project(
                body_top.est_rows, len(definition.outputs)
            )
            candidate = CandidateCse(
                definition=definition,
                body_cost=body_choice.cost + project_cost,
                write_cost=self.cost_model.spool_write(
                    definition.est_rows, definition.row_width
                ),
                read_cost=self.cost_model.spool_read(
                    definition.est_rows, definition.row_width
                ),
                body_top_gid=body_top.gid,
            )
            candidates.append(candidate)

        self._candidates_by_id = {c.cse_id: c for c in candidates}
        # Consumer specs (query-side), then stacked consumers (§5.5).
        self._specs: Dict[str, List[ConsumerSpec]] = {}
        self._body_specs: Dict[str, List[ConsumerSpec]] = {}
        for candidate in candidates:
            self._specs[candidate.cse_id] = build_consumer_specs(
                candidate.definition, memo.block_infos
            )
            self._body_specs[candidate.cse_id] = []
        if self.options.enable_stacked:
            self._find_stacked_consumers(candidates)

        # LCA per candidate (Definition 5.1; dynamic narrowing per §5.2).
        memo.invalidate_dag_cache()
        for candidate in candidates:
            specs = self._specs[candidate.cse_id]
            gids = [spec.group.gid for spec in specs]
            self._consumer_gids[candidate.cse_id] = set(gids) | {
                spec.group.gid for spec in self._body_specs[candidate.cse_id]
            }
            if candidate.lifted_to_root or not gids:
                candidate.lca_gid = self._root.gid
            elif self.options.dynamic_lca:
                candidate.lca_gid = memo.least_common_ancestor(gids).gid
            else:
                all_gids = list(candidate.definition.consumer_gids)
                candidate.lca_gid = memo.least_common_ancestor(all_gids).gid
            journal.event(
                "lca",
                cse_id=candidate.cse_id,
                body_cost=candidate.body_cost,
                write_cost=candidate.write_cost,
                read_cost=candidate.read_cost,
                lca_gid=candidate.lca_gid,
                lifted_to_root=(
                    candidate.lifted_to_root
                    or candidate.lca_gid == self._root.gid
                ),
            )
        # §5.4: per-group candidate footprints — for each memo group, the
        # candidate ids whose substitutes can appear anywhere in its
        # subtree. Every Step-3 cache key derives from footprint ∩ enabled.
        for cid, gids in self._consumer_gids.items():
            self._manager.record_consumers(cid, gids)
        self._footprints = memo.candidate_footprints(
            self._manager.consumer_map()
        )
        return candidates

    def _find_stacked_consumers(self, candidates: List[CandidateCse]) -> None:
        """Let candidates be consumed inside other candidates' bodies.

        Restricted to strictly narrower candidates consuming inside wider
        ones, which keeps the stacking relation acyclic (DESIGN.md)."""
        memo = self._memo
        for inner in candidates:
            for outer in candidates:
                if inner is outer:
                    continue
                if not outer.signature_wider_than(inner):
                    continue
                body_name = outer.definition.block.name
                info = memo.block_infos.get(body_name)
                if info is None:
                    continue
                for group in memo.groups:
                    if group.block is None or group.block.name != body_name:
                        continue
                    if group.signature != inner.definition.signature:
                        continue
                    spec = try_match_consumer(inner.definition, group, info)
                    if spec is not None:
                        self._body_specs[inner.cse_id].append(spec)
                        inner.lifted_to_root = True

    # ------------------------------------------------------------------
    # Pass setup
    # ------------------------------------------------------------------

    def _build_pass_context(self, enabled: Tuple[CandidateCse, ...]) -> _PassContext:
        substitutions: Dict[int, List[Tuple[CandidateCse, ConsumerSpec]]] = {}
        closings: Dict[int, List[CandidateCse]] = {}
        root_cses: List[CandidateCse] = []
        enabled_ids = {c.cse_id for c in enabled}
        for candidate in enabled:
            specs = list(self._specs[candidate.cse_id])
            for spec in specs:
                substitutions.setdefault(spec.group.gid, []).append(
                    (candidate, spec)
                )
            for spec in self._body_specs[candidate.cse_id]:
                substitutions.setdefault(spec.group.gid, []).append(
                    (candidate, spec)
                )
            if candidate.lca_gid == self._root.gid or candidate.lifted_to_root:
                root_cses.append(candidate)
            else:
                closings.setdefault(candidate.lca_gid, []).append(candidate)
                # The memo is a DAG: some plan paths from the consumers to
                # the root may bypass the LCA group (e.g. via alternative
                # pre-aggregation joins). Closing again at the owning
                # block's top group — a dominator of every such path — is a
                # no-op for plans already settled at the LCA and guarantees
                # the dimension never leaks to the root.
                lca_group = self._memo.groups[candidate.lca_gid]
                block = lca_group.block
                if block is not None:
                    top = self._memo.block_tops.get(block.name)
                    if top is not None and top.gid != candidate.lca_gid:
                        closings.setdefault(top.gid, []).append(candidate)
        return _PassContext(
            enabled=tuple(enabled),
            substitutions=substitutions,
            closings=closings,
            root_cses=tuple(root_cses),
            enabled_ids=frozenset(enabled_ids),
        )

    # ------------------------------------------------------------------
    # Group optimization (the profile DP)
    # ------------------------------------------------------------------

    def _relevant_ids(self, group: Group, ctx: _PassContext) -> FrozenSet[str]:
        """The enabled candidate ids that can affect ``group``'s plan set:
        the group's §5.4 candidate footprint ∩ the pass's enabled set. Two
        passes agreeing on this set get identical plan sets for the group,
        which is what makes the history cache sound."""
        if not ctx.enabled:
            return frozenset()
        footprints = self._footprints
        if footprints is not None and group.gid < len(footprints):
            return footprints[group.gid] & ctx.enabled_ids
        return self._relevant_ids_slow(group, ctx)

    def _relevant_ids_slow(
        self, group: Group, ctx: _PassContext
    ) -> FrozenSet[str]:
        """Footprint-free fallback (and the cross-check oracle the tests
        use): intersect each candidate's consumer gids with the group's
        descendant set, recomputed per call."""
        covered = self._memo.descendants(group) | {group.gid}
        relevant = set()
        for candidate in ctx.enabled:
            if self._consumer_gids.get(candidate.cse_id, set()) & covered:
                relevant.add(candidate.cse_id)
        return frozenset(relevant)

    def _optimize_group(self, group: Group, ctx: _PassContext) -> PlanSet:
        relevant = self._relevant_ids(group, ctx)
        cache_key = (group.gid, relevant)
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            self._pass_hits += 1
            if self._cache_pass.get(cache_key, 0) < self._pass_index:
                self._pass_reused_gids.add(group.gid)
            return cached
        self._pass_misses += 1
        # Reused paths return above without this check, so it must sit on
        # the compute path to keep the governor's deadline live per group.
        self._check_deadline()

        plans: PlanSet = {}

        def offer(profile: Profile, cost: float, plan: PhysicalPlan) -> None:
            existing = plans.get(profile)
            if existing is None or cost < existing.cost:
                plans[profile] = PlanChoice(cost, plan)

        for expr in group.exprs:
            if isinstance(expr, ScanExpr):
                for cost, plan in self._scan_alternatives(group, expr):
                    offer(EMPTY_PROFILE, cost, plan)
            elif isinstance(expr, JoinExpr):
                self._join_alternatives(group, expr, ctx, offer)
            elif isinstance(expr, AggImplExpr):
                self._agg_alternatives(group, expr, ctx, offer)
            elif isinstance(expr, RootExpr):
                raise OptimizerError("root group must go through _assemble()")

        # Consumer substitution (§5.1): spool read + compensation.
        for candidate, spec in ctx.substitutions.get(group.gid, ()):
            cost, plan = self._substitute_plan(candidate, spec, group)
            if self.options.cost_mode == "naive_split":
                consumer_count = max(
                    1, len(self._specs[candidate.cse_id])
                    + len(self._body_specs[candidate.cse_id])
                )
                cost += candidate.initial_cost / consumer_count
                offer(EMPTY_PROFILE, cost, plan)
            else:
                offer(_profile_add(EMPTY_PROFILE, candidate.cse_id), cost, plan)

        # LCA settlement (§5.2): discard single-consumer plans, charge the
        # initial cost once for plans with >= 2 consumers.
        for candidate in ctx.closings.get(group.gid, ()):
            plans = self._close_candidate(plans, candidate)

        if not plans:
            raise OptimizerError(f"group g{group.gid} produced no plan")
        plans = _cap_planset(plans, 200)
        self._plan_cache[cache_key] = plans
        self._cache_pass[cache_key] = self._pass_index
        return plans

    def _close_candidate(self, plans: PlanSet, candidate: CandidateCse) -> PlanSet:
        closed: PlanSet = {}
        body_plan = self._body_plan_standalone(candidate)
        for profile, choice in plans.items():
            uses = _profile_get(profile, candidate.cse_id)
            if uses == 1:
                # §5.2: a plan using the spool exactly once at its LCA can
                # never beat recomputation — discard it (and count it, so
                # EXPLAIN ANALYZE and the decision journal can report how
                # often the rule fired, and against which candidate).
                self._stats.single_consumer_discards += 1
                cid = candidate.cse_id
                self._sc_discards[cid] = self._sc_discards.get(cid, 0) + 1
                continue
            new_profile = _profile_without(profile, candidate.cse_id)
            cost = choice.cost
            plan = choice.plan
            if uses >= 2:
                cost += candidate.initial_cost
                plan = PhysSpoolDef(
                    spools=((candidate.cse_id, body_plan),),
                    child=plan,
                    est_rows=plan.est_rows,
                )
            existing = closed.get(new_profile)
            if existing is None or cost < existing.cost:
                closed[new_profile] = PlanChoice(cost, plan)
        return closed

    # -- physical alternatives ------------------------------------------------

    def _scan_alternatives(
        self, group: Group, expr: ScanExpr
    ) -> List[Tuple[float, PhysicalPlan]]:
        table_ref = expr.table_ref
        table_rows = self.estimator.table_rows(table_ref)
        width = self.database.catalog.table(table_ref.physical_name).row_width()
        alternatives: List[Tuple[float, PhysicalPlan]] = []
        seq_cost = self.cost_model.scan(table_rows, width, len(expr.conjuncts))
        alternatives.append(
            (
                seq_cost,
                PhysScan(
                    table_ref=table_ref,
                    conjuncts=expr.conjuncts,
                    outputs=group.required_outputs,
                    est_rows=group.est_rows,
                ),
            )
        )
        for conjunct in expr.conjuncts:
            plan_cost = self._index_alternative(group, expr, conjunct, width)
            if plan_cost is not None:
                alternatives.append(plan_cost)
        return alternatives

    def _index_alternative(
        self, group: Group, expr: ScanExpr, conjunct: Expr, width: int
    ) -> Optional[Tuple[float, PhysicalPlan]]:
        if not isinstance(conjunct, Comparison):
            return None
        normalized = conjunct.normalized()
        if not (
            isinstance(normalized.left, ColumnRef)
            and isinstance(normalized.right, Literal)
        ):
            return None
        column = normalized.left
        index = self.database.index_for(expr.table_ref.physical_name, column.column)
        if index is None:
            return None
        fraction = self.estimator.index_match_fraction(column, conjunct)
        if fraction is None:
            return None
        table_rows = self.estimator.table_rows(expr.table_ref)
        matching = fraction * table_rows
        residual = tuple(c for c in expr.conjuncts if c is not conjunct)
        cost = self.cost_model.index_scan(matching, width, len(residual))
        low = high = None
        low_inc = high_inc = True
        value = float(normalized.right.value)
        op = normalized.op
        if op is ComparisonOp.EQ:
            low = high = value
        elif op is ComparisonOp.LT:
            high, high_inc = value, False
        elif op is ComparisonOp.LE:
            high = value
        elif op is ComparisonOp.GT:
            low, low_inc = value, False
        elif op is ComparisonOp.GE:
            low = value
        else:
            return None
        plan = PhysIndexScan(
            table_ref=expr.table_ref,
            column=column,
            low=low,
            high=high,
            low_inclusive=low_inc,
            high_inclusive=high_inc,
            residual=residual,
            outputs=group.required_outputs,
            est_rows=group.est_rows,
        )
        return cost, plan

    def _join_alternatives(self, group: Group, expr: JoinExpr, ctx, offer) -> None:
        left_set = self._optimize_group(expr.left, ctx)
        right_set = self._optimize_group(expr.right, ctx)
        out_rows = group.est_rows
        for left_profile, left_choice in left_set.items():
            for right_profile, right_choice in right_set.items():
                profile = _profile_merge(left_profile, right_profile)
                build_rows = min(expr.left.est_rows, expr.right.est_rows)
                probe_rows = max(expr.left.est_rows, expr.right.est_rows)
                if expr.hash_keys:
                    local = self.cost_model.hash_join(
                        build_rows, probe_rows, out_rows, len(expr.residual)
                    )
                else:
                    local = self.cost_model.cross_join(
                        expr.left.est_rows, expr.right.est_rows, out_rows
                    )
                # Build on the smaller side: put it on the left.
                if expr.left.est_rows <= expr.right.est_rows:
                    left_plan, right_plan = left_choice.plan, right_choice.plan
                    keys = expr.hash_keys
                else:
                    left_plan, right_plan = right_choice.plan, left_choice.plan
                    keys = tuple((r, l) for l, r in expr.hash_keys)
                plan = PhysHashJoin(
                    left=left_plan,
                    right=right_plan,
                    keys=keys,
                    residual=expr.residual,
                    outputs=group.required_outputs,
                    est_rows=out_rows,
                )
                offer(profile, left_choice.cost + right_choice.cost + local, plan)

    def _agg_alternatives(self, group: Group, expr: AggImplExpr, ctx, offer) -> None:
        child_set = self._optimize_group(expr.input_group, ctx)
        local = self.cost_model.aggregate(
            expr.input_group.est_rows, group.est_rows, len(expr.computes)
        )
        for profile, choice in child_set.items():
            plan = PhysHashAgg(
                child=choice.plan,
                keys=expr.keys,
                computes=expr.computes,
                est_rows=group.est_rows,
            )
            offer(profile, choice.cost + local, plan)

    def _substitute_plan(
        self, candidate: CandidateCse, spec: ConsumerSpec, group: Group
    ) -> Tuple[float, PhysicalPlan]:
        rows = candidate.definition.est_rows
        plan: PhysicalPlan = PhysSpoolRead(
            cse_id=candidate.cse_id,
            column_map=spec.column_map,
            est_rows=rows,
        )
        cost = candidate.read_cost
        if spec.residual:
            selectivity = 1.0
            for conjunct in spec.residual:
                selectivity *= self.estimator.selectivity(conjunct)
            out_rows = max(rows * selectivity, 1.0)
            cost += self.cost_model.filter(rows, len(spec.residual))
            plan = PhysFilter(plan, spec.residual, est_rows=out_rows)
            rows = out_rows
        if spec.needs_reagg:
            cost += self.cost_model.aggregate(
                rows, group.est_rows, len(spec.reagg_computes or ())
            )
            plan = PhysHashAgg(
                child=plan,
                keys=spec.reagg_keys or (),
                computes=spec.reagg_computes or (),
                est_rows=group.est_rows,
            )
        return cost, plan

    # ------------------------------------------------------------------
    # Root assembly
    # ------------------------------------------------------------------

    def _record_bounds(self) -> None:
        """After the base pass, copy optimal costs into per-group bounds."""
        for group in self._memo.groups:
            if group.kind == "root":
                continue
            cached = self._plan_cache.get((group.gid, frozenset()))
            if cached and EMPTY_PROFILE in cached:
                cost = cached[EMPTY_PROFILE].cost
                group.lower_bound = cost
                group.upper_bound = cost

    def _finalize_query(
        self, query: BoundQuery, top: Group, choice: PlanChoice
    ) -> Tuple[float, PhysicalPlan]:
        rows = top.est_rows
        cost = choice.cost
        plan = choice.plan
        block = query.block
        if block.having:
            cost += self.cost_model.filter(rows, len(block.having))
            selectivity = 1.0
            for conjunct in block.having:
                selectivity *= self.estimator.selectivity(conjunct)
            rows = max(rows * selectivity, 1.0)
            plan = PhysFilter(plan, tuple(block.having), est_rows=rows)
        cost += self.cost_model.project(rows, len(block.output))
        plan = PhysProject(plan, block.output, est_rows=rows)
        if query.order_by:
            cost += self.cost_model.sort(rows)
            plan = PhysSort(plan, tuple(query.order_by), est_rows=rows)
        return cost, plan

    def _finalize_subquery(
        self, block_top: Group, block, choice: PlanChoice
    ) -> Tuple[float, PhysicalPlan]:
        rows = block_top.est_rows
        cost = choice.cost + self.cost_model.project(rows, len(block.output))
        plan = PhysProject(choice.plan, block.output, est_rows=rows)
        return cost, plan

    def _finalized_top(
        self, idx: int, tag: str, payload, top: Group, ctx: _PassContext
    ) -> Tuple[
        FrozenSet[str], Dict[Profile, Tuple[float, PhysicalPlan]]
    ]:
        """One top's plan set with per-query finalization (HAVING, final
        projection, ORDER BY) already applied, as profile -> (cost, plan).

        Cached by (top index, relevant ids): finalization depends only on
        the query block and the top's plan set, and the relevant-ids key
        pins the latter down — so the result is reusable across Step-3
        passes. Hoisting it here also removes the finalize work from the
        |combined| × |child plan set| fold loop of :meth:`_assemble`.

        Extended queries (surviving outer/semi/anti extensions) fold their
        extension tops' plan sets into the core's here, so the relevant-ids
        key is the union over the core and every extension top."""
        ext_entries: Sequence[Tuple[JoinExtension, Group]] = ()
        if tag == "query" and payload.extensions:
            ext_entries = self._ext_tops[payload.name]
        relevant = self._relevant_ids(top, ctx)
        for _ext, ext_top in ext_entries:
            relevant = relevant | self._relevant_ids(ext_top, ctx)
        key = (idx, relevant)
        cached = self._finalize_cache.get(key)
        if cached is not None:
            return relevant, cached
        if ext_entries:
            finalized = self._finalize_extended_query(
                payload, top, ext_entries, ctx
            )
        else:
            child_set = self._optimize_group(top, ctx)
            finalized = {}
            for profile, choice in child_set.items():
                if tag == "query":
                    cost, plan = self._finalize_query(payload, top, choice)
                else:
                    query, sid = payload
                    sub_block = query.subqueries[sid]
                    cost, plan = self._finalize_subquery(top, sub_block, choice)
                finalized[profile] = (cost, plan)
        self._finalize_cache[key] = finalized
        return relevant, finalized

    def _finalize_extended_query(
        self,
        query: BoundQuery,
        top: Group,
        ext_entries: Sequence[Tuple[JoinExtension, Group]],
        ctx: _PassContext,
    ) -> Dict[Profile, Tuple[float, PhysicalPlan]]:
        """Plan set for a query with surviving join extensions.

        The core and each extension block were optimized as independent
        groups (each can read spools on its own); here their plan sets are
        cross-merged profile-wise, the extension joins stitched on top of
        the core in binder order, and the post-join shape (3VL filters,
        aggregation, HAVING, projection, ORDER BY) applied above."""
        from .aggs import direct_computes

        core_set = self._optimize_group(top, ctx)
        combined: Dict[Profile, Tuple[float, PhysicalPlan, float]] = {
            profile: (choice.cost, choice.plan, top.est_rows)
            for profile, choice in core_set.items()
        }
        # Columns flowing up the stitched join chain: the core's outputs
        # plus every preceding left_outer extension's (null-extended)
        # outputs. Semi/anti joins pass the running set through unchanged.
        running_outputs = tuple(top.required_outputs)
        for ext, ext_top in ext_entries:
            outputs = running_outputs
            if ext.kind == "left_outer":
                outputs = outputs + tuple(ext_top.required_outputs)
            ext_set = self._optimize_group(ext_top, ctx)
            folded: Dict[Profile, Tuple[float, PhysicalPlan, float]] = {}
            for profile0, (cost0, plan0, rows0) in combined.items():
                for profile1, choice in ext_set.items():
                    profile = _profile_merge(profile0, profile1)
                    out_rows = _ext_join_rows(ext.kind, rows0)
                    cost = cost0 + choice.cost + self.cost_model.hash_join(
                        min(rows0, ext_top.est_rows),
                        max(rows0, ext_top.est_rows),
                        out_rows,
                        0,
                    )
                    plan = PhysHashJoin(
                        left=plan0,
                        right=choice.plan,
                        keys=tuple(ext.keys),
                        residual=(),
                        outputs=outputs,
                        est_rows=out_rows,
                        join_type=ext.kind,
                    )
                    entry = folded.get(profile)
                    if entry is None or cost < entry[0]:
                        folded[profile] = (cost, plan, out_rows)
            combined = folded
            running_outputs = outputs

        post = query.post
        assert post is not None
        finalized: Dict[Profile, Tuple[float, PhysicalPlan]] = {}
        for profile, (cost, plan, rows) in combined.items():
            if post.filters:
                cost += self.cost_model.filter(rows, len(post.filters))
                selectivity = 1.0
                for conjunct in post.filters:
                    selectivity *= self.estimator.selectivity(conjunct)
                rows = max(rows * selectivity, 1.0)
                plan = PhysFilter(plan, tuple(post.filters), est_rows=rows)
            if post.has_groupby:
                computes = direct_computes(post.aggregates)
                groups = self.estimator.group_rows(rows, post.group_keys)
                cost += self.cost_model.aggregate(rows, groups, len(computes))
                plan = PhysHashAgg(
                    child=plan,
                    keys=tuple(post.group_keys),
                    computes=computes,
                    est_rows=groups,
                )
                rows = groups
            if post.having:
                cost += self.cost_model.filter(rows, len(post.having))
                selectivity = 1.0
                for conjunct in post.having:
                    selectivity *= self.estimator.selectivity(conjunct)
                rows = max(rows * selectivity, 1.0)
                plan = PhysFilter(plan, tuple(post.having), est_rows=rows)
            cost += self.cost_model.project(rows, len(post.output))
            plan = PhysProject(plan, post.output, est_rows=rows)
            if query.order_by:
                cost += self.cost_model.sort(rows)
                plan = PhysSort(plan, tuple(query.order_by), est_rows=rows)
            finalized[profile] = (cost, plan)
        return finalized

    def _assemble(self, ctx: _PassContext) -> Tuple[float, PlanBundle]:
        """Optimize all tops under ``ctx`` and settle root-level CSEs."""
        # Fold children plansets: profile -> (cost, plans tuple). The fold
        # is a left-to-right reduction over the fixed top order, so a pass
        # agreeing with an earlier one on every (top, relevant-ids) pair of
        # a prefix can resume from that prefix's cached fold (§5.4). The
        # cached dicts are never mutated downstream — later fold steps and
        # the root settlement below only read them.
        combined: Dict[Profile, Tuple[float, Tuple[PhysicalPlan, ...]]] = {
            EMPTY_PROFILE: (0.0, ())
        }
        prefix_key: Tuple = ()
        for idx, (tag, payload, top) in enumerate(self._tops):
            self._check_deadline()
            relevant, finalized = self._finalized_top(
                idx, tag, payload, top, ctx
            )
            prefix_key = prefix_key + ((top.gid, relevant),)
            cached_fold = self._fold_cache.get(prefix_key)
            if cached_fold is not None:
                combined = cached_fold
                self._pass_fold_hits += 1
                continue
            folded: Dict[Profile, Tuple[float, Tuple[PhysicalPlan, ...]]] = {}
            for profile0, (cost0, plans0) in combined.items():
                for profile1, (cost1, plan) in finalized.items():
                    profile = _profile_merge(profile0, profile1)
                    cost = cost0 + cost1
                    entry = folded.get(profile)
                    if entry is None or cost < entry[0]:
                        folded[profile] = (cost, plans0 + (plan,))
            if len(folded) > 512:
                keep = sorted(folded.items(), key=lambda kv: kv[1][0])[:511]
                if EMPTY_PROFILE not in dict(keep):
                    keep.append((EMPTY_PROFILE, folded[EMPTY_PROFILE]))
                folded = dict(keep)
            combined = folded
            self._fold_cache[prefix_key] = combined

        root_ids = frozenset(c.cse_id for c in ctx.root_cses)
        best: Optional[Tuple[float, Tuple[PhysicalPlan, ...], Tuple]] = None

        if not ctx.root_cses:
            for profile, (cost, plans) in combined.items():
                if _profile_support(profile):
                    continue  # open CSEs with no settlement point: invalid
                if best is None or cost < best[0]:
                    best = (cost, plans, ())
        elif len(ctx.root_cses) <= 8:
            body_options = self._root_body_options(ctx)
            for active_ids in self._root_activation_sets(ctx, combined, body_options):
                active = tuple(
                    c for c in ctx.root_cses if c.cse_id in active_ids
                )
                candidate_best = self._resolve_root_subset(
                    combined, active, active_ids, body_options
                )
                if candidate_best is not None and (
                    best is None or candidate_best[0] < best[0]
                ):
                    best = candidate_best
        else:
            # Very large enabled sets (no-heuristics ablations): greedy
            # per-profile activation instead of the exponential search.
            body_options = self._root_body_options(ctx)
            best = self._resolve_root_greedy(ctx, combined, body_options)

        if best is None:
            raise OptimizerError("root assembly produced no valid plan")
        total_cost, plans, spools = best
        if self.options.cost_mode == "naive_split":
            # Naive-split plans reference spools without settling them at any
            # LCA; attach the bodies at the root so execution works (this is
            # exactly the ablation's pathology: split accounting, no
            # single-consumer discard).
            spools = spools + self._naive_missing_spools(plans, spools)
        bundle = self._build_bundle(total_cost, plans, spools)
        return total_cost, bundle

    def _naive_missing_spools(
        self,
        plans: Tuple[PhysicalPlan, ...],
        spools: Tuple[Tuple[str, PhysicalPlan], ...],
    ) -> Tuple[Tuple[str, PhysicalPlan], ...]:
        have = {cid for cid, _ in spools}
        read: List[str] = []
        for plan in plans:
            for node in plan.walk():
                if isinstance(node, PhysSpoolDef):
                    have.update(cid for cid, _ in node.spools)
                elif isinstance(node, PhysSpoolRead):
                    if node.cse_id not in read:
                        read.append(node.cse_id)
        missing = [cid for cid in read if cid not in have]
        extra: List[Tuple[str, PhysicalPlan]] = []
        for cid in missing:
            candidate = self._candidates_by_id[cid]
            extra.append((cid, self._body_plan_standalone(candidate)))
        return tuple(extra)

    def _resolve_root_greedy(
        self, ctx: _PassContext, combined, body_options
    ) -> Optional[Tuple[float, Tuple[PhysicalPlan, ...], Tuple]]:
        """Per-profile greedy activation for very large root candidate sets.

        For each folded query profile, activates exactly the CSEs the plan
        reads (closing over stacked body dependencies with cheapest-first
        body choices) and validates the ≥2-consumers rule. Profiles whose
        activation cannot be validated are skipped; the no-CSE profile is
        always valid, so a plan is always found.
        """
        root_ids = frozenset(c.cse_id for c in ctx.root_cses)
        entries: Dict[str, List[Tuple[Profile, float, PhysicalPlan, FrozenSet[str]]]] = {}
        for cid, options in body_options.items():
            rows = [
                (profile, cost, plan, _profile_support(profile))
                for profile, cost, plan in options
            ]
            rows.sort(key=lambda r: r[1])
            entries[cid] = rows

        best: Optional[Tuple[float, Tuple[PhysicalPlan, ...], Tuple]] = None
        for profile, (cost, plans) in combined.items():
            support = _profile_support(profile)
            if not support <= root_ids:
                continue
            active = set(support)
            chosen: Dict[str, Tuple[Profile, float, PhysicalPlan, FrozenSet[str]]] = {}
            for _ in range(4):  # bounded dependency-closure rounds
                changed = False
                for cid in sorted(active):
                    options = entries.get(cid)
                    if not options:
                        chosen = {}
                        active = None
                        break
                    pick = next(
                        (o for o in options if o[3] <= active), options[0]
                    )
                    if chosen.get(cid) is not pick:
                        chosen[cid] = pick
                        changed = True
                    for dep in pick[3]:
                        if dep not in active:
                            active.add(dep)
                            changed = True
                if active is None or not changed:
                    break
            if active is None:
                continue
            counts: Dict[str, int] = {cid: n for cid, n in profile}
            for cid, pick in chosen.items():
                for inner, n in pick[0]:
                    counts[inner] = min(2, counts.get(inner, 0) + n)
            if any(counts.get(cid, 0) < 2 for cid in active):
                self._stats.single_consumer_discards += 1
                for cid in active:
                    if counts.get(cid, 0) < 2:
                        self._sc_discards[cid] = (
                            self._sc_discards.get(cid, 0) + 1
                        )
                continue
            total = cost + sum(pick[1] for pick in chosen.values())
            if best is None or total < best[0]:
                spools = tuple(
                    (cid, pick[2]) for cid, pick in sorted(chosen.items())
                )
                best = (total, plans, spools)
        return best

    def _root_activation_sets(
        self, ctx: _PassContext, combined, body_options
    ) -> List[FrozenSet[str]]:
        """All activation sets for the exhaustive (≤ 8 root CSEs) search."""
        root_ids = sorted(c.cse_id for c in ctx.root_cses)
        return [
            frozenset(combo)
            for r in range(len(root_ids) + 1)
            for combo in itertools.combinations(root_ids, r)
        ]

    def _root_body_options(self, ctx: _PassContext):
        """Per root CSE: list of (profile, cost incl. C_W, body plan)."""
        options: Dict[str, List[Tuple[Profile, float, PhysicalPlan]]] = {}
        for candidate in ctx.root_cses:
            body_top = self._memo.groups[candidate.body_top_gid]
            body_set = self._optimize_group(body_top, ctx)
            project_cost = self.cost_model.project(
                body_top.est_rows, len(candidate.definition.outputs)
            )
            entries: List[Tuple[Profile, float, PhysicalPlan]] = []
            for profile, choice in body_set.items():
                plan = PhysProject(
                    choice.plan,
                    candidate.definition.outputs,
                    est_rows=body_top.est_rows,
                )
                entries.append(
                    (
                        profile,
                        choice.cost + project_cost + candidate.write_cost,
                        plan,
                    )
                )
            options[candidate.cse_id] = entries
        return options

    def _resolve_root_subset(
        self,
        combined,
        active: Tuple[CandidateCse, ...],
        active_ids: FrozenSet[str],
        body_options,
    ) -> Optional[Tuple[float, Tuple[PhysicalPlan, ...], Tuple]]:
        """Best assembly using exactly the root candidates in ``active``."""
        best: Optional[Tuple[float, Tuple[PhysicalPlan, ...], Tuple]] = None
        # Body choice options per active candidate, restricted to the active
        # set and Pareto-pruned (an entry dominated in both cost and consumed
        # set can never help).
        per_body: List[List[Tuple[str, Profile, float, PhysicalPlan]]] = []
        for candidate in active:
            valid = [
                (candidate.cse_id, profile, cost, plan)
                for profile, cost, plan in body_options[candidate.cse_id]
                if _profile_support(profile) <= active_ids
            ]
            if not valid:
                return None
            valid.sort(key=lambda entry: entry[2])
            pareto: List[Tuple[str, Profile, float, PhysicalPlan]] = []
            for entry in valid:
                support = _profile_support(entry[1])
                if any(
                    kept[2] <= entry[2]
                    and support <= _profile_support(kept[1])
                    for kept in pareto
                ):
                    continue
                pareto.append(entry)
            per_body.append(pareto)

        combo_space = 1
        for options in per_body:
            combo_space *= len(options)
        if combo_space <= 512:
            combo_list = list(itertools.product(*per_body)) if per_body else [()]
        else:
            # Safety valve for pathological stacking depth: cheapest bodies
            # plus the maximal-consumption variant of each.
            cheapest = tuple(options[0] for options in per_body)
            greediest = tuple(
                max(options, key=lambda e: len(_profile_support(e[1])))
                for options in per_body
            )
            combo_list = [cheapest]
            if greediest != cheapest:
                combo_list.append(greediest)

        for profile, (cost, plans) in combined.items():
            if not _profile_support(profile) <= active_ids:
                continue
            for body_combo in combo_list:
                counts: Dict[str, int] = {cid: n for cid, n in profile}
                body_cost = 0.0
                spools: List[Tuple[str, PhysicalPlan]] = []
                for cid, body_profile, bcost, bplan in body_combo:
                    body_cost += bcost
                    spools.append((cid, bplan))
                    for inner_id, n in body_profile:
                        counts[inner_id] = min(2, counts.get(inner_id, 0) + n)
                valid = all(
                    counts.get(candidate.cse_id, 0) >= 2 for candidate in active
                )
                if not valid:
                    # The root-level instance of §5.2's rule: an activation
                    # whose spool would have fewer than two consumers.
                    self._stats.single_consumer_discards += 1
                    for candidate in active:
                        if counts.get(candidate.cse_id, 0) < 2:
                            cid = candidate.cse_id
                            self._sc_discards[cid] = (
                                self._sc_discards.get(cid, 0) + 1
                            )
                    continue
                total = cost + body_cost
                if best is None or total < best[0]:
                    best = (total, plans, tuple(spools))
        return best

    def _body_plan_standalone(self, candidate: CandidateCse) -> PhysicalPlan:
        body_top = self._memo.groups[candidate.body_top_gid]
        base_ctx = _PassContext((), {}, {}, ())
        body_set = self._optimize_group(body_top, base_ctx)
        return PhysProject(
            body_set[EMPTY_PROFILE].plan,
            candidate.definition.outputs,
            est_rows=body_top.est_rows,
        )

    def _build_bundle(
        self,
        total_cost: float,
        plans: Tuple[PhysicalPlan, ...],
        spools: Tuple[Tuple[str, PhysicalPlan], ...],
    ) -> PlanBundle:
        # Order spools so dependencies (stacked CSEs) materialize first.
        ordered = _toposort_spools(spools)
        queries: List[QueryPlan] = []
        by_query: Dict[str, QueryPlan] = {}
        for (tag, payload, _top), plan in zip(self._tops, plans):
            if tag == "query":
                query = payload
                shape = query.post.output if query.post else query.block.output
                qplan = QueryPlan(
                    name=query.name,
                    plan=plan,
                    output_names=[o.name for o in shape],
                )
                queries.append(qplan)
                by_query[query.name] = qplan
            else:
                query, sid = payload
                by_query[query.name].subquery_plans[sid] = plan
        return PlanBundle(
            root_spools=ordered, queries=queries, est_cost=total_cost
        )


def _cap_planset(plans: PlanSet, limit: int) -> PlanSet:
    """Bound a group's profile dictionary, always keeping the base plan."""
    if len(plans) <= limit:
        return plans
    kept = dict(sorted(plans.items(), key=lambda kv: kv[1].cost)[: limit - 1])
    if EMPTY_PROFILE in plans:
        kept[EMPTY_PROFILE] = plans[EMPTY_PROFILE]
    return kept


def _toposort_spools(
    spools: Tuple[Tuple[str, PhysicalPlan], ...]
) -> Tuple[Tuple[str, PhysicalPlan], ...]:
    remaining = list(spools)
    placed: List[Tuple[str, PhysicalPlan]] = []
    placed_ids: Set[str] = set()
    ids = {cid for cid, _ in spools}
    while remaining:
        progressed = False
        for entry in list(remaining):
            cid, plan = entry
            deps = {
                node.cse_id
                for node in plan.walk()
                if isinstance(node, PhysSpoolRead)
            } & ids
            if deps <= placed_ids:
                placed.append(entry)
                placed_ids.add(cid)
                remaining.remove(entry)
                progressed = True
        if not progressed:
            raise OptimizerError("cyclic spool dependencies")
    return tuple(placed)
