"""Column data types and value handling.

The engine stores data column-wise in numpy arrays. Each logical column type
maps to a numpy dtype and carries coercion and comparison rules. Dates are
stored as integer days since 1970-01-01 so that range predicates on dates are
ordinary integer comparisons (the same trick commercial engines use).
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

from .errors import StorageError

_EPOCH = _dt.date(1970, 1, 1)


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store a column of this type."""
        return np.dtype(_NUMPY_DTYPES[self])

    @property
    def byte_width(self) -> int:
        """Approximate storage width in bytes, used by the cost model."""
        return _BYTE_WIDTHS[self]

    @property
    def is_numeric(self) -> bool:
        """Whether values order/compare numerically (INT/FLOAT/DATE)."""
        return self in (DataType.INT, DataType.FLOAT, DataType.DATE)


_NUMPY_DTYPES = {
    DataType.INT: np.int64,
    DataType.FLOAT: np.float64,
    DataType.STRING: object,
    DataType.DATE: np.int64,
    DataType.BOOL: np.bool_,
}

# STRING width is a nominal average; TPC-H varchar columns average ~25 bytes.
_BYTE_WIDTHS = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.STRING: 25,
    DataType.DATE: 8,
    DataType.BOOL: 1,
}


def date_to_int(value: "_dt.date | str | int") -> int:
    """Convert a date (``datetime.date``, ISO string, or day number) to days
    since the epoch."""
    if isinstance(value, bool):
        raise StorageError(f"cannot treat bool {value!r} as a date")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    if isinstance(value, _dt.date):
        return (value - _EPOCH).days
    raise StorageError(f"cannot convert {value!r} to a date")


def int_to_date(days: int) -> _dt.date:
    """Inverse of :func:`date_to_int`."""
    return _EPOCH + _dt.timedelta(days=int(days))


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Coerce a python value to the storage representation of ``data_type``.

    Raises :class:`StorageError` when the value cannot represent the type.
    """
    if value is None:
        raise StorageError("NULL values are not supported by this engine")
    if data_type is DataType.INT:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise StorageError(f"expected int, got {value!r}")
        return int(value)
    if data_type is DataType.FLOAT:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise StorageError(f"expected float, got {value!r}")
        return float(value)
    if data_type is DataType.STRING:
        if not isinstance(value, str):
            raise StorageError(f"expected str, got {value!r}")
        return value
    if data_type is DataType.DATE:
        return date_to_int(value)
    if data_type is DataType.BOOL:
        if not isinstance(value, (bool, np.bool_)):
            raise StorageError(f"expected bool, got {value!r}")
        return bool(value)
    raise StorageError(f"unknown data type {data_type!r}")


def coerce_column(values: Any, data_type: DataType) -> np.ndarray:
    """Coerce an iterable of values to a numpy column of ``data_type``."""
    if isinstance(values, np.ndarray) and values.dtype == data_type.numpy_dtype:
        if data_type is not DataType.STRING:
            return values
    coerced = [coerce_value(v, data_type) for v in values]
    return np.array(coerced, dtype=data_type.numpy_dtype)


def literal_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a python literal."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, (int, np.integer)):
        return DataType.INT
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT
    if isinstance(value, _dt.date):
        return DataType.DATE
    if isinstance(value, str):
        return DataType.STRING
    raise StorageError(f"cannot infer a column type for literal {value!r}")


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """The result type of an arithmetic operation between two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise StorageError(f"non-numeric operands: {left}, {right}")
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    if left is DataType.DATE and right is DataType.DATE:
        return DataType.INT
    if DataType.DATE in (left, right):
        return DataType.DATE
    return DataType.INT


def comparable(left: DataType, right: DataType) -> bool:
    """Whether values of the two types may be compared with <,=,> etc."""
    if left == right:
        return True
    numeric = (DataType.INT, DataType.FLOAT)
    if left in numeric and right in numeric:
        return True
    # Dates compare against ints (day numbers) and date literals.
    datelike = (DataType.DATE, DataType.INT)
    if left in datelike and right in datelike:
        return True
    return False
