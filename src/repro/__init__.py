"""repro — a reproduction of "Efficient Exploitation of Similar
Subexpressions for Query Processing" (Zhou, Larson, Freytag, Lehner;
SIGMOD 2007).

The package contains a complete, from-scratch query-processing stack —
storage engine, TPC-H data generator, SQL frontend, Cascades-style
cost-based optimizer, and vectorized executor — with the paper's
contribution at its core: detection (table signatures), construction
(covering subexpressions with cost-based heuristics), and correct
cost-based optimization (LCA spool costing, candidate-subset enumeration,
stacked CSEs) of similar subexpressions across query batches, nested
queries, and materialized-view maintenance.

Public entry points:

* :class:`Session` — bind/optimize/execute SQL batches.
* :func:`build_tpch_database` — the synthetic TPC-H substrate.
* :class:`OptimizerOptions` — CSE knobs (α, β, heuristics, stacking, …).
* :class:`MetricsRegistry` / :class:`Tracer` — opt-in observability sinks
  for optimizer/executor counters and structured trace events.
* :class:`PlanCache` / :class:`ParallelExecutor` — the serving layer:
  signature-keyed plan caching and dependency-aware parallel batch
  execution (``Session(workers=N)``, ``execute(parallel=True)``).
"""

from .api import ExecutionOutcome, Session
from .obs import MetricsRegistry, Tracer
from .serve import ParallelExecutor, PlanCache
from .catalog.tpch import build_tpch_database
from .errors import (
    BindError,
    CatalogError,
    ExecutionError,
    LexerError,
    OptimizerError,
    ParseError,
    ReproError,
    SqlError,
    StorageError,
    UnsupportedFeatureError,
)
from .optimizer.options import OptimizerOptions
from .optimizer.cost import CostModel
from .storage.database import Database

__version__ = "1.0.0"

__all__ = [
    "Session",
    "ExecutionOutcome",
    "build_tpch_database",
    "Database",
    "OptimizerOptions",
    "CostModel",
    "MetricsRegistry",
    "Tracer",
    "PlanCache",
    "ParallelExecutor",
    "ReproError",
    "CatalogError",
    "StorageError",
    "SqlError",
    "LexerError",
    "ParseError",
    "BindError",
    "OptimizerError",
    "ExecutionError",
    "UnsupportedFeatureError",
    "__version__",
]
