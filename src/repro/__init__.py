"""repro — a reproduction of "Efficient Exploitation of Similar
Subexpressions for Query Processing" (Zhou, Larson, Freytag, Lehner;
SIGMOD 2007).

The package contains a complete, from-scratch query-processing stack —
storage engine, TPC-H data generator, SQL frontend, Cascades-style
cost-based optimizer, and vectorized executor — with the paper's
contribution at its core: detection (table signatures), construction
(covering subexpressions with cost-based heuristics), and correct
cost-based optimization (LCA spool costing, candidate-subset enumeration,
stacked CSEs) of similar subexpressions across query batches, nested
queries, and materialized-view maintenance.

Public entry points:

* :class:`Session` — bind/optimize/execute SQL batches.
* :func:`build_tpch_database` — the synthetic TPC-H substrate.
* :class:`OptimizerOptions` — CSE knobs (α, β, heuristics, stacking, …).
* :class:`MetricsRegistry` / :class:`Tracer` — opt-in observability sinks
  for optimizer/executor counters, latency histograms, and structured
  trace events; :class:`TelemetryServer` exposes a registry over HTTP in
  Prometheus text format (``Session(telemetry_port=...)``).
* :class:`QueryLog` — one structured JSONL record per executed batch,
  with slow queries carrying their full EXPLAIN ANALYZE tree.
* :class:`DecisionJournal` — the optimizer's per-candidate decision
  journal (``Session.explain(why=True)``, ``repro explain --why``).
* :class:`PlanCache` / :class:`ParallelExecutor` — the serving layer:
  signature-keyed plan caching and dependency-aware parallel batch
  execution (``Session(workers=N)``, ``execute(parallel=True)``).
* :class:`ResourceGovernor` / :class:`QueryBudget` — admission control and
  per-batch deadlines/budgets with cooperative cancellation; failures of
  the sharing machinery degrade to the paper's no-sharing baseline plan
  (``Session(governor=..., default_budget=...)``).
"""

from .api import ExecutionOutcome, Session
from .obs import (
    DecisionJournal,
    Histogram,
    MetricsRegistry,
    QueryLog,
    SharingLedger,
    SpanContext,
    TelemetryServer,
    Tracer,
    render_prometheus,
)
from .serve import (
    CancellationToken,
    ParallelExecutor,
    PlanCache,
    QueryBudget,
    ResourceGovernor,
)
from .catalog.tpch import build_tpch_database
from .errors import (
    AdmissionError,
    BindError,
    BudgetExceededError,
    CatalogError,
    ExecutionError,
    GovernorError,
    LexerError,
    OptimizerError,
    OptimizerTimeoutError,
    ParseError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    SqlError,
    StorageError,
    UnsupportedFeatureError,
)
from .optimizer.options import OptimizerOptions
from .optimizer.cost import CostModel
from .storage.database import Database

__version__ = "1.0.0"

__all__ = [
    "Session",
    "ExecutionOutcome",
    "build_tpch_database",
    "Database",
    "OptimizerOptions",
    "CostModel",
    "MetricsRegistry",
    "Tracer",
    "SpanContext",
    "SharingLedger",
    "Histogram",
    "TelemetryServer",
    "QueryLog",
    "DecisionJournal",
    "render_prometheus",
    "PlanCache",
    "ParallelExecutor",
    "ResourceGovernor",
    "QueryBudget",
    "CancellationToken",
    "ReproError",
    "CatalogError",
    "StorageError",
    "SqlError",
    "LexerError",
    "ParseError",
    "BindError",
    "OptimizerError",
    "OptimizerTimeoutError",
    "ExecutionError",
    "GovernorError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "BudgetExceededError",
    "AdmissionError",
    "UnsupportedFeatureError",
    "__version__",
]
