"""Scalar and aggregate expressions, predicate utilities, evaluation."""

from .expressions import (
    AggExpr,
    AggFunc,
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    Or,
    TableRef,
)
from .predicates import (
    EquivalenceClasses,
    conjoin,
    split_conjuncts,
)

__all__ = [
    "AggExpr",
    "AggFunc",
    "And",
    "Arithmetic",
    "ColumnRef",
    "Comparison",
    "Expr",
    "Literal",
    "Not",
    "Or",
    "TableRef",
    "EquivalenceClasses",
    "conjoin",
    "split_conjuncts",
]
