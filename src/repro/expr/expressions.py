"""Scalar and aggregate expression trees.

Expressions are immutable (frozen dataclasses) and hashable so they can be
used as dictionary keys, set members, and parts of memo group fingerprints.

Column identity
---------------
A :class:`TableRef` identifies one *instance* of a base table (or work
table). Two references to ``lineitem`` in different queries of a batch are
different instances with the same ``table`` name. Table signatures (§3 of the
paper) are computed from ``table`` names, so the instances share a signature;
everything else (predicates, plans, execution) distinguishes instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from ..errors import OptimizerError
from ..types import DataType, common_numeric_type, literal_type


@dataclass(frozen=True, order=True)
class TableRef:
    """One instance of a table in a query (batch).

    ``instance`` disambiguates repeated uses of the same table. ``alias`` is
    the name the SQL text used; purely cosmetic. ``signature_name`` is what
    table signatures see — for delta tables it is ``delta(<base>)`` so that
    maintenance expressions over deltas never share a CSE with expressions
    over the base table (§6.4).
    """

    table: str
    instance: int
    alias: str = ""
    is_delta: bool = False
    #: Physical table the executor reads; defaults to ``table``. Delta tables
    #: set this to the temporary table holding the update's rows.
    storage_name: str = ""

    @property
    def display_name(self) -> str:
        """Alias if present, else the table name."""
        return self.alias or self.table

    @property
    def physical_name(self) -> str:
        """The storage table the executor reads."""
        return self.storage_name or self.table

    @property
    def signature_name(self) -> str:
        """Name used in table signatures (delta(<base>) for deltas)."""
        if self.is_delta:
            return f"delta({self.table})"
        return self.table

    def __repr__(self) -> str:
        suffix = f"#{self.instance}"
        prefix = "Δ" if self.is_delta else ""
        return f"{prefix}{self.table}{suffix}"


class Expr:
    """Base class for all expressions."""

    data_type: DataType

    def columns(self) -> FrozenSet["ColumnRef"]:
        """All column references in this expression tree."""
        found = set()
        self._collect_columns(found)
        return frozenset(found)

    def _collect_columns(self, out: set) -> None:
        for child in self.children():
            child._collect_columns(out)

    def tables(self) -> FrozenSet[TableRef]:
        """All table instances referenced by this expression."""
        return frozenset(c.table_ref for c in self.columns())

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def substitute(self, mapping: Dict["Expr", "Expr"]) -> "Expr":
        """Replace subexpressions per ``mapping`` (applied top-down)."""
        if self in mapping:
            return mapping[self]
        return self._rebuild(tuple(c.substitute(mapping) for c in self.children()))

    def _rebuild(self, children: Tuple["Expr", ...]) -> "Expr":
        if children != self.children():
            raise OptimizerError(f"{type(self).__name__} cannot be rebuilt")
        return self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains_aggregate(self) -> bool:
        """Whether any AggExpr occurs in this tree."""
        return any(isinstance(node, AggExpr) for node in self.walk())


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to one column of one table instance."""

    table_ref: TableRef
    column: str
    data_type: DataType = field(compare=False, hash=False, default=DataType.INT)

    def _collect_columns(self, out: set) -> None:
        out.add(self)

    @property
    def base_key(self) -> Tuple[str, str]:
        """Instance-agnostic identity: (signature table name, column name)."""
        return (self.table_ref.signature_name, self.column)

    def __repr__(self) -> str:
        return f"{self.table_ref!r}.{self.column}"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant. ``value`` is stored in engine representation (dates as
    ints)."""

    value: Any
    data_type: DataType = field(compare=False, hash=False, default=DataType.INT)

    def __post_init__(self) -> None:
        if self.data_type is DataType.INT and not isinstance(self.value, bool):
            # Infer the real type when callers use the default.
            inferred = literal_type(self.value)
            object.__setattr__(self, "data_type", inferred)

    def __repr__(self) -> str:
        return repr(self.value)


class ComparisonOp(enum.Enum):
    """Comparison operators with flip/negate algebra."""
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "ComparisonOp":
        """The operator with operand order reversed (a op b == b op' a)."""
        return _FLIPPED[self]

    def negated(self) -> "ComparisonOp":
        """The operator accepting exactly the complementary rows."""
        return _NEGATED[self]


_FLIPPED = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}

_NEGATED = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` producing a boolean."""

    op: ComparisonOp
    left: Expr
    right: Expr
    data_type: DataType = field(
        compare=False, hash=False, default=DataType.BOOL, init=False
    )

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return Comparison(self.op, children[0], children[1])

    def normalized(self) -> "Comparison":
        """Canonical operand order: column-vs-column comparisons are ordered
        by column sort key; literal goes to the right."""
        left, right = self.left, self.right
        if isinstance(left, Literal) and not isinstance(right, Literal):
            return Comparison(self.op.flipped(), right, left)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if (right.table_ref, right.column) < (left.table_ref, left.column):
                return Comparison(self.op.flipped(), right, left)
        return self

    @property
    def is_column_equality(self) -> bool:
        """Whether this is a ``col = col`` conjunct."""
        return (
            self.op is ComparisonOp.EQ
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction over two or more boolean terms (flattened)."""

    terms: Tuple[Expr, ...]
    data_type: DataType = field(
        compare=False, hash=False, default=DataType.BOOL, init=False
    )

    def __post_init__(self) -> None:
        flattened: Tuple[Expr, ...] = ()
        for term in self.terms:
            if isinstance(term, And):
                flattened += term.terms
            else:
                flattened += (term,)
        object.__setattr__(self, "terms", flattened)

    def children(self) -> Tuple[Expr, ...]:
        return self.terms

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return And(children)

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction over two or more boolean terms (flattened)."""

    terms: Tuple[Expr, ...]
    data_type: DataType = field(
        compare=False, hash=False, default=DataType.BOOL, init=False
    )

    def __post_init__(self) -> None:
        flattened: Tuple[Expr, ...] = ()
        for term in self.terms:
            if isinstance(term, Or):
                flattened += term.terms
            else:
                flattened += (term,)
        object.__setattr__(self, "terms", flattened)

    def children(self) -> Tuple[Expr, ...]:
        return self.terms

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return Or(children)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation."""
    term: Expr
    data_type: DataType = field(
        compare=False, hash=False, default=DataType.BOOL, init=False
    )

    def children(self) -> Tuple[Expr, ...]:
        return (self.term,)

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return Not(children[0])

    def __repr__(self) -> str:
        return f"(NOT {self.term!r})"


class ArithmeticOp(enum.Enum):
    """Arithmetic operators."""
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """``left op right`` over numeric operands."""

    op: ArithmeticOp
    left: Expr
    right: Expr
    data_type: DataType = field(compare=False, hash=False, default=DataType.FLOAT)

    def __post_init__(self) -> None:
        if self.op is ArithmeticOp.DIV:
            object.__setattr__(self, "data_type", DataType.FLOAT)
        else:
            object.__setattr__(
                self,
                "data_type",
                common_numeric_type(self.left.data_type, self.right.data_type),
            )

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return Arithmetic(self.op, children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


class AggFunc(enum.Enum):
    """Aggregate functions (all decomposable; AVG via SUM/COUNT)."""
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    @property
    def decomposable(self) -> bool:
        """Whether partial aggregates of this function can be combined.

        All five are decomposable for our purposes: AVG decomposes into
        SUM/COUNT, COUNT re-aggregates with SUM.
        """
        return True


@dataclass(frozen=True)
class AggExpr(Expr):
    """An aggregate function application. ``arg is None`` means COUNT(*)."""

    func: AggFunc
    arg: Optional[Expr]
    data_type: DataType = field(compare=False, hash=False, default=DataType.FLOAT)

    def __post_init__(self) -> None:
        if self.func is AggFunc.COUNT:
            object.__setattr__(self, "data_type", DataType.INT)
        elif self.func is AggFunc.AVG:
            object.__setattr__(self, "data_type", DataType.FLOAT)
        elif self.arg is not None:
            object.__setattr__(self, "data_type", self.arg.data_type)

    def children(self) -> Tuple[Expr, ...]:
        return () if self.arg is None else (self.arg,)

    def _rebuild(self, children: Tuple[Expr, ...]) -> Expr:
        return AggExpr(self.func, children[0] if children else None)

    def __repr__(self) -> str:
        arg = "*" if self.arg is None else repr(self.arg)
        return f"{self.func.value}({arg})"


TRUE = Literal(True, DataType.BOOL)
FALSE = Literal(False, DataType.BOOL)


def canon_key(obj: Any) -> str:
    """A stable textual sort key for an expression-like object, computed
    once and cached on the object.

    Canonicalization in the memo sorts columns, aggregates, and join items
    by their ``repr`` in a dozen places; recomputing ``repr`` for every
    comparison makes each sort O(n log n) *tree walks*. Expression nodes
    are immutable, so the first ``repr`` is authoritative — it is interned
    on the instance (frozen dataclasses forbid plain assignment but not
    :func:`object.__setattr__`) and every later sort reuses it. Objects
    with ``__slots__`` (none of ours today) just fall back to an uncached
    ``repr``.
    """
    key = getattr(obj, "_canon_key_cache", None)
    if key is None:
        key = repr(obj)
        try:
            object.__setattr__(obj, "_canon_key_cache", key)
        except (AttributeError, TypeError):
            pass
    return key


def canon_sorted(items: Any) -> list:
    """``sorted(items, key=repr)`` with the per-object cached key."""
    return sorted(items, key=canon_key)


def column(table_ref: TableRef, name: str, data_type: DataType) -> ColumnRef:
    """Convenience constructor for :class:`ColumnRef`."""
    return ColumnRef(table_ref, name, data_type)


def eq(left: Expr, right: Expr) -> Comparison:
    """``left = right``."""
    return Comparison(ComparisonOp.EQ, left, right)


def lt(left: Expr, right: Expr) -> Comparison:
    """``left < right``."""
    return Comparison(ComparisonOp.LT, left, right)


def gt(left: Expr, right: Expr) -> Comparison:
    """``left > right``."""
    return Comparison(ComparisonOp.GT, left, right)


def le(left: Expr, right: Expr) -> Comparison:
    """``left <= right``."""
    return Comparison(ComparisonOp.LE, left, right)


def ge(left: Expr, right: Expr) -> Comparison:
    """``left >= right``."""
    return Comparison(ComparisonOp.GE, left, right)
