"""Predicate utilities: conjuncts, equivalence classes, implication.

The paper's join-compatibility test (§4.1) and CSE construction (§4.2) both
operate on *column equivalence classes* derived from the column-equality
conjuncts of a normalized SPJ expression, following Goldstein & Larson's view
matching framework ([5] in the paper). This module implements:

* conjunct splitting / conjoining,
* :class:`EquivalenceClasses`: union-find over column references, with the
  intersection operation of Def 4.1,
* simple implication tests between range conjuncts (used to simplify
  compensation predicates in view matching).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Or,
    TRUE,
)


def split_conjuncts(predicate: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, Literal) and predicate.value is True:
        return []
    if isinstance(predicate, And):
        result: List[Expr] = []
        for term in predicate.terms:
            result.extend(split_conjuncts(term))
        return result
    return [predicate]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Combine conjuncts back into a single predicate (None when empty)."""
    terms = [c for c in conjuncts if not (isinstance(c, Literal) and c.value is True)]
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return And(tuple(terms))


def disjoin(disjuncts: Sequence[Optional[Expr]]) -> Optional[Expr]:
    """OR together predicates; a ``None`` member (always-true) absorbs all."""
    if any(d is None for d in disjuncts):
        return None
    unique: List[Expr] = []
    for term in disjuncts:
        assert term is not None
        if term not in unique:
            unique.append(term)
    if not unique:
        return None
    if len(unique) == 1:
        return unique[0]
    return Or(tuple(unique))


def column_equalities(conjuncts: Iterable[Expr]) -> List[Comparison]:
    """The conjuncts of form ``col = col``."""
    return [
        c for c in conjuncts
        if isinstance(c, Comparison) and c.is_column_equality
    ]


def non_equality_conjuncts(conjuncts: Iterable[Expr]) -> List[Expr]:
    """The conjuncts that are *not* column equalities (local filters etc.)."""
    return [
        c for c in conjuncts
        if not (isinstance(c, Comparison) and c.is_column_equality)
    ]


class EquivalenceClasses:
    """Union-find over column references (or any hashable keys).

    An equivalence class is a set of columns guaranteed equal in the result
    of an SPJ expression. Built from the ``col = col`` conjuncts.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_conjuncts(cls, conjuncts: Iterable[Expr]) -> "EquivalenceClasses":
        """Classes built from the column-equality conjuncts."""
        classes = cls()
        for conjunct in column_equalities(conjuncts):
            assert isinstance(conjunct, Comparison)
            classes.add_equality(conjunct.left, conjunct.right)
        return classes

    def add(self, item: Hashable) -> None:
        """Register a member without equating it to anything."""
        if item not in self._parent:
            self._parent[item] = item

    def add_equality(self, left: Hashable, right: Hashable) -> None:
        """Union the classes of ``left`` and ``right``."""
        self.add(left)
        self.add(right)
        root_left = self._find(left)
        root_right = self._find(right)
        if root_left != root_right:
            self._parent[root_right] = root_left

    def _find(self, item: Hashable) -> Hashable:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    # -- queries ------------------------------------------------------------

    def same_class(self, left: Hashable, right: Hashable) -> bool:
        """Whether two members are known equal."""
        if left not in self._parent or right not in self._parent:
            return left == right
        return self._find(left) == self._find(right)

    def classes(self) -> List[FrozenSet[Hashable]]:
        """All equivalence classes with at least two members."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            groups.setdefault(self._find(item), set()).add(item)
        return [frozenset(g) for g in groups.values() if len(g) >= 2]

    def class_of(self, item: Hashable) -> FrozenSet[Hashable]:
        """All members known equal to ``item``."""
        if item not in self._parent:
            return frozenset([item])
        root = self._find(item)
        return frozenset(
            member for member in self._parent if self._find(member) == root
        )

    def representative(self, item: Hashable) -> Hashable:
        """A canonical member of ``item``'s class (smallest by sort order)."""
        members = self.class_of(item)
        return min(members, key=repr)

    # -- operations ---------------------------------------------------------

    def mapped(self, key: Callable[[Hashable], Hashable]) -> "EquivalenceClasses":
        """A new structure whose members are ``key(member)``."""
        result = EquivalenceClasses()
        for cls_members in self.classes():
            members = sorted(cls_members, key=repr)
            first = key(members[0])
            result.add(first)
            for member in members[1:]:
                result.add_equality(first, key(member))
        return result

    def intersect(self, other: "EquivalenceClasses") -> "EquivalenceClasses":
        """Class-wise intersection (Def 4.1's natural definition).

        For every pair of classes, one from each side, the intersection of
        the member sets becomes a class of the result (if it has >= 2
        members).
        """
        result = EquivalenceClasses()
        other_classes = other.classes()
        for mine in self.classes():
            for theirs in other_classes:
                common = mine & theirs
                if len(common) >= 2:
                    members = sorted(common, key=repr)
                    for member in members[1:]:
                        result.add_equality(members[0], member)
        return result

    def equality_conjuncts(self) -> List[Comparison]:
        """A minimal set of ``a = b`` conjuncts regenerating the classes.

        Members must be :class:`ColumnRef` for this to be meaningful.
        """
        conjuncts: List[Comparison] = []
        for cls_members in self.classes():
            members = sorted(cls_members, key=repr)
            first = members[0]
            for member in members[1:]:
                assert isinstance(first, ColumnRef) and isinstance(member, ColumnRef)
                conjuncts.append(Comparison(ComparisonOp.EQ, first, member))
        return conjuncts

    def __len__(self) -> int:
        return len(self.classes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [
            "{" + ", ".join(sorted(repr(m) for m in c)) + "}"
            for c in self.classes()
        ]
        return "EquivalenceClasses(" + ", ".join(sorted(parts)) + ")"


def implied_by_equalities(
    conjunct: Expr, classes: EquivalenceClasses
) -> bool:
    """Whether a column-equality conjunct is already implied by ``classes``."""
    if isinstance(conjunct, Comparison) and conjunct.is_column_equality:
        return classes.same_class(conjunct.left, conjunct.right)
    return False


def simplify_conjuncts(
    conjuncts: Sequence[Expr], classes: EquivalenceClasses
) -> List[Expr]:
    """Drop conjuncts implied by the equivalence classes (§4.2 step 2)."""
    return [c for c in conjuncts if not implied_by_equalities(c, classes)]


# -- range reasoning -----------------------------------------------------------


def _range_parts(conjunct: Expr) -> Optional[Tuple[ColumnRef, ComparisonOp, object]]:
    """Decompose ``col op literal`` (either operand order) or return None."""
    if not isinstance(conjunct, Comparison):
        return None
    normalized = conjunct.normalized()
    if isinstance(normalized.left, ColumnRef) and isinstance(normalized.right, Literal):
        return (normalized.left, normalized.op, normalized.right.value)
    return None


def range_implies(specific: Expr, general: Expr) -> bool:
    """Conservative implication test between two range conjuncts.

    Returns ``True`` only when ``specific`` provably implies ``general``.
    Both must be ``col op literal`` conjuncts over the same column.
    """
    spec = _range_parts(specific)
    gen = _range_parts(general)
    if spec is None or gen is None:
        return False
    spec_col, spec_op, spec_val = spec
    gen_col, gen_op, gen_val = gen
    if spec_col != gen_col:
        return False
    try:
        less = spec_val < gen_val  # type: ignore[operator]
        greater = spec_val > gen_val  # type: ignore[operator]
        equal = spec_val == gen_val
    except TypeError:
        return False

    upper_ops = (ComparisonOp.LT, ComparisonOp.LE)
    lower_ops = (ComparisonOp.GT, ComparisonOp.GE)
    if spec_op in upper_ops and gen_op in upper_ops:
        if less:
            return True
        if equal:
            # col < v implies col < v and col <= v; col <= v implies col <= v.
            return not (spec_op is ComparisonOp.LE and gen_op is ComparisonOp.LT)
        return False
    if spec_op in lower_ops and gen_op in lower_ops:
        if greater:
            return True
        if equal:
            return not (spec_op is ComparisonOp.GE and gen_op is ComparisonOp.GT)
        return False
    if spec_op is ComparisonOp.EQ:
        if gen_op is ComparisonOp.EQ:
            return bool(equal)
        if gen_op is ComparisonOp.LT:
            return bool(less)
        if gen_op is ComparisonOp.LE:
            return bool(less or equal)
        if gen_op is ComparisonOp.GT:
            return bool(greater)
        if gen_op is ComparisonOp.GE:
            return bool(greater or equal)
        if gen_op is ComparisonOp.NE:
            return not equal
    return False


def conjuncts_imply(
    specific: Sequence[Expr], general: Sequence[Expr],
    classes: Optional[EquivalenceClasses] = None,
) -> bool:
    """Whether the conjunct set ``specific`` implies every conjunct of
    ``general`` (conservative: syntactic match, equivalence-class match, or
    range implication)."""
    for needed in general:
        if classes is not None and implied_by_equalities(needed, classes):
            continue
        if any(
            have == needed or range_implies(have, needed)
            for have in specific
        ):
            continue
        return False
    return True


def predicate_columns(predicate: Optional[Expr]) -> FrozenSet[ColumnRef]:
    """Columns referenced by an optional predicate."""
    if predicate is None:
        return frozenset()
    return predicate.columns()


def always_true(predicate: Optional[Expr]) -> bool:
    """Whether the predicate is absent or the TRUE literal."""
    return predicate is None or predicate == TRUE
