"""Vectorized expression evaluation over column frames.

A *frame* maps :class:`ColumnRef` objects (or arbitrary expression keys, for
computed columns like partial aggregates flowing out of a spool) to numpy
arrays of equal length. Evaluation is fully vectorized: predicates yield
boolean masks, arithmetic yields value arrays.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ExecutionError
from ..types import DataType
from .expressions import (
    AggExpr,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
)

Frame = Dict[Expr, np.ndarray]


def frame_length(frame: Frame) -> int:
    """Row count of a frame (0 when empty)."""
    first = next(iter(frame.values()), None)
    return 0 if first is None else len(first)


def evaluate(expr: Expr, frame: Frame) -> np.ndarray:
    """Evaluate ``expr`` against ``frame``, returning a column."""
    # Computed columns (e.g. spool outputs keyed by the original aggregate
    # expression) take precedence over structural evaluation.
    if expr in frame:
        return frame[expr]
    if isinstance(expr, Literal):
        n = frame_length(frame)
        return np.full(n, expr.value, dtype=expr.data_type.numpy_dtype)
    if isinstance(expr, ColumnRef):
        raise ExecutionError(f"column {expr!r} not present in frame")
    if isinstance(expr, Comparison):
        return _evaluate_comparison(expr, frame)
    if isinstance(expr, And):
        result = evaluate(expr.terms[0], frame).astype(bool)
        for term in expr.terms[1:]:
            result = result & evaluate(term, frame).astype(bool)
        return result
    if isinstance(expr, Or):
        result = evaluate(expr.terms[0], frame).astype(bool)
        for term in expr.terms[1:]:
            result = result | evaluate(term, frame).astype(bool)
        return result
    if isinstance(expr, Not):
        return ~evaluate(expr.term, frame).astype(bool)
    if isinstance(expr, Arithmetic):
        return _evaluate_arithmetic(expr, frame)
    if isinstance(expr, AggExpr):
        raise ExecutionError(
            f"aggregate {expr!r} reached the scalar evaluator; aggregates are "
            "computed by the aggregation iterator"
        )
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _evaluate_comparison(expr: Comparison, frame: Frame) -> np.ndarray:
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    op = expr.op
    if op is ComparisonOp.EQ:
        return left == right
    if op is ComparisonOp.NE:
        return left != right
    if op is ComparisonOp.LT:
        return left < right
    if op is ComparisonOp.LE:
        return left <= right
    if op is ComparisonOp.GT:
        return left > right
    if op is ComparisonOp.GE:
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _evaluate_arithmetic(expr: Arithmetic, frame: Frame) -> np.ndarray:
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    op = expr.op
    if op is ArithmeticOp.ADD:
        return left + right
    if op is ArithmeticOp.SUB:
        return left - right
    if op is ArithmeticOp.MUL:
        return left * right
    if op is ArithmeticOp.DIV:
        divisor = right.astype(np.float64)
        if np.any(divisor == 0):
            raise ExecutionError("division by zero during evaluation")
        return left / divisor
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def evaluate_predicate(predicate: Optional[Expr], frame: Frame) -> np.ndarray:
    """Evaluate a (possibly absent) predicate to a boolean mask."""
    n = frame_length(frame)
    if predicate is None:
        return np.ones(n, dtype=bool)
    mask = evaluate(predicate, frame)
    if mask.dtype != np.bool_:
        if predicate.data_type is not DataType.BOOL:
            raise ExecutionError(f"predicate {predicate!r} is not boolean")
        mask = mask.astype(bool)
    return mask
