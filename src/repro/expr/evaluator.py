"""Vectorized expression evaluation over column frames.

A *frame* maps :class:`ColumnRef` objects (or arbitrary expression keys, for
computed columns like partial aggregates flowing out of a spool) to numpy
arrays of equal length. Evaluation is fully vectorized: predicates yield
boolean masks, arithmetic yields value arrays.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ExecutionError
from ..types import DataType
from .expressions import (
    AggExpr,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    Literal,
    Not,
    Or,
)

Frame = Dict[Expr, np.ndarray]


def frame_length(frame: Frame) -> int:
    """Row count of a frame (0 when empty)."""
    first = next(iter(frame.values()), None)
    return 0 if first is None else len(first)


def evaluate(expr: Expr, frame: Frame) -> np.ndarray:
    """Evaluate ``expr`` against ``frame``, returning a column."""
    # Computed columns (e.g. spool outputs keyed by the original aggregate
    # expression) take precedence over structural evaluation.
    if expr in frame:
        return frame[expr]
    if isinstance(expr, Literal):
        n = frame_length(frame)
        return np.full(n, expr.value, dtype=expr.data_type.numpy_dtype)
    if isinstance(expr, ColumnRef):
        raise ExecutionError(f"column {expr!r} not present in frame")
    if isinstance(expr, Comparison):
        return _evaluate_comparison(expr, frame)
    if isinstance(expr, And):
        result = evaluate(expr.terms[0], frame).astype(bool)
        for term in expr.terms[1:]:
            result = result & evaluate(term, frame).astype(bool)
        return result
    if isinstance(expr, Or):
        result = evaluate(expr.terms[0], frame).astype(bool)
        for term in expr.terms[1:]:
            result = result | evaluate(term, frame).astype(bool)
        return result
    if isinstance(expr, Not):
        return ~evaluate(expr.term, frame).astype(bool)
    if isinstance(expr, Arithmetic):
        return _evaluate_arithmetic(expr, frame)
    if isinstance(expr, AggExpr):
        raise ExecutionError(
            f"aggregate {expr!r} reached the scalar evaluator; aggregates are "
            "computed by the aggregation iterator"
        )
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _evaluate_comparison(expr: Comparison, frame: Frame) -> np.ndarray:
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    op = expr.op
    if op is ComparisonOp.EQ:
        return left == right
    if op is ComparisonOp.NE:
        return left != right
    if op is ComparisonOp.LT:
        return left < right
    if op is ComparisonOp.LE:
        return left <= right
    if op is ComparisonOp.GT:
        return left > right
    if op is ComparisonOp.GE:
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _evaluate_arithmetic(expr: Arithmetic, frame: Frame) -> np.ndarray:
    left = evaluate(expr.left, frame)
    right = evaluate(expr.right, frame)
    op = expr.op
    if op is ArithmeticOp.ADD:
        return left + right
    if op is ArithmeticOp.SUB:
        return left - right
    if op is ArithmeticOp.MUL:
        return left * right
    if op is ArithmeticOp.DIV:
        divisor = right.astype(np.float64)
        if np.any(divisor == 0):
            raise ExecutionError("division by zero during evaluation")
        return left / divisor
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def evaluate_predicate(predicate: Optional[Expr], frame: Frame) -> np.ndarray:
    """Evaluate a (possibly absent) predicate to a boolean mask.

    SQL three-valued logic: a row passes only when the predicate is TRUE.
    NULLs (NaN in float columns, None in object columns) appear only
    downstream of outer joins; frames without NULLs take the original
    two-valued fast path unchanged.
    """
    n = frame_length(frame)
    if predicate is None:
        return np.ones(n, dtype=bool)
    true_mask, _ = evaluate3(predicate, frame)
    if true_mask.dtype != np.bool_:
        if predicate.data_type is not DataType.BOOL:
            raise ExecutionError(f"predicate {predicate!r} is not boolean")
        true_mask = true_mask.astype(bool)
    return true_mask


# ---------------------------------------------------------------------------
# Kleene three-valued evaluation (NULL-bearing frames)
# ---------------------------------------------------------------------------


def null_mask(values: np.ndarray) -> Optional[np.ndarray]:
    """Boolean mask of NULL entries, or None when the column has none.

    Numeric NULLs are NaN (outer-join null extension casts to float64);
    string NULLs are None entries in object arrays.
    """
    if values.dtype == np.object_:
        mask = np.asarray(values == None, dtype=bool)  # noqa: E711
        return mask if mask.any() else None
    if np.issubdtype(values.dtype, np.floating):
        mask = np.isnan(values)
        return mask if mask.any() else None
    return None


def evaluate3(expr: Expr, frame: Frame) -> "tuple[np.ndarray, Optional[np.ndarray]]":
    """Evaluate a boolean expression under Kleene logic.

    Returns ``(true_mask, null_mask)`` where ``null_mask`` is None when no
    row evaluates to NULL (the common, NULL-free case — zero overhead
    beyond the plain evaluator)."""
    if expr in frame:
        values = frame[expr]
        return (
            values if values.dtype == np.bool_ else values.astype(bool)
        ), None
    if isinstance(expr, Comparison):
        left = evaluate(expr.left, frame)
        right = evaluate(expr.right, frame)
        nulls = _combine_nulls(null_mask(left), null_mask(right))
        if nulls is not None and left.dtype == np.object_:
            left = np.where(nulls, "", left)
        if nulls is not None and right.dtype == np.object_:
            right = np.where(nulls, "", right)
        raw = _raw_comparison(expr.op, left, right)
        if nulls is None:
            return raw, None
        return raw & ~nulls, nulls
    if isinstance(expr, And):
        true = None
        false = None
        for term in expr.terms:
            t, n = evaluate3(term, frame)
            f = ~t if n is None else ~t & ~n
            true = t if true is None else true & t
            false = f if false is None else false | f
        assert true is not None and false is not None
        nulls = ~true & ~false
        return true, nulls if nulls.any() else None
    if isinstance(expr, Or):
        true = None
        false = None
        for term in expr.terms:
            t, n = evaluate3(term, frame)
            f = ~t if n is None else ~t & ~n
            true = t if true is None else true | t
            false = f if false is None else false & f
        assert true is not None and false is not None
        nulls = ~true & ~false
        return true, nulls if nulls.any() else None
    if isinstance(expr, Not):
        t, n = evaluate3(expr.term, frame)
        if n is None:
            return ~t.astype(bool), None
        return ~t & ~n, n
    # Anything else (literals, frame-resident boolean columns).
    values = evaluate(expr, frame)
    return values.astype(bool) if values.dtype != np.bool_ else values, None


def _combine_nulls(
    a: Optional[np.ndarray], b: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _raw_comparison(
    op: ComparisonOp, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    if op is ComparisonOp.EQ:
        return left == right
    if op is ComparisonOp.NE:
        return left != right
    if op is ComparisonOp.LT:
        return left < right
    if op is ComparisonOp.LE:
        return left <= right
    if op is ComparisonOp.GT:
        return left > right
    if op is ComparisonOp.GE:
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")
