"""Exception hierarchy for the repro query-processing library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses map to the major subsystems: catalog, SQL frontend,
binding, optimization, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class CatalogError(ReproError):
    """A schema object is missing, duplicated, or malformed."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad column data, key errors)."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexerError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The token stream does not form a valid statement of the SQL subset."""


class BindError(SqlError):
    """Name resolution or type checking of a parsed statement failed."""


class OptimizerError(ReproError):
    """The optimizer reached an inconsistent state or an unsupported shape."""


class OptimizerTimeoutError(OptimizerError):
    """The optimizer's deadline expired before a plan was chosen.

    Raised at the cooperative checkpoints inside
    :meth:`repro.optimizer.engine.Optimizer.optimize`. The session treats
    it like any other :class:`OptimizerError`: the batch is re-optimized
    with CSE exploitation disabled (the always-valid no-sharing plan)."""


class ExecutionError(ReproError):
    """A physical plan could not be evaluated."""


class GovernorError(ReproError):
    """Base class for resource-governance errors (:mod:`repro.serve.governor`)."""


class QueryCancelledError(GovernorError):
    """Execution was cooperatively cancelled via a :class:`CancellationToken`."""


class QueryTimeoutError(QueryCancelledError):
    """The batch's wall-clock deadline expired during execution."""


class BudgetExceededError(QueryCancelledError):
    """A :class:`QueryBudget` row or spool limit was exhausted."""


class AdmissionError(GovernorError):
    """The governor refused a batch: the wait queue is full or the
    admission wait timed out."""


class UnsupportedFeatureError(ReproError):
    """A SQL or algebra feature outside the implemented subset was requested."""
