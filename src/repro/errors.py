"""Exception hierarchy for the repro query-processing library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subclasses map to the major subsystems: catalog, SQL frontend,
binding, optimization, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class CatalogError(ReproError):
    """A schema object is missing, duplicated, or malformed."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad column data, key errors)."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexerError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The token stream does not form a valid statement of the SQL subset."""


class BindError(SqlError):
    """Name resolution or type checking of a parsed statement failed."""


class OptimizerError(ReproError):
    """The optimizer reached an inconsistent state or an unsupported shape."""


class ExecutionError(ReproError):
    """A physical plan could not be evaluated."""


class UnsupportedFeatureError(ReproError):
    """A SQL or algebra feature outside the implemented subset was requested."""
