"""Vectorized physical-operator implementations.

Each operator consumes/produces a *frame*: a mapping from expression keys to
numpy column arrays of equal length. Equi joins run as a vectorized
sort-merge over factorized key codes (emitting rows in classic hash-join
order: right rows ascending, left matches in build order), aggregation is
vectorized hash aggregation over factorized key tuples, spools materialize
frames into work tables. Keeping the hot loops inside numpy matters beyond
single-query speed: numpy kernels release the GIL, which is what lets the
parallel batch executor (``repro.serve``) get real wall-clock speedup from
threads.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expr.evaluator import Frame, evaluate, evaluate_predicate, frame_length
from ..expr.expressions import AggExpr, AggFunc, ColumnRef, Expr
from ..optimizer.aggs import AggCompute
from ..optimizer.physical import (
    PhysFilter,
    PhysFusedPipeline,
    PhysHashAgg,
    PhysHashJoin,
    PhysIndexScan,
    PhysProject,
    PhysScan,
    PhysSort,
    PhysSpoolDef,
    PhysSpoolRead,
    PhysicalPlan,
)
from ..storage.worktable import WorkTable
from ..types import DataType
from .runtime import ExecutionContext


def execute_node(
    plan: PhysicalPlan, ctx: ExecutionContext, charge_output: bool = True
) -> Frame:
    """Evaluate a plan node to a frame.

    When ``ctx.op_stats`` is enabled, each node's invocation count, output
    rows, and inclusive wall time are recorded (keyed by node identity) for
    EXPLAIN ANALYZE; the disabled path costs one ``is None`` check.

    When ``ctx.token`` is set, every invocation is a cooperative
    governance checkpoint: deadline expiry / cancellation raise before the
    operator runs, and (with a row budget) the operator's output rows are
    charged afterwards — so a runaway plan stops at the next operator
    boundary instead of stalling the batch. ``charge_output=False``
    suppresses the output-row charge for this node only (a spool body's
    top output is charged at each consumer read, never at the producer);
    fused pipelines charge per morsel inside the streaming loop instead."""
    token = ctx.token
    if token is not None:
        token.check()
    charge = (
        charge_output and not isinstance(plan, PhysFusedPipeline)
    )
    ctx.metrics.operator_invocations += 1
    tracer = ctx.tracer
    if ctx.op_stats is None and not tracer.enabled:
        frame = _dispatch(plan, ctx)
        if token is not None and token.charges_rows and charge:
            token.charge_rows(frame_length(frame))
        return frame
    start = perf_counter()
    if tracer.enabled:
        # One span per operator invocation; children nest via the
        # tracer's per-thread stack, so the trace mirrors the plan tree.
        with tracer.span(_op_span_name(plan)) as span:
            frame = _dispatch(plan, ctx)
            rows = frame_length(frame)
            if span is not None:
                span.attrs["rows"] = rows
    else:
        frame = _dispatch(plan, ctx)
        rows = frame_length(frame)
    if ctx.op_stats is not None:
        elapsed = perf_counter() - start
        stats = ctx.stats_for(plan)
        stats.invocations += 1
        stats.rows_out += rows
        stats.wall_time += elapsed
    if token is not None and token.charges_rows and charge:
        token.charge_rows(rows)
    return frame


def _op_span_name(plan: PhysicalPlan) -> str:
    """``PhysHashJoin`` → ``op:HashJoin`` (span names group by operator)."""
    return "op:" + type(plan).__name__[4:]


def _dispatch(plan: PhysicalPlan, ctx: ExecutionContext) -> Frame:
    if isinstance(plan, PhysScan):
        return _scan(plan, ctx)
    if isinstance(plan, PhysFusedPipeline):
        return _fused(plan, ctx)
    if isinstance(plan, PhysIndexScan):
        return _index_scan(plan, ctx)
    if isinstance(plan, PhysHashJoin):
        return _hash_join(plan, ctx)
    if isinstance(plan, PhysHashAgg):
        return _hash_agg(plan, ctx)
    if isinstance(plan, PhysFilter):
        return _filter(plan, ctx)
    if isinstance(plan, PhysSpoolRead):
        return _spool_read(plan, ctx)
    if isinstance(plan, PhysSpoolDef):
        return _spool_def(plan, ctx)
    if isinstance(plan, PhysProject):
        # Interior projection: keep the child frame restricted to the
        # expressions the projection computes (keyed by expression).
        frame = execute_node(plan.child, ctx)
        return {out.expr: evaluate(out.expr, frame) for out in plan.outputs}
    if isinstance(plan, PhysSort):
        frame = execute_node(plan.child, ctx)
        order = _sort_order(plan, frame, ctx)
        return {key: col[order] for key, col in frame.items()}
    raise ExecutionError(f"cannot execute plan node {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def _scan_frame(
    plan_outputs: Tuple[Expr, ...],
    conjuncts: Tuple[Expr, ...],
    table_columns,
) -> Frame:
    needed: Dict[Expr, np.ndarray] = {}
    wanted = set(plan_outputs)
    for conjunct in conjuncts:
        wanted.update(conjunct.columns())
    for expr in wanted:
        if not isinstance(expr, ColumnRef):
            raise ExecutionError(f"scan cannot produce {expr!r}")
        needed[expr] = table_columns(expr.column)
    return needed


def _scan(plan: PhysScan, ctx: ExecutionContext) -> Frame:
    if ctx.scans is not None:
        # Engine v2: one physical scan per (table, needed-columns) group
        # per batch; the manager does the Def 5.1-split charging.
        return _restrict(ctx.scans.scan_frame(plan, ctx), plan.outputs)
    table = ctx.database.table(plan.table_ref.physical_name)
    frame = _scan_frame(plan.outputs, plan.conjuncts, table.column)
    rows = table.row_count
    ctx.metrics.rows_scanned += rows
    width = table.row_width()
    ctx.metrics.cost_units += ctx.cost_model.scan(rows, width, len(plan.conjuncts))
    if plan.conjuncts:
        mask = np.ones(rows, dtype=bool)
        for conjunct in plan.conjuncts:
            mask &= evaluate_predicate(conjunct, frame)
        frame = {k: v[mask] for k, v in frame.items()}
    return _restrict(frame, plan.outputs)


def _index_scan(plan: PhysIndexScan, ctx: ExecutionContext) -> Frame:
    index = ctx.database.index_for(
        plan.table_ref.physical_name, plan.column.column
    )
    if index is None:
        raise ExecutionError(
            f"no index on {plan.table_ref.physical_name}.{plan.column.column}"
        )
    positions = index.lookup_range(
        plan.low, plan.high, plan.low_inclusive, plan.high_inclusive
    )
    table = ctx.database.table(plan.table_ref.physical_name)
    frame = _scan_frame(plan.outputs, plan.residual, table.column)
    frame = {k: v[positions] for k, v in frame.items()}
    ctx.metrics.rows_scanned += len(positions)
    ctx.metrics.cost_units += ctx.cost_model.index_scan(
        len(positions), table.row_width(), len(plan.residual)
    )
    if plan.residual:
        mask = np.ones(len(positions), dtype=bool)
        for conjunct in plan.residual:
            mask &= evaluate_predicate(conjunct, frame)
        frame = {k: v[mask] for k, v in frame.items()}
    return _restrict(frame, plan.outputs)


def _restrict(frame: Frame, outputs: Tuple[Expr, ...]) -> Frame:
    wanted = set(outputs)
    restricted = {k: v for k, v in frame.items() if k in wanted}
    for expr in outputs:
        if expr not in restricted:
            # Computable output (e.g. a passthrough expression).
            restricted[expr] = evaluate(expr, frame)
    return restricted


# ---------------------------------------------------------------------------
# Fused pipelines (engine v2 morsel streaming)
# ---------------------------------------------------------------------------


def _fused(plan: PhysFusedPipeline, ctx: ExecutionContext) -> Frame:
    """Stream a fused scan→filter→project chain morsel-at-a-time.

    The source resolves like its unfused self (shared-scan manager for
    scans, per-consumer read accounting for spool reads); the stages then
    run over fixed-size morsels so no whole intermediate frame is ever
    materialized. The governor token is checked once per morsel, making
    cancellation strictly finer-grained than the per-operator checkpoints
    of the unfused path. Row-budget charges mirror the unfused plan
    exactly — the source's output once, then every stage's output — so
    ``max_rows`` semantics are identical with fusion on or off, at any
    morsel size. Filter costs are charged once over the summed morsel
    inputs, so the deterministic cost-unit totals are morsel-size
    independent too."""
    source = plan.source
    if isinstance(source, PhysScan):
        frame = _scan(source, ctx)
    elif isinstance(source, PhysSpoolRead):
        frame = _spool_read(source, ctx)
    else:
        raise ExecutionError(
            f"fused pipeline cannot source from {type(source).__name__}"
        )
    n = frame_length(frame)
    if ctx.op_stats is not None:
        # The source never goes through execute_node; record it so
        # EXPLAIN ANALYZE does not report "never executed".
        stats = ctx.stats_for(source)
        stats.invocations += 1
        stats.rows_out += n
    token = ctx.token
    charges = token is not None and token.charges_rows
    if charges:
        # The source's own output charge (execute_node would have made it).
        token.charge_rows(n)
    stages = plan.stages
    morsel = ctx.morsel_rows if ctx.morsel_rows > 0 else (n or 1)
    stage_inputs = [0] * len(stages)
    pieces: List[Frame] = []
    start = 0
    while True:
        stop = min(start + morsel, n)
        piece: Frame = {k: v[start:stop] for k, v in frame.items()}
        if token is not None:
            token.check()
        for i, stage in enumerate(stages):
            stage_inputs[i] += frame_length(piece)
            if stage.kind == "filter":
                rows = frame_length(piece)
                mask = np.ones(rows, dtype=bool)
                for conjunct in stage.exprs:
                    mask &= evaluate_predicate(conjunct, piece)
                piece = {k: v[mask] for k, v in piece.items()}
            else:  # project
                piece = {e: evaluate(e, piece) for e in stage.exprs}
            if charges:
                # Per-stage output charge, mirroring the unfused
                # operator-by-operator accounting exactly.
                token.charge_rows(frame_length(piece))
        pieces.append(piece)
        start = stop
        if start >= n:
            break
    for i, stage in enumerate(stages):
        if stage.kind == "filter":
            ctx.metrics.cost_units += ctx.cost_model.filter(
                stage_inputs[i], len(stage.exprs)
            )
    return _concat_frames(pieces)


def _concat_frames(pieces: List[Frame]) -> Frame:
    if len(pieces) == 1:
        return pieces[0]
    # Skip empty morsel outputs (an all-filtered morsel's dtype can
    # degrade under concatenate); keep one piece for the key set.
    live = [p for p in pieces if frame_length(p)] or pieces[:1]
    if len(live) == 1:
        return live[0]
    return {
        key: np.concatenate([p[key] for p in live]) for key in live[0]
    }


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def _hash_join(plan: PhysHashJoin, ctx: ExecutionContext) -> Frame:
    left = execute_node(plan.left, ctx)
    right = execute_node(plan.right, ctx)
    n_left = frame_length(left)
    n_right = frame_length(right)
    if plan.keys:
        left_idx, right_idx = _equi_join_indices(
            plan.keys, left, right, ctx
        )
    else:
        left_idx = np.repeat(np.arange(n_left), n_right)
        right_idx = np.tile(np.arange(n_right), n_left)
    pair_frame: Optional[Frame] = None
    if plan.residual:
        # ON-clause semantics: the residual restricts the *matched pair*
        # set. For inner joins this equals post-filtering; for outer joins
        # a pair failing the residual is a non-match (the left row is then
        # null-extended), and for semi/anti it does not witness existence.
        pair_frame = {}
        for key, col in left.items():
            pair_frame[key] = col[left_idx]
        for key, col in right.items():
            if key not in pair_frame:
                pair_frame[key] = col[right_idx]
        mask = np.ones(len(left_idx), dtype=bool)
        for conjunct in plan.residual:
            mask &= evaluate_predicate(conjunct, pair_frame)
        left_idx = left_idx[mask]
        right_idx = right_idx[mask]
        pair_frame = {k: v[mask] for k, v in pair_frame.items()}
    joined: Frame
    if plan.join_type == "inner":
        if pair_frame is not None:
            joined = pair_frame
        else:
            joined = {}
            for key, col in left.items():
                joined[key] = col[left_idx]
            for key, col in right.items():
                if key not in joined:
                    joined[key] = col[right_idx]
    elif plan.join_type in ("semi", "anti"):
        matched = np.zeros(n_left, dtype=bool)
        matched[left_idx] = True
        keep = matched if plan.join_type == "semi" else ~matched
        joined = {key: col[keep] for key, col in left.items()}
    elif plan.join_type == "left_outer":
        matched = np.zeros(n_left, dtype=bool)
        matched[left_idx] = True
        unmatched = np.flatnonzero(~matched)
        joined = {}
        for key, col in left.items():
            joined[key] = np.concatenate([col[left_idx], col[unmatched]])
        for key, col in right.items():
            if key not in joined:
                joined[key] = _null_extend(col[right_idx], len(unmatched))
    else:
        raise ExecutionError(f"unknown join type {plan.join_type!r}")
    out_rows = frame_length(joined)
    ctx.metrics.rows_joined += out_rows
    ctx.metrics.cost_units += ctx.cost_model.hash_join(
        min(n_left, n_right), max(n_left, n_right), out_rows, len(plan.residual)
    )
    return _restrict(joined, plan.outputs)


def _null_extend(values: np.ndarray, pad: int) -> np.ndarray:
    """Append ``pad`` NULL entries: NaN for numeric columns (widening to
    float64), None for object (string) columns."""
    if values.dtype == np.object_:
        return np.concatenate([values, np.full(pad, None, dtype=object)])
    return np.concatenate(
        [
            values.astype(np.float64, copy=False),
            np.full(pad, np.nan, dtype=np.float64),
        ]
    )


def _factorize(
    col: np.ndarray, ctx: Optional[ExecutionContext] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """``(sorted uniques, int64 inverse codes)`` for one key column.

    Routed through the batch's :class:`~repro.executor.runtime.KeyFactorCache`
    when the context carries one: spool reads and shared scans alias the
    producer's arrays, so every consumer of a CSE factorizes the *same*
    ndarray objects and the per-column ``np.unique`` runs once per batch
    instead of once per consumer."""
    if ctx is not None and ctx.factor_cache is not None:
        return ctx.factor_cache.factorize(col)
    uniques, inverse = np.unique(col, return_inverse=True)
    return uniques, inverse.astype(np.int64, copy=False)


def _mix_codes(
    codes: Optional[np.ndarray], inverse: np.ndarray
) -> np.ndarray:
    """Fold one more column's codes into the running combined codes,
    re-compressing after every step so the combined code stays bounded by
    the row count (no overflow for any key arity)."""
    if codes is None:
        return inverse
    radix = int(inverse.max()) + 1 if len(inverse) else 1
    _, codes = np.unique(codes * radix + inverse, return_inverse=True)
    return codes.astype(np.int64, copy=False)


def _joint_codes(
    cols: List[np.ndarray], ctx: Optional[ExecutionContext] = None
) -> np.ndarray:
    """Dense int64 codes per row, equal iff the key tuples are equal.

    Each column is factorized with ``np.unique`` (memoized per batch via
    ``ctx.factor_cache``) and the per-column codes are mixed pairwise.
    """
    codes: Optional[np.ndarray] = None
    for col in cols:
        _, inverse = _factorize(col, ctx)
        codes = _mix_codes(codes, inverse)
    assert codes is not None
    return codes


def _paired_codes(
    lc: np.ndarray, rc: np.ndarray, ctx: Optional[ExecutionContext]
) -> Tuple[np.ndarray, np.ndarray]:
    """Codes for one join-key column pair, over a shared value domain.

    Equivalent to splitting ``np.unique(concatenate([lc, rc]))``'s inverse
    at ``len(lc)``, but factorizes each side independently (so both sides
    hit the batch's factor cache) and only uniques the two *unique* sets —
    small — to merge the domains. ``np.unique`` sorts and collapses NaNs
    on both paths, so the merged codes are identical to the direct ones.
    """
    l_uniques, l_inverse = _factorize(lc, ctx)
    r_uniques, r_inverse = _factorize(rc, ctx)
    merged = np.concatenate([l_uniques, r_uniques])
    _, merged_inverse = np.unique(merged, return_inverse=True)
    merged_inverse = merged_inverse.astype(np.int64, copy=False)
    left_map = merged_inverse[: len(l_uniques)]
    right_map = merged_inverse[len(l_uniques):]
    return left_map[l_inverse], right_map[r_inverse]


def _equi_join_indices(
    keys: Tuple[Tuple[Expr, Expr], ...],
    left: Frame,
    right: Frame,
    ctx: Optional[ExecutionContext] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (left, right) row indices for an equi join.

    Vectorized sort-merge over factorized key codes. The output order is
    the hash-join contract the rest of the engine relies on: right rows
    ascending, and within one right row its left matches in original left
    order (the stable argsort keeps equal codes in position order).
    """
    n_left = frame_length(left)
    n_right = frame_length(right)
    # Mix jointly over the concatenated rows (codes must stay comparable
    # across sides); only the per-column factorization is split per side
    # so it can hit the cache.
    codes: Optional[np.ndarray] = None
    for l_expr, r_expr in keys:
        lc, rc = _paired_codes(
            evaluate(l_expr, left), evaluate(r_expr, right), ctx
        )
        codes = _mix_codes(codes, np.concatenate([lc, rc]))
    assert codes is not None
    left_codes, right_codes = codes[:n_left], codes[n_left:]
    order = np.argsort(left_codes, kind="stable")
    sorted_codes = left_codes[order]
    lo = np.searchsorted(sorted_codes, right_codes, side="left")
    hi = np.searchsorted(sorted_codes, right_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    right_idx = np.repeat(np.arange(n_right, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    run_offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - run_offsets
    left_idx = order[starts + within]
    return (
        left_idx.astype(np.int64, copy=False),
        right_idx,
    )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _group_ids(
    keys: Tuple[Expr, ...],
    frame: Frame,
    ctx: Optional[ExecutionContext] = None,
) -> Tuple[np.ndarray, int, Frame]:
    """(group id per row, group count, frame of group-key columns)."""
    n = frame_length(frame)
    if not keys:
        return np.zeros(n, dtype=np.int64), (1 if n else 1), {}
    key_cols = [evaluate(k, frame) for k in keys]
    codes = _joint_codes(key_cols, ctx)
    _, first_idx, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    # np.unique numbers groups in sorted-key order; renumber them by first
    # appearance so group ids (and the key frame) match the insertion-order
    # semantics of a hash aggregate.
    appearance = np.argsort(first_idx, kind="stable")
    remap = np.empty(len(first_idx), dtype=np.int64)
    remap[appearance] = np.arange(len(first_idx), dtype=np.int64)
    gids = remap[inverse.astype(np.int64, copy=False)]
    count = len(first_idx)
    group_rows = first_idx[appearance]
    key_frame: Frame = {}
    for key_expr, col in zip(keys, key_cols):
        key_frame[key_expr] = np.asarray(
            col[group_rows], dtype=key_expr.data_type.numpy_dtype
        )
    return gids, count, key_frame


def _hash_agg(plan: PhysHashAgg, ctx: ExecutionContext) -> Frame:
    frame = execute_node(plan.child, ctx)
    n = frame_length(frame)
    gids, count, out = _group_ids(plan.keys, frame, ctx)
    if not plan.keys and n == 0:
        # Scalar aggregate over an empty input: one group with zero rows.
        count = 1
        gids = np.empty(0, dtype=np.int64)
    for compute in plan.computes:
        out[compute.out] = _aggregate_column(compute, gids, count, frame, n)
    ctx.metrics.rows_aggregated += n
    ctx.metrics.cost_units += ctx.cost_model.aggregate(
        n, count, len(plan.computes)
    )
    return out


def _aggregate_column(
    compute: AggCompute, gids: np.ndarray, count: int, frame: Frame, n: int
) -> np.ndarray:
    func = compute.func
    if func is AggFunc.COUNT:
        result = np.bincount(gids, minlength=count).astype(np.int64)
        return result
    if compute.arg is None:
        raise ExecutionError(f"aggregate {compute!r} requires an argument")
    values = evaluate(compute.arg, frame)
    # NULLs (NaN, from outer-join null extension) are skipped per SQL
    # aggregate semantics. NULL-free inputs take the original fast path.
    nulls: Optional[np.ndarray] = None
    if np.issubdtype(values.dtype, np.floating):
        isnan = np.isnan(values)
        if isnan.any():
            nulls = isnan
    if func is AggFunc.SUM:
        if n == 0:
            return np.zeros(count, dtype=np.float64)
        weights = values.astype(np.float64)
        if nulls is not None:
            weights = np.where(nulls, 0.0, weights)
        sums = np.bincount(gids, weights=weights, minlength=count)
        if compute.out.data_type is DataType.INT:
            return sums.astype(np.int64)
        return sums
    if func in (AggFunc.MIN, AggFunc.MAX):
        fill = np.inf if func is AggFunc.MIN else -np.inf
        result = np.full(count, fill, dtype=np.float64)
        operation = np.minimum if func is AggFunc.MIN else np.maximum
        if nulls is None:
            operation.at(result, gids, values.astype(np.float64))
            if compute.out.data_type is DataType.INT:
                return result.astype(np.int64)
            return result
        live = ~nulls
        operation.at(result, gids[live], values.astype(np.float64)[live])
        seen = np.zeros(count, dtype=bool)
        seen[gids[live]] = True
        result[~seen] = np.nan  # all-NULL group aggregates to NULL
        if compute.out.data_type is DataType.INT and bool(seen.all()):
            return result.astype(np.int64)
        return result
    if func is AggFunc.AVG:
        if n == 0:
            return np.zeros(count, dtype=np.float64)
        if nulls is None:
            sums = np.bincount(
                gids, weights=values.astype(np.float64), minlength=count
            )
            counts = np.bincount(gids, minlength=count)
            return sums / np.maximum(counts, 1)
        live = ~nulls
        sums = np.bincount(
            gids[live], weights=values.astype(np.float64)[live], minlength=count
        )
        counts = np.bincount(gids[live], minlength=count)
        result = sums / np.maximum(counts, 1)
        result[counts == 0] = np.nan
        return result
    raise ExecutionError(f"unsupported aggregate function {func!r}")


# ---------------------------------------------------------------------------
# Filters, spools, sorting
# ---------------------------------------------------------------------------


def _filter(plan: PhysFilter, ctx: ExecutionContext) -> Frame:
    frame = execute_node(plan.child, ctx)
    n = frame_length(frame)
    mask = np.ones(n, dtype=bool)
    for conjunct in plan.conjuncts:
        mask &= evaluate_predicate(conjunct, frame)
    ctx.metrics.cost_units += ctx.cost_model.filter(n, len(plan.conjuncts))
    return {k: v[mask] for k, v in frame.items()}


def _spool_read(plan: PhysSpoolRead, ctx: ExecutionContext) -> Frame:
    start = perf_counter()
    worktable = ctx.spool(plan.cse_id)
    frame: Frame = {}
    for name, expr in plan.column_map:
        frame[expr] = worktable.column(name)
    rows = worktable.row_count
    read_cost = ctx.cost_model.spool_read(rows, worktable.row_width())
    ctx.metrics.spool_rows_read += rows
    ctx.metrics.cost_units += read_cost
    spool = ctx.metrics.spool(plan.cse_id)
    spool.reads += 1
    spool.rows_read += rows
    spool.read_row_counts.append(rows)
    spool.read_cost_units += read_cost
    spool.read_wall_time += perf_counter() - start
    if ctx.tracer.enabled:
        # The producer→consumer edge: ``from_span`` is the materializing
        # span's id (registered before the spool was published, so it is
        # visible under the same happens-before edge as the worktable).
        ctx.tracer.event(
            "spool_flow",
            spool=plan.cse_id,
            from_span=ctx.spool_spans.get(plan.cse_id),
            rows=rows,
        )
    ctx.registry.observe("executor.spool_read_rows", rows)
    ctx.registry.observe(
        "executor.spool_read_bytes", rows * worktable.row_width()
    )
    return frame


def materialize_spool(
    cse_id: str, body: PhysicalPlan, ctx: ExecutionContext
) -> WorkTable:
    """Evaluate a spool body (a named projection) into a work table."""
    tracer = ctx.tracer
    if not tracer.enabled:
        return _materialize_spool(cse_id, body, ctx)
    with tracer.span("spool_materialize", spool=cse_id) as span:
        # Register the span id before the worktable is published (our
        # caller stores it into the shared ``spools`` dict after we
        # return), so any consumer that can see the spool can also see
        # its producing span — the flow edge is never dangling.
        ctx.spool_spans[cse_id] = span.span_id
        worktable = _materialize_spool(cse_id, body, ctx)
        span.attrs["rows"] = worktable.row_count
        return worktable


def _materialize_spool(
    cse_id: str, body: PhysicalPlan, ctx: ExecutionContext
) -> WorkTable:
    if not isinstance(body, PhysProject):
        raise ExecutionError(
            f"spool body for {cse_id!r} must end in a projection"
        )
    if ctx.token is not None:
        ctx.token.check()
    start = perf_counter()
    cost_before = ctx.metrics.cost_units
    # Interior operators charge their outputs here as usual; the body's
    # *top* projection is evaluated manually below and deliberately never
    # charged — those rows are charged at every consumer read
    # (spool_read), so charging the producer too would double-count them.
    frame = execute_node(body.child, ctx)
    names: List[str] = []
    types: List[DataType] = []
    columns: Dict[str, np.ndarray] = {}
    for out in body.outputs:
        values = evaluate(out.expr, frame)
        names.append(out.name)
        types.append(out.expr.data_type)
        columns[out.name] = values
    # Everything charged so far is body evaluation — the measured C_E.
    body_cost = ctx.metrics.cost_units - cost_before
    worktable = WorkTable(cse_id, names, types)
    worktable.load(columns)
    if ctx.token is not None:
        # Charge before any accounting or publication: a budget bust raises
        # here, so a partially-governed spool is never visible to readers.
        ctx.token.charge_spool(
            worktable.row_count,
            worktable.row_count * worktable.row_width(),
        )
    write_cost = ctx.cost_model.spool_write(
        worktable.row_count, worktable.row_width()
    )
    ctx.metrics.spool_rows_written += worktable.row_count
    ctx.metrics.spools_materialized += 1
    ctx.metrics.cost_units += write_cost
    elapsed = perf_counter() - start
    spool = ctx.metrics.spool(cse_id)
    spool.writes += 1
    spool.rows_written += worktable.row_count
    # Measured "initial cost" per Definition 5.1: the body's evaluation
    # cost units (everything charged while producing the frame) plus C_W;
    # ``body_cost_units`` keeps the C_E share so the sharing ledger can
    # recompute the savings identity from measured terms.
    spool.write_cost_units += ctx.metrics.cost_units - cost_before
    spool.body_cost_units += body_cost
    spool.materialize_wall_time += elapsed
    ctx.registry.observe("executor.spool_write_rows", worktable.row_count)
    ctx.registry.observe(
        "executor.spool_write_bytes",
        worktable.row_count * worktable.row_width(),
    )
    if ctx.op_stats is not None:
        stats = ctx.stats_for(body)
        stats.invocations += 1
        stats.rows_out += worktable.row_count
        stats.wall_time += elapsed
        stats.add_timer("materialize", elapsed)
    return worktable


def _spool_def(plan: PhysSpoolDef, ctx: ExecutionContext) -> Frame:
    for cse_id, body in plan.spools:
        if cse_id not in ctx.spools:
            ctx.spools[cse_id] = materialize_spool(cse_id, body, ctx)
    return execute_node(plan.child, ctx)


def _rank_codes(values: np.ndarray) -> np.ndarray:
    """Dense int64 rank codes for one sort key; NULL ranks largest.

    NULL-extended outer-join frames (PR 6) flow NaN (numeric) and None
    (object) columns into ORDER BY. Encoding each key as dense ranks with
    NULL = highest rank gives a single deterministic NULL order — NULLs
    last ascending, first descending — on both dtypes, lets descending
    sort negate the codes (``np.argsort(-codes)``) instead of reversing a
    stable order (which broke multi-key stability on ties), and avoids
    ``np.argsort`` on object arrays containing None (a TypeError)."""
    if values.dtype == np.object_:
        nulls = np.fromiter(
            (v is None for v in values), dtype=bool, count=len(values)
        )
        live = values[~nulls]
        uniq = sorted(set(live.tolist()))
        rank = {v: i for i, v in enumerate(uniq)}
        codes = np.full(len(values), len(uniq), dtype=np.int64)
        codes[~nulls] = np.fromiter(
            (rank[v] for v in live), dtype=np.int64, count=len(live)
        )
        return codes
    if np.issubdtype(values.dtype, np.floating):
        nulls = np.isnan(values)
        if nulls.any():
            live = values[~nulls]
            uniq = np.unique(live)
            codes = np.full(len(values), len(uniq), dtype=np.int64)
            codes[~nulls] = np.searchsorted(uniq, live)
            return codes
    _, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64, copy=False).reshape(len(values))


def _sort_order(plan: PhysSort, frame: Frame, ctx: ExecutionContext) -> np.ndarray:
    n = frame_length(frame)
    ctx.metrics.cost_units += ctx.cost_model.sort(n)
    return sort_order_for(plan.sort_items, frame)


def sort_order_for(
    sort_items: Tuple[Tuple[Expr, bool], ...], frame: Frame
) -> np.ndarray:
    """Row order for ORDER BY items evaluated against ``frame``."""
    n = frame_length(frame)
    order = np.arange(n)
    # Stable sorts applied last-key-first give lexicographic order;
    # descending keys negate their rank codes, keeping the sort stable
    # (NULL = largest rank, so NULLs sort last asc / first desc).
    for expr, descending in reversed(sort_items):
        codes = _rank_codes(evaluate(expr, frame)[order])
        inner = np.argsort(-codes if descending else codes, kind="stable")
        order = order[inner]
    return order
