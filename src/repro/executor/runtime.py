"""Execution context and metrics.

The executor counts the *same* cost units the optimizer estimates (see
:mod:`repro.optimizer.cost`), against actual row counts. That makes the
"execution time" rows of the reproduced experiment tables deterministic and
hardware-independent, while wall-clock time is also reported for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..optimizer.cost import CostModel
from ..storage.database import Database
from ..storage.worktable import WorkTable


@dataclass
class ExecutionMetrics:
    """Deterministic work counters accumulated during execution."""

    cost_units: float = 0.0
    rows_scanned: int = 0
    rows_joined: int = 0
    rows_aggregated: int = 0
    rows_output: int = 0
    spool_rows_written: int = 0
    spool_rows_read: int = 0
    spools_materialized: int = 0
    operator_invocations: int = 0

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate another metrics object into this one."""
        self.cost_units += other.cost_units
        self.rows_scanned += other.rows_scanned
        self.rows_joined += other.rows_joined
        self.rows_aggregated += other.rows_aggregated
        self.rows_output += other.rows_output
        self.spool_rows_written += other.spool_rows_written
        self.spool_rows_read += other.spool_rows_read
        self.spools_materialized += other.spools_materialized
        self.operator_invocations += other.operator_invocations


@dataclass
class ExecutionContext:
    """Shared state for one bundle execution: the database, materialized
    spools, and accumulated metrics."""

    database: Database
    cost_model: CostModel = field(default_factory=CostModel)
    spools: Dict[str, WorkTable] = field(default_factory=dict)
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)

    def spool(self, cse_id: str) -> WorkTable:
        """A materialized spool by id (error if missing)."""
        try:
            return self.spools[cse_id]
        except KeyError:
            from ..errors import ExecutionError

            raise ExecutionError(
                f"spool {cse_id!r} read before materialization"
            ) from None
